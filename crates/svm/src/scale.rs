//! Per-feature min–max scaling to `[-1, 1]`.
//!
//! This mirrors libsvm's companion tool `svm-scale`, which the standard
//! libsvm workflow (and therefore the paper's) applies before training:
//! RBF kernels are distance-based, so features must share a scale.
//!
//! The scaler is **fit on training data only** and then applied to test
//! data — fitting on the combined set would leak test statistics into
//! training (the cross-validation driver enforces this discipline).
//!
//! Lane order is owned by the caller: this crate is feature-agnostic and
//! scales whatever columns it is handed, positionally. In this workspace
//! the caller is `frappe`, whose encoder emits lanes in feature-catalog
//! order (`frappe::catalog::CATALOG`), so lane *j* here is catalog entry
//! *j* of the active `FeatureSet` — the same ordering the audit log and
//! `FrappeModel::explain` report.

use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;

/// Fitted per-feature affine transform onto `[-1, 1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scaler {
    mins: Vec<f64>,
    maxs: Vec<f64>,
}

impl Scaler {
    /// Reassembles a scaler from previously fitted bounds (checkpoint
    /// restore). The inverse of [`mins`](Self::mins)/[`maxs`](Self::maxs).
    ///
    /// # Panics
    /// Panics if the two vectors differ in length.
    pub fn from_bounds(mins: Vec<f64>, maxs: Vec<f64>) -> Scaler {
        assert_eq!(mins.len(), maxs.len(), "one (min, max) pair per lane");
        Scaler { mins, maxs }
    }

    /// Fitted per-lane minima, in lane order.
    pub fn mins(&self) -> &[f64] {
        &self.mins
    }

    /// Fitted per-lane maxima, in lane order.
    pub fn maxs(&self) -> &[f64] {
        &self.maxs
    }

    /// Learns per-feature minima and maxima from a dataset.
    ///
    /// # Panics
    /// Panics on an empty dataset (there is nothing to fit).
    pub fn fit(data: &Dataset) -> Scaler {
        assert!(!data.is_empty(), "cannot fit a scaler on an empty dataset");
        let dim = data.dim();
        let mut mins = vec![f64::INFINITY; dim];
        let mut maxs = vec![f64::NEG_INFINITY; dim];
        for x in data.features() {
            for (d, &v) in x.iter().enumerate() {
                mins[d] = mins[d].min(v);
                maxs[d] = maxs[d].max(v);
            }
        }
        Scaler { mins, maxs }
    }

    /// Scales one feature vector. Constant features (min == max) map to 0;
    /// out-of-range values (possible on test data) extrapolate linearly,
    /// matching `svm-scale` semantics.
    ///
    /// # Panics
    /// Panics if `x` has the wrong dimensionality.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.mins.len(), "dimension mismatch");
        x.iter()
            .enumerate()
            .map(|(d, &v)| {
                let (lo, hi) = (self.mins[d], self.maxs[d]);
                if hi <= lo {
                    0.0
                } else {
                    -1.0 + 2.0 * (v - lo) / (hi - lo)
                }
            })
            .collect()
    }

    /// Scales an entire dataset, preserving labels.
    pub fn transform_dataset(&self, data: &Dataset) -> Dataset {
        let features = data.features().iter().map(|x| self.transform(x)).collect();
        Dataset::new(features, data.labels().to_vec())
            .expect("scaling preserves shape and produces finite values")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn data(rows: Vec<Vec<f64>>) -> Dataset {
        let n = rows.len();
        let labels = (0..n)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        Dataset::new(rows, labels).unwrap()
    }

    #[test]
    fn maps_training_range_to_unit_box() {
        let d = data(vec![vec![0.0, 10.0], vec![5.0, 20.0], vec![10.0, 30.0]]);
        let s = Scaler::fit(&d);
        assert_eq!(s.transform(&[0.0, 10.0]), vec![-1.0, -1.0]);
        assert_eq!(s.transform(&[10.0, 30.0]), vec![1.0, 1.0]);
        assert_eq!(s.transform(&[5.0, 20.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn constant_feature_maps_to_zero() {
        let d = data(vec![vec![7.0, 1.0], vec![7.0, 2.0]]);
        let s = Scaler::fit(&d);
        assert_eq!(s.transform(&[7.0, 1.5])[0], 0.0);
    }

    #[test]
    fn test_points_extrapolate() {
        let d = data(vec![vec![0.0], vec![10.0]]);
        let s = Scaler::fit(&d);
        assert_eq!(s.transform(&[20.0]), vec![3.0]);
        assert_eq!(s.transform(&[-10.0]), vec![-3.0]);
    }

    #[test]
    fn transform_dataset_preserves_labels() {
        let d = data(vec![vec![1.0], vec![3.0], vec![2.0]]);
        let s = Scaler::fit(&d);
        let t = s.transform_dataset(&d);
        assert_eq!(t.labels(), d.labels());
        assert_eq!(t.len(), d.len());
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_fit_panics() {
        Scaler::fit(&Dataset::empty());
    }

    proptest! {
        #[test]
        fn training_points_land_in_unit_box(
            rows in proptest::collection::vec(
                proptest::collection::vec(-100.0f64..100.0, 3), 2..20),
        ) {
            let d = data(rows.clone());
            let s = Scaler::fit(&d);
            for row in &rows {
                for v in s.transform(row) {
                    prop_assert!((-1.0 - 1e-12..=1.0 + 1e-12).contains(&v));
                }
            }
        }
    }
}
