//! Sequential Minimal Optimization for the C-SVC dual.
//!
//! Solves
//!
//! ```text
//!   min_α  ½ αᵀQα − eᵀα     s.t.  0 ≤ αᵢ ≤ C,  yᵀα = 0
//! ```
//!
//! where `Q_ij = y_i y_j K(x_i, x_j)`, following the structure of libsvm's
//! solver: maximal-violating-pair working-set selection, the analytic
//! two-variable subproblem update (with clipping to the box), incremental
//! gradient maintenance, and a bounded LRU cache of kernel rows.
//!
//! Shrinking is intentionally omitted — problem sizes in this reproduction
//! (≲15K examples, ≤16 features) converge quickly without it, and omitting
//! it keeps the solver auditable.

use std::collections::HashMap;

use crate::dataset::Dataset;
use crate::kernel::Kernel;
use crate::model::SvmModel;

/// Numerical floor for the second-derivative term (libsvm's `TAU`).
const TAU: f64 = 1e-12;

/// Training hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvmParams {
    /// Kernel function.
    pub kernel: Kernel,
    /// Soft-margin cost (libsvm default, and the paper's setting: 1.0).
    pub c: f64,
    /// Per-class cost multiplier for the positive class (libsvm's `-w1`):
    /// the effective cost for a positive example is `c * weight_pos`.
    /// Raising it buys recall at the price of false positives — the lever
    /// behind Table 5's ratio-dependent FP/FN trade-off.
    pub weight_pos: f64,
    /// Per-class cost multiplier for the negative class (libsvm's `-w-1`).
    pub weight_neg: f64,
    /// KKT-violation stopping tolerance (libsvm default 1e-3).
    pub eps: f64,
    /// Hard cap on optimization iterations; `None` uses
    /// `max(10_000_000, 100·n)`, mirroring libsvm's safeguard.
    pub max_iter: Option<usize>,
    /// Maximum number of cached kernel rows (bounds memory at
    /// `cache_rows · n · 8` bytes).
    pub cache_rows: usize,
}

impl SvmParams {
    /// Parameters with the given kernel and libsvm defaults for the rest.
    pub fn with_kernel(kernel: Kernel) -> Self {
        SvmParams {
            kernel,
            c: 1.0,
            weight_pos: 1.0,
            weight_neg: 1.0,
            eps: 1e-3,
            max_iter: None,
            cache_rows: 4096,
        }
    }

    /// The paper's configuration: RBF kernel with `gamma = 1/num_features`,
    /// `C = 1`.
    pub fn paper_defaults(num_features: usize) -> Self {
        Self::with_kernel(Kernel::rbf_default_gamma(num_features))
    }

    /// Sets the soft-margin cost.
    pub fn with_c(mut self, c: f64) -> Self {
        self.c = c;
        self
    }

    /// Sets per-class cost multipliers (libsvm's `-wi`).
    ///
    /// # Panics
    /// Panics unless both weights are positive.
    pub fn with_class_weights(mut self, weight_pos: f64, weight_neg: f64) -> Self {
        assert!(
            weight_pos > 0.0 && weight_neg > 0.0,
            "class weights must be positive"
        );
        self.weight_pos = weight_pos;
        self.weight_neg = weight_neg;
        self
    }
}

/// Hit/miss/eviction counts of the kernel-row cache over one solve
/// (exposed through [`SolveStats`] and the `svm_row_cache_*` counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Row requests served from a resident row.
    pub hits: u64,
    /// Row requests that had to compute the kernel row.
    pub misses: u64,
    /// Resident rows displaced to make room (always ≤ `misses`).
    pub evictions: u64,
}

/// Sentinel for "no slot" in the intrusive LRU list.
const NIL: usize = usize::MAX;

/// Bounded true-LRU kernel-row cache with slot-indexed storage.
///
/// Rows of `K` (not `Q`; the `y_i y_j` signs are applied by the caller)
/// are computed lazily into fixed *slots*; a doubly-linked list threaded
/// through the slots (index-based, `head` = most recent) gives O(1)
/// touch-on-hit and O(1) least-recently-used eviction. Returning slot
/// indices instead of row references lets the solver hold **two** rows
/// borrowed at once ([`RowCache::pair`]), which is what makes the SMO
/// gradient update copy-free. Evicting recycles the displaced slot's
/// buffer in place, so a warmed-up solve never allocates per iteration.
struct RowCache {
    /// example index → slot, for resident rows
    map: HashMap<usize, usize>,
    /// slot → example index currently held
    keys: Vec<usize>,
    /// slot → kernel row (buffers are recycled across evictions)
    rows: Vec<Vec<f64>>,
    /// intrusive LRU list: slot → neighbour slots (NIL-terminated)
    prev: Vec<usize>,
    next: Vec<usize>,
    /// most-recently-used slot (NIL while empty)
    head: usize,
    /// least-recently-used slot (NIL while empty)
    tail: usize,
    capacity: usize,
    stats: CacheStats,
}

impl RowCache {
    fn new(capacity: usize) -> Self {
        let capacity = capacity.max(2); // the update always needs two rows
        RowCache {
            map: HashMap::with_capacity(capacity),
            keys: Vec::with_capacity(capacity),
            rows: Vec::with_capacity(capacity),
            prev: Vec::with_capacity(capacity),
            next: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            capacity,
            stats: CacheStats::default(),
        }
    }

    fn detach(&mut self, slot: usize) {
        let (p, n) = (self.prev[slot], self.next[slot]);
        if p == NIL {
            self.head = n;
        } else {
            self.next[p] = n;
        }
        if n == NIL {
            self.tail = p;
        } else {
            self.prev[n] = p;
        }
    }

    fn attach_front(&mut self, slot: usize) {
        self.prev[slot] = NIL;
        self.next[slot] = self.head;
        if self.head != NIL {
            self.prev[self.head] = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    /// The slot holding kernel row `i`, filling one (recycling the LRU
    /// slot's buffer once full) on a miss. Touches the slot to
    /// most-recently-used either way.
    fn slot_for(&mut self, i: usize, fill: impl FnOnce(&mut Vec<f64>)) -> usize {
        if let Some(&slot) = self.map.get(&i) {
            self.stats.hits += 1;
            if self.head != slot {
                self.detach(slot);
                self.attach_front(slot);
            }
            return slot;
        }
        self.stats.misses += 1;
        let slot = if self.rows.len() < self.capacity {
            let slot = self.rows.len();
            self.keys.push(i);
            self.rows.push(Vec::new());
            self.prev.push(NIL);
            self.next.push(NIL);
            self.attach_front(slot);
            slot
        } else {
            self.stats.evictions += 1;
            let slot = self.tail;
            self.detach(slot);
            self.map.remove(&self.keys[slot]);
            self.keys[slot] = i;
            // recycle the evicted row's buffer: clear keeps the
            // allocation, so the warm path never touches the heap
            self.rows[slot].clear();
            self.attach_front(slot);
            slot
        };
        self.map.insert(i, slot);
        fill(&mut self.rows[slot]);
        slot
    }

    /// Two resident rows borrowed simultaneously.
    fn pair(&self, a: usize, b: usize) -> (&[f64], &[f64]) {
        (&self.rows[a], &self.rows[b])
    }
}

/// Outcome details of a training run (exposed for tests and benches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveStats {
    /// Optimization iterations performed.
    pub iterations: usize,
    /// Whether the KKT tolerance was met (vs. iteration cap hit).
    pub converged: bool,
    /// Number of support vectors in the final model.
    pub support_vectors: usize,
    /// Kernel-row cache behaviour over the solve.
    pub cache: CacheStats,
}

/// Trains a C-SVC on the dataset. See [`train_with_stats`] for solver
/// diagnostics.
///
/// # Panics
/// Panics if the dataset is empty or contains a single class — callers are
/// expected to construct meaningful binary problems (the paper's datasets
/// always contain both classes).
pub fn train(data: &Dataset, params: &SvmParams) -> SvmModel {
    train_with_stats(data, params).0
}

/// Trains a C-SVC, also returning solver statistics.
pub fn train_with_stats(data: &Dataset, params: &SvmParams) -> (SvmModel, SolveStats) {
    let _span = frappe_obs::span("svm/train");
    let n = data.len();
    assert!(n > 0, "cannot train on an empty dataset");
    let (pos, neg) = data.class_counts();
    assert!(
        pos > 0 && neg > 0,
        "training requires both classes (got {pos} positive, {neg} negative)"
    );
    assert!(params.c > 0.0, "C must be positive");

    let xs = data.features();
    let ys = data.labels();
    let eps = params.eps;
    // Per-example box bound: C_i = C * weight(y_i) (libsvm's -wi).
    let c_of: Vec<f64> = ys
        .iter()
        .map(|&y| {
            params.c
                * if y > 0.0 {
                    params.weight_pos
                } else {
                    params.weight_neg
                }
        })
        .collect();
    let max_iter = params.max_iter.unwrap_or_else(|| 10_000_000.max(100 * n));

    let mut alpha = vec![0.0f64; n];
    // G_i = Σ_j Q_ij α_j − 1; with α = 0, G = −1 everywhere.
    let mut grad = vec![-1.0f64; n];
    let mut cache = RowCache::new(params.cache_rows);

    // Fills `buf` with kernel row `i` in place; `clear` + exact-size
    // `extend` reuse the buffer's allocation on recycled cache slots.
    let fill_row = |i: usize, buf: &mut Vec<f64>| {
        buf.clear();
        let xi = &xs[i];
        buf.extend(xs.iter().map(|xj| params.kernel.compute(xi, xj)));
    };
    // Diagonal is needed every selection step; precompute once.
    let diag: Vec<f64> = (0..n)
        .map(|i| params.kernel.compute(&xs[i], &xs[i]))
        .collect();

    let mut iterations = 0usize;
    let mut converged = false;

    while iterations < max_iter {
        iterations += 1;

        // --- working-set selection: maximal violating pair ---------------
        // i = argmax_{t ∈ I_up} −y_t G_t ; j = argmin_{t ∈ I_low} −y_t G_t
        let mut g_max = f64::NEG_INFINITY;
        let mut g_min = f64::INFINITY;
        let mut i_sel = usize::MAX;
        let mut j_sel = usize::MAX;
        for t in 0..n {
            let yt = ys[t];
            let v = -yt * grad[t];
            let in_up = (yt > 0.0 && alpha[t] < c_of[t]) || (yt < 0.0 && alpha[t] > 0.0);
            let in_low = (yt > 0.0 && alpha[t] > 0.0) || (yt < 0.0 && alpha[t] < c_of[t]);
            if in_up && v > g_max {
                g_max = v;
                i_sel = t;
            }
            if in_low && v < g_min {
                g_min = v;
                j_sel = t;
            }
        }

        if g_max - g_min < eps || i_sel == usize::MAX || j_sel == usize::MAX {
            converged = true;
            break;
        }
        let (i, j) = (i_sel, j_sel);

        // --- two-variable analytic update (libsvm's formulation) ---------
        // Resolve both rows up front as slot indices: `slot_for(i)` makes
        // slot_i most-recently-used, so with capacity ≥ 2 the `j` fill can
        // never evict it, and `pair` then borrows both rows copy-free for
        // the whole update (the allocation-free hot loop).
        let slot_i = cache.slot_for(i, |buf| fill_row(i, buf));
        let slot_j = cache.slot_for(j, |buf| fill_row(j, buf));
        let (ki, kj) = cache.pair(slot_i, slot_j);
        let kij = ki[j];
        let (yi, yj) = (ys[i], ys[j]);
        let (old_ai, old_aj) = (alpha[i], alpha[j]);

        // Curvature along the feasible direction: ‖φ(xᵢ)−φ(xⱼ)‖², identical
        // in both label branches (libsvm's QD[i]+QD[j]±2·Q_i[j] both reduce
        // to this once the y_i y_j sign inside Q is expanded).
        let mut quad = diag[i] + diag[j] - 2.0 * kij;
        if quad <= 0.0 {
            quad = TAU;
        }
        let (c_i, c_j) = (c_of[i], c_of[j]);
        if yi != yj {
            let delta = (-grad[i] - grad[j]) / quad;
            let diff = alpha[i] - alpha[j];
            alpha[i] += delta;
            alpha[j] += delta;
            if diff > 0.0 {
                if alpha[j] < 0.0 {
                    alpha[j] = 0.0;
                    alpha[i] = diff;
                }
            } else if alpha[i] < 0.0 {
                alpha[i] = 0.0;
                alpha[j] = -diff;
            }
            if diff > c_i - c_j {
                if alpha[i] > c_i {
                    alpha[i] = c_i;
                    alpha[j] = c_i - diff;
                }
            } else if alpha[j] > c_j {
                alpha[j] = c_j;
                alpha[i] = c_j + diff;
            }
        } else {
            let delta = (grad[i] - grad[j]) / quad;
            let sum = alpha[i] + alpha[j];
            alpha[i] -= delta;
            alpha[j] += delta;
            if sum > c_i {
                if alpha[i] > c_i {
                    alpha[i] = c_i;
                    alpha[j] = sum - c_i;
                }
            } else if alpha[j] < 0.0 {
                alpha[j] = 0.0;
                alpha[i] = sum;
            }
            if sum > c_j {
                if alpha[j] > c_j {
                    alpha[j] = c_j;
                    alpha[i] = sum - c_j;
                }
            } else if alpha[i] < 0.0 {
                alpha[i] = 0.0;
                alpha[j] = sum;
            }
        }

        // --- incremental gradient update ---------------------------------
        let dai = alpha[i] - old_ai;
        let daj = alpha[j] - old_aj;
        if dai != 0.0 || daj != 0.0 {
            // Q_ti = y_t y_i K_ti; the y_i α-delta products are constant
            // across the loop, so fold them once and the update is a pure
            // fused pass over the two borrowed rows.
            let wi = yi * dai;
            let wj = yj * daj;
            for ((g, &yt), (&kit, &kjt)) in grad.iter_mut().zip(ys).zip(ki.iter().zip(kj.iter())) {
                *g += yt * (wi * kit + wj * kjt);
            }
        }
    }

    // --- bias (rho) --------------------------------------------------------
    // For free SVs (0 < α < C), KKT gives rho = y_i G_i; average them.
    // If none are free, take the midpoint of the feasible interval.
    let mut n_free = 0usize;
    let mut sum_free = 0.0f64;
    let mut ub = f64::INFINITY;
    let mut lb = f64::NEG_INFINITY;
    for t in 0..n {
        let yg = ys[t] * grad[t];
        let at_upper = alpha[t] >= c_of[t] - 1e-12;
        let at_lower = alpha[t] <= 1e-12;
        if at_upper {
            if ys[t] < 0.0 {
                ub = ub.min(yg);
            } else {
                lb = lb.max(yg);
            }
        } else if at_lower {
            if ys[t] > 0.0 {
                ub = ub.min(yg);
            } else {
                lb = lb.max(yg);
            }
        } else {
            n_free += 1;
            sum_free += yg;
        }
    }
    let rho = if n_free > 0 {
        sum_free / n_free as f64
    } else {
        (ub + lb) / 2.0
    };

    // --- extract support vectors -------------------------------------------
    let mut sv = Vec::new();
    let mut coef = Vec::new();
    for t in 0..n {
        if alpha[t] > 1e-12 {
            sv.push(xs[t].clone());
            coef.push(ys[t] * alpha[t]);
        }
    }
    let stats = SolveStats {
        iterations,
        converged,
        support_vectors: sv.len(),
        cache: cache.stats,
    };
    let registry = frappe_obs::Registry::global();
    registry.counter("svm_train_runs").inc();
    registry
        .counter("svm_train_iterations")
        .add(iterations as u64);
    registry
        .counter("svm_train_support_vectors")
        .add(sv.len() as u64);
    registry.counter("svm_row_cache_hits").add(cache.stats.hits);
    registry
        .counter("svm_row_cache_misses")
        .add(cache.stats.misses);
    registry
        .counter("svm_row_cache_evictions")
        .add(cache.stats.evictions);
    (SvmModel::new(params.kernel, sv, coef, rho), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn separable_2d(n_per_class: usize, gap: f64, seed: u64) -> Dataset {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n_per_class {
            xs.push(vec![rng.gen::<f64>() - gap, rng.gen::<f64>()]);
            ys.push(-1.0);
            xs.push(vec![rng.gen::<f64>() + gap, rng.gen::<f64>()]);
            ys.push(1.0);
        }
        Dataset::new(xs, ys).unwrap()
    }

    #[test]
    fn linear_separable_perfect_training_accuracy() {
        let data = separable_2d(50, 1.5, 1);
        let (model, stats) = train_with_stats(&data, &SvmParams::with_kernel(Kernel::linear()));
        assert!(stats.converged, "solver did not converge");
        for i in 0..data.len() {
            let (x, y) = data.example(i);
            assert_eq!(model.predict(x), y, "misclassified training point {i}");
        }
    }

    #[test]
    fn rbf_solves_xor() {
        // XOR is not linearly separable; RBF must nail it.
        let xs = vec![
            vec![0.0, 0.0],
            vec![1.0, 1.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
        ];
        let ys = vec![-1.0, -1.0, 1.0, 1.0];
        let data = Dataset::new(xs, ys).unwrap();
        let params = SvmParams::with_kernel(Kernel::rbf(2.0)).with_c(100.0);
        let model = train(&data, &params);
        assert_eq!(model.predict(&[0.0, 0.0]), -1.0);
        assert_eq!(model.predict(&[1.0, 1.0]), -1.0);
        assert_eq!(model.predict(&[0.0, 1.0]), 1.0);
        assert_eq!(model.predict(&[1.0, 0.0]), 1.0);
    }

    #[test]
    fn decision_values_have_margin_on_separable_data() {
        let data = separable_2d(30, 2.0, 7);
        let model = train(&data, &SvmParams::with_kernel(Kernel::linear()));
        // Far-away points should have decisively signed decision values.
        assert!(model.decision_value(&[-3.0, 0.5]) < -1.0);
        assert!(model.decision_value(&[4.0, 0.5]) > 1.0);
    }

    #[test]
    fn support_vectors_are_a_subset() {
        let data = separable_2d(40, 1.0, 3);
        let (model, stats) = train_with_stats(&data, &SvmParams::with_kernel(Kernel::linear()));
        assert_eq!(stats.support_vectors, model.support_vector_count());
        assert!(
            model.support_vector_count() >= 2,
            "need at least one SV per class"
        );
        assert!(
            model.support_vector_count() < data.len(),
            "separable problem must not make everything an SV"
        );
    }

    #[test]
    fn dual_constraint_holds() {
        // Σ y_i α_i = 0 ⇔ Σ coef_i = 0 (coef = y·α).
        let data = separable_2d(25, 0.3, 11);
        let params = SvmParams::with_kernel(Kernel::rbf(1.0));
        let model = train(&data, &params);
        let sum: f64 = model.dual_coefs().iter().sum();
        assert!(sum.abs() < 1e-6, "Σ yα = {sum}");
    }

    #[test]
    fn alphas_respect_box_constraint() {
        let data = separable_2d(25, 0.1, 13); // overlapping -> some α at C
        let c = 0.5;
        let params = SvmParams::with_kernel(Kernel::rbf(1.0)).with_c(c);
        let model = train(&data, &params);
        for &co in model.dual_coefs() {
            assert!(co.abs() <= c + 1e-9, "|yα| = {} exceeds C = {c}", co.abs());
        }
    }

    #[test]
    fn noisy_data_still_trains_reasonably() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..200 {
            let y: f64 = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            // 10% label noise on an otherwise separable problem
            let flip = rng.gen_bool(0.1);
            let centre = if y > 0.0 { 1.0 } else { -1.0 };
            xs.push(vec![centre + rng.gen::<f64>() * 0.5, rng.gen::<f64>()]);
            ys.push(if flip { -y } else { y });
        }
        let data = Dataset::new(xs, ys).unwrap();
        let model = train(&data, &SvmParams::paper_defaults(2));
        let correct = (0..data.len())
            .filter(|&i| {
                let (x, y) = data.example(i);
                model.predict(x) == y
            })
            .count();
        let acc = correct as f64 / data.len() as f64;
        assert!(acc > 0.8, "accuracy on noisy data only {acc}");
    }

    #[test]
    fn tiny_cache_still_converges_to_same_model() {
        let data = separable_2d(30, 1.0, 17);
        let base = SvmParams::with_kernel(Kernel::rbf(1.0));
        let small_cache = SvmParams {
            cache_rows: 2,
            ..base
        };
        let m1 = train(&data, &base);
        let m2 = train(&data, &small_cache);
        // identical optimization path => identical models
        assert_eq!(m1.support_vector_count(), m2.support_vector_count());
        assert!((m1.rho() - m2.rho()).abs() < 1e-9);
    }

    #[test]
    fn class_weights_trade_fn_for_fp() {
        // Imbalanced, overlapping data: upweighting the positive class
        // must reduce false negatives (and generally cost false positives).
        let mut rng = SmallRng::seed_from_u64(21);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..40 {
            xs.push(vec![0.25 + rng.gen::<f64>(), rng.gen::<f64>()]);
            ys.push(1.0);
        }
        for _ in 0..200 {
            xs.push(vec![
                -0.25 - rng.gen::<f64>() + 0.5 * rng.gen::<f64>(),
                rng.gen::<f64>(),
            ]);
            ys.push(-1.0);
        }
        let data = Dataset::new(xs, ys).unwrap();

        let count_errors = |params: &SvmParams| {
            let model = train(&data, params);
            let mut fn_ = 0;
            let mut fp = 0;
            for i in 0..data.len() {
                let (x, y) = data.example(i);
                let p = model.predict(x);
                if y > 0.0 && p < 0.0 {
                    fn_ += 1;
                }
                if y < 0.0 && p > 0.0 {
                    fp += 1;
                }
            }
            (fn_, fp)
        };

        let base = SvmParams::with_kernel(Kernel::rbf(1.0)).with_c(0.05);
        let weighted = base.with_class_weights(20.0, 1.0);
        let (fn_base, _) = count_errors(&base);
        let (fn_weighted, fp_weighted) = count_errors(&weighted);
        assert!(
            fn_weighted < fn_base || (fn_base == 0 && fn_weighted == 0),
            "upweighting positives should cut FN: {fn_base} -> {fn_weighted}"
        );
        let _ = fp_weighted;
    }

    #[test]
    fn weighted_alphas_respect_per_class_box() {
        let data = separable_2d(25, 0.1, 13);
        let c = 0.5;
        let params = SvmParams::with_kernel(Kernel::rbf(1.0))
            .with_c(c)
            .with_class_weights(3.0, 1.0);
        let model = train(&data, &params);
        for &co in model.dual_coefs() {
            // positive coefs (y=+1) bounded by 3C, negative by C
            if co > 0.0 {
                assert!(co <= 3.0 * c + 1e-9, "positive alpha {co} exceeds 3C");
            } else {
                assert!(-co <= c + 1e-9, "negative alpha {} exceeds C", -co);
            }
        }
    }

    #[test]
    fn row_cache_is_true_lru_with_touch_on_hit() {
        let mut cache = RowCache::new(2);
        let fill = |v: f64| move |buf: &mut Vec<f64>| buf.extend_from_slice(&[v]);
        let s0 = cache.slot_for(0, fill(0.0));
        let _ = cache.slot_for(1, fill(1.0));
        // touch row 0: it becomes MRU, so inserting row 2 must evict row 1
        let s0_again = cache.slot_for(0, |_| panic!("row 0 is resident"));
        assert_eq!(s0, s0_again);
        let _ = cache.slot_for(2, fill(2.0));
        assert!(cache.map.contains_key(&0), "touched row survives eviction");
        assert!(!cache.map.contains_key(&1), "LRU row was evicted");
        assert_eq!(
            cache.stats,
            CacheStats {
                hits: 1,
                misses: 3,
                evictions: 1,
            }
        );
        // a FIFO cache would have evicted row 0 here instead
        let _ = cache.slot_for(0, |_| panic!("row 0 must still be resident"));
        assert_eq!(cache.stats.hits, 2);
    }

    #[test]
    fn eviction_recycles_slot_buffers_in_place() {
        let mut cache = RowCache::new(2);
        let a = cache.slot_for(0, |buf| buf.extend_from_slice(&[1.0, 2.0]));
        let _ = cache.slot_for(1, |buf| buf.extend_from_slice(&[3.0, 4.0]));
        // capacity exhausted: row 2 reuses row 0's slot (the LRU)
        let recycled = cache.slot_for(2, |buf| {
            assert!(buf.is_empty(), "fill callbacks receive a cleared buffer");
            buf.extend_from_slice(&[5.0, 6.0]);
        });
        assert_eq!(recycled, a, "evicted slot index is reused");
        assert_eq!(cache.pair(recycled, recycled).0, &[5.0, 6.0]);
    }

    #[test]
    fn solve_stats_expose_cache_behaviour() {
        let data = separable_2d(30, 1.0, 17);
        // ample cache: every miss is a cold fill, never an eviction
        let (_, stats) = train_with_stats(&data, &SvmParams::with_kernel(Kernel::rbf(1.0)));
        assert!(stats.cache.misses > 0, "first touches miss");
        assert!(stats.cache.hits > 0, "SMO re-selects hot rows");
        assert_eq!(stats.cache.evictions, 0, "cache larger than the problem");
        assert!(stats.cache.misses <= data.len() as u64);

        // starved cache: evictions must appear, and the model is unchanged
        let starved = SvmParams {
            cache_rows: 2,
            ..SvmParams::with_kernel(Kernel::rbf(1.0))
        };
        let (_, tiny) = train_with_stats(&data, &starved);
        assert!(tiny.cache.evictions > 0, "capacity 2 must evict");
        assert!(tiny.cache.evictions <= tiny.cache.misses);
        assert_eq!(
            stats.iterations, tiny.iterations,
            "cache size is invisible to the optimizer"
        );
    }

    #[test]
    #[should_panic(expected = "class weights must be positive")]
    fn zero_weight_panics() {
        SvmParams::with_kernel(Kernel::linear()).with_class_weights(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn single_class_panics() {
        let data = Dataset::new(vec![vec![1.0], vec![2.0]], vec![1.0, 1.0]).unwrap();
        train(&data, &SvmParams::with_kernel(Kernel::linear()));
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        train(&Dataset::empty(), &SvmParams::with_kernel(Kernel::linear()));
    }
}
