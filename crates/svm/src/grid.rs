//! Grid search over `(C, γ)`.
//!
//! The paper fixes libsvm's defaults; the ablation benches (DESIGN.md §4)
//! ask how sensitive the result is to that choice, which this module
//! answers by exhaustive search over a small grid scored by k-fold
//! cross-validation accuracy.

use crate::crossval::{cross_validate, CrossValReport};
use crate::dataset::Dataset;
use crate::kernel::Kernel;
use crate::smo::SvmParams;

/// One evaluated grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct GridPoint {
    /// Soft-margin cost evaluated.
    pub c: f64,
    /// RBF gamma evaluated.
    pub gamma: f64,
    /// Cross-validation report at this point.
    pub report: CrossValReport,
}

/// Full result of a grid search.
#[derive(Debug, Clone, PartialEq)]
pub struct GridSearchResult {
    /// All evaluated points, in sweep order (C-major).
    pub points: Vec<GridPoint>,
}

impl GridSearchResult {
    /// The point with the highest cross-validation accuracy (ties broken by
    /// earlier sweep order, i.e. smaller C then smaller gamma).
    pub fn best(&self) -> &GridPoint {
        self.points
            .iter()
            .max_by(|a, b| {
                a.report
                    .accuracy()
                    .partial_cmp(&b.report.accuracy())
                    .expect("accuracies are finite")
                    // max_by keeps the *last* maximal element; invert the
                    // index order so earlier points win ties.
                    .then(std::cmp::Ordering::Greater.reverse())
            })
            .expect("grid search evaluated at least one point")
    }
}

/// Evaluates every `(C, γ)` combination with k-fold CV on RBF kernels.
///
/// # Panics
/// Panics if either grid axis is empty, or on the conditions of
/// [`cross_validate`].
pub fn grid_search(
    data: &Dataset,
    cs: &[f64],
    gammas: &[f64],
    k: usize,
    seed: u64,
) -> GridSearchResult {
    assert!(!cs.is_empty() && !gammas.is_empty(), "empty grid axis");
    let mut points = Vec::with_capacity(cs.len() * gammas.len());
    for &c in cs {
        for &gamma in gammas {
            let params = SvmParams::with_kernel(Kernel::rbf(gamma)).with_c(c);
            let report = cross_validate(data, &params, k, seed);
            points.push(GridPoint { c, gamma, report });
        }
    }
    GridSearchResult { points }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn ring_data(seed: u64) -> Dataset {
        // Inner disk = +1, outer ring = −1: needs a reasonable gamma.
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..60 {
            let theta = rng.gen::<f64>() * std::f64::consts::TAU;
            let r_in = rng.gen::<f64>() * 0.5;
            xs.push(vec![r_in * theta.cos(), r_in * theta.sin()]);
            ys.push(1.0);
            let r_out = 1.5 + rng.gen::<f64>() * 0.5;
            xs.push(vec![r_out * theta.cos(), r_out * theta.sin()]);
            ys.push(-1.0);
        }
        Dataset::new(xs, ys).unwrap()
    }

    #[test]
    fn evaluates_full_grid() {
        let data = ring_data(1);
        let res = grid_search(&data, &[0.1, 1.0], &[0.5, 1.0, 2.0], 3, 7);
        assert_eq!(res.points.len(), 6);
        // sweep order is C-major
        assert_eq!(res.points[0].c, 0.1);
        assert_eq!(res.points[0].gamma, 0.5);
        assert_eq!(res.points[5].c, 1.0);
        assert_eq!(res.points[5].gamma, 2.0);
    }

    #[test]
    fn best_point_separates_rings() {
        let data = ring_data(2);
        let res = grid_search(&data, &[1.0, 10.0], &[0.1, 1.0], 3, 7);
        assert!(
            res.best().report.accuracy() > 0.9,
            "ring data should be solvable, best acc {}",
            res.best().report.accuracy()
        );
    }

    #[test]
    #[should_panic(expected = "empty grid axis")]
    fn empty_axis_panics() {
        grid_search(&ring_data(3), &[], &[1.0], 3, 1);
    }
}
