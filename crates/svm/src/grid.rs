//! Grid search over `(C, γ)`.
//!
//! The paper fixes libsvm's defaults; the ablation benches (DESIGN.md §4)
//! ask how sensitive the result is to that choice, which this module
//! answers by exhaustive search over a small grid scored by k-fold
//! cross-validation accuracy.
//!
//! The search is embarrassingly parallel twice over — across grid points
//! *and* across folds within a point. Rather than nest two fan-outs (and
//! oversubscribe the machine), [`grid_search_on`] flattens the nesting
//! into one task list of `points × folds` independent `(params, fold)`
//! jobs sharing a single [`JobPool`], then reassembles per-point reports
//! in sweep order. Fold assignments depend only on `(data, k, seed)`, so
//! they are computed once and shared by every point — exactly what the
//! serial path produced when each point re-derived them from the same
//! seed.

use frappe_jobs::JobPool;

use crate::crossval::{check_cv_preconditions, cv_fold, stratified_folds, CrossValReport};
use crate::dataset::Dataset;
use crate::kernel::Kernel;
use crate::metrics::ConfusionMatrix;
use crate::smo::SvmParams;

/// One evaluated grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct GridPoint {
    /// Soft-margin cost evaluated.
    pub c: f64,
    /// RBF gamma evaluated.
    pub gamma: f64,
    /// Cross-validation report at this point.
    pub report: CrossValReport,
}

/// Full result of a grid search.
#[derive(Debug, Clone, PartialEq)]
pub struct GridSearchResult {
    /// All evaluated points, in sweep order (C-major).
    pub points: Vec<GridPoint>,
}

impl GridSearchResult {
    /// The point with the highest cross-validation accuracy. Ties are
    /// broken by earlier sweep order (smaller C, then smaller gamma):
    /// only a *strictly* better accuracy displaces the incumbent.
    pub fn best(&self) -> &GridPoint {
        let (first, rest) = self
            .points
            .split_first()
            .expect("grid search evaluated at least one point");
        rest.iter().fold(first, |best, point| {
            if point.report.accuracy() > best.report.accuracy() {
                point
            } else {
                best
            }
        })
    }
}

/// Evaluates every `(C, γ)` combination with k-fold CV on RBF kernels,
/// in parallel on the `FRAPPE_JOBS`-sized pool (see [`grid_search_on`]).
///
/// # Panics
/// Panics if either grid axis is empty, or on the conditions of
/// [`cross_validate`](crate::crossval::cross_validate).
pub fn grid_search(
    data: &Dataset,
    cs: &[f64],
    gammas: &[f64],
    k: usize,
    seed: u64,
) -> GridSearchResult {
    grid_search_on(&JobPool::from_env(), data, cs, gammas, k, seed)
}

/// [`grid_search`] on an explicit pool.
///
/// All `points × folds` tasks share the one pool (no nested fan-out), and
/// every task is a pure function of `(data, c, gamma, fold_of, fold)`, so
/// the result is **bit-identical for any thread count**: fold confusion
/// matrices are reassembled per point and summed in fold order, points in
/// C-major sweep order.
pub fn grid_search_on(
    pool: &JobPool,
    data: &Dataset,
    cs: &[f64],
    gammas: &[f64],
    k: usize,
    seed: u64,
) -> GridSearchResult {
    assert!(!cs.is_empty() && !gammas.is_empty(), "empty grid axis");
    check_cv_preconditions(data, k);
    let _span = frappe_obs::span("svm/grid_search");

    let combos: Vec<(f64, f64)> = cs
        .iter()
        .flat_map(|&c| gammas.iter().map(move |&gamma| (c, gamma)))
        .collect();
    // Folds depend only on (data, k, seed): identical at every point.
    let fold_of = stratified_folds(data, k, seed);

    let fold_cms = pool.run(combos.len() * k, |task| {
        let (c, gamma) = combos[task / k];
        let params = SvmParams::with_kernel(Kernel::rbf(gamma)).with_c(c);
        cv_fold(data, &params, &fold_of, task % k)
    });

    let points = combos
        .iter()
        .zip(fold_cms.chunks_exact(k))
        .map(|(&(c, gamma), folds)| {
            let mut total = ConfusionMatrix::default();
            for &fold_cm in folds {
                total += fold_cm;
            }
            GridPoint {
                c,
                gamma,
                report: CrossValReport {
                    confusion: total,
                    folds: folds.to_vec(),
                },
            }
        })
        .collect();
    GridSearchResult { points }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn ring_data(seed: u64) -> Dataset {
        // Inner disk = +1, outer ring = −1: needs a reasonable gamma.
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..60 {
            let theta = rng.gen::<f64>() * std::f64::consts::TAU;
            let r_in = rng.gen::<f64>() * 0.5;
            xs.push(vec![r_in * theta.cos(), r_in * theta.sin()]);
            ys.push(1.0);
            let r_out = 1.5 + rng.gen::<f64>() * 0.5;
            xs.push(vec![r_out * theta.cos(), r_out * theta.sin()]);
            ys.push(-1.0);
        }
        Dataset::new(xs, ys).unwrap()
    }

    #[test]
    fn evaluates_full_grid() {
        let data = ring_data(1);
        let res = grid_search(&data, &[0.1, 1.0], &[0.5, 1.0, 2.0], 3, 7);
        assert_eq!(res.points.len(), 6);
        // sweep order is C-major
        assert_eq!(res.points[0].c, 0.1);
        assert_eq!(res.points[0].gamma, 0.5);
        assert_eq!(res.points[5].c, 1.0);
        assert_eq!(res.points[5].gamma, 2.0);
    }

    #[test]
    fn best_point_separates_rings() {
        let data = ring_data(2);
        let res = grid_search(&data, &[1.0, 10.0], &[0.1, 1.0], 3, 7);
        assert!(
            res.best().report.accuracy() > 0.9,
            "ring data should be solvable, best acc {}",
            res.best().report.accuracy()
        );
    }

    #[test]
    fn best_breaks_ties_toward_the_earliest_sweep_point() {
        // Hand-built result with identical accuracies everywhere: the
        // earliest point (smallest C, then smallest gamma) must win.
        // accuracy = correct / 10
        let report = |correct: usize| CrossValReport {
            confusion: ConfusionMatrix {
                true_positives: correct,
                false_positives: 0,
                true_negatives: 0,
                false_negatives: 10 - correct,
            },
            folds: vec![],
        };
        let result = GridSearchResult {
            points: vec![
                GridPoint {
                    c: 0.1,
                    gamma: 0.5,
                    report: report(4),
                },
                GridPoint {
                    c: 0.1,
                    gamma: 1.0,
                    report: report(6),
                },
                GridPoint {
                    c: 1.0,
                    gamma: 0.5,
                    report: report(6),
                },
            ],
        };
        let best = result.best();
        assert_eq!(
            (best.c, best.gamma),
            (0.1, 1.0),
            "equal accuracies: the earliest maximal point wins, not the last"
        );
    }

    #[test]
    fn whole_grid_tied_returns_the_first_point() {
        let flat = CrossValReport {
            confusion: ConfusionMatrix {
                true_positives: 5,
                false_positives: 0,
                true_negatives: 5,
                false_negatives: 0,
            },
            folds: vec![],
        };
        let result = GridSearchResult {
            points: (0..4)
                .map(|i| GridPoint {
                    c: i as f64,
                    gamma: 1.0,
                    report: flat.clone(),
                })
                .collect(),
        };
        assert_eq!(result.best().c, 0.0);
    }

    #[test]
    fn parallel_grid_matches_serial_bit_for_bit() {
        let data = ring_data(5);
        let cs = [0.5, 1.0, 5.0];
        let gammas = [0.25, 1.0];
        let serial = grid_search_on(&JobPool::with_threads(1), &data, &cs, &gammas, 3, 11);
        for threads in [2, 4, 8] {
            let pool = JobPool::with_threads(threads);
            let parallel = grid_search_on(&pool, &data, &cs, &gammas, 3, 11);
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn flattened_grid_matches_per_point_cross_validation() {
        // the flattened points×folds decomposition must reproduce exactly
        // what independent cross_validate calls at each point produce
        let data = ring_data(9);
        let res = grid_search(&data, &[0.5, 2.0], &[0.5, 1.5], 3, 23);
        for point in &res.points {
            let params = SvmParams::with_kernel(Kernel::rbf(point.gamma)).with_c(point.c);
            let direct = crate::crossval::cross_validate(&data, &params, 3, 23);
            assert_eq!(point.report, direct, "C={} gamma={}", point.c, point.gamma);
        }
    }

    #[test]
    #[should_panic(expected = "empty grid axis")]
    fn empty_axis_panics() {
        grid_search(&ring_data(3), &[], &[1.0], 3, 1);
    }
}
