//! Stratified k-fold cross-validation.
//!
//! §5.1: *"In 5-fold cross validation, the dataset is randomly divided into
//! five segments, and we test on each segment independently using the other
//! four segments for training."* We stratify the folds (each fold receives
//! its share of each class) so that heavily imbalanced ratios like 10:1
//! still leave positives in every fold, and we fit the feature scaler on
//! the training folds only.

use frappe_jobs::JobPool;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::dataset::Dataset;
use crate::metrics::ConfusionMatrix;
use crate::scale::Scaler;
use crate::smo::{train, SvmParams};

/// Aggregate result of one cross-validation run.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossValReport {
    /// Confusion matrix summed over all folds (every example is tested
    /// exactly once).
    pub confusion: ConfusionMatrix,
    /// Per-fold confusion matrices, in fold order.
    pub folds: Vec<ConfusionMatrix>,
}

impl CrossValReport {
    /// Overall accuracy across folds.
    pub fn accuracy(&self) -> f64 {
        self.confusion.accuracy()
    }

    /// Overall false-positive rate across folds.
    pub fn false_positive_rate(&self) -> f64 {
        self.confusion.false_positive_rate()
    }

    /// Overall false-negative rate across folds.
    pub fn false_negative_rate(&self) -> f64 {
        self.confusion.false_negative_rate()
    }
}

/// Builds stratified fold assignments: returns `fold_of[i]` for each example.
pub(crate) fn stratified_folds(data: &Dataset, k: usize, seed: u64) -> Vec<usize> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut fold_of = vec![0usize; data.len()];
    for class_indices in [data.positive_indices(), data.negative_indices()] {
        let mut idx = class_indices;
        idx.shuffle(&mut rng);
        for (pos, &i) in idx.iter().enumerate() {
            fold_of[i] = pos % k;
        }
    }
    fold_of
}

/// Shared precondition checks for [`cross_validate`] and
/// [`grid_search`](crate::grid::grid_search).
pub(crate) fn check_cv_preconditions(data: &Dataset, k: usize) {
    assert!(k >= 2, "cross-validation needs at least 2 folds");
    assert!(!data.is_empty(), "cannot cross-validate an empty dataset");
    let (pos, neg) = data.class_counts();
    assert!(
        pos >= k && neg >= k,
        "need at least k examples of each class (have {pos} positive, {neg} negative, k = {k})"
    );
}

/// One independent cross-validation task: trains on every fold but `fold`
/// (scaler fitted on the training folds only) and scores the held-out
/// fold. Pure in `(data, params, fold_of, fold)` — the unit of
/// parallelism for both [`cross_validate`] and grid search.
pub(crate) fn cv_fold(
    data: &Dataset,
    params: &SvmParams,
    fold_of: &[usize],
    fold: usize,
) -> ConfusionMatrix {
    let train_idx: Vec<usize> = (0..data.len()).filter(|&i| fold_of[i] != fold).collect();
    let test_idx: Vec<usize> = (0..data.len()).filter(|&i| fold_of[i] == fold).collect();

    let train_set = data.subset(&train_idx);
    let test_set = data.subset(&test_idx);

    let scaler = Scaler::fit(&train_set);
    let train_scaled = scaler.transform_dataset(&train_set);
    let model = train(&train_scaled, params);

    let mut fold_cm = ConfusionMatrix::default();
    for i in 0..test_set.len() {
        let (x, y) = test_set.example(i);
        let pred = model.predict(&scaler.transform(x));
        fold_cm.record(y, pred);
    }
    fold_cm
}

/// Runs stratified k-fold cross-validation, scaling features inside each
/// fold (fit on train, apply to test). Folds are evaluated in parallel on
/// the `FRAPPE_JOBS`-sized pool; see [`cross_validate_on`] for the
/// determinism contract.
///
/// # Panics
/// Panics if `k < 2`, if the dataset is empty, or if either class has fewer
/// than `k` examples (a fold would otherwise train on a single class).
pub fn cross_validate(data: &Dataset, params: &SvmParams, k: usize, seed: u64) -> CrossValReport {
    cross_validate_on(&JobPool::from_env(), data, params, k, seed)
}

/// [`cross_validate`] on an explicit pool.
///
/// Each fold is a seed-isolated task (fold assignment is fixed up front
/// from `seed`; training/scoring of one fold touches nothing shared), so
/// the report is **bit-identical for any thread count** — fold results
/// are reassembled and summed in fold order regardless of completion
/// order.
pub fn cross_validate_on(
    pool: &JobPool,
    data: &Dataset,
    params: &SvmParams,
    k: usize,
    seed: u64,
) -> CrossValReport {
    check_cv_preconditions(data, k);
    let fold_of = stratified_folds(data, k, seed);
    let folds = pool.run(k, |fold| cv_fold(data, params, &fold_of, fold));
    let mut total = ConfusionMatrix::default();
    for &fold_cm in &folds {
        total += fold_cm;
    }
    CrossValReport {
        confusion: total,
        folds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Kernel;
    use rand::Rng;

    fn gaussian_blobs(n_per_class: usize, separation: f64, seed: u64) -> Dataset {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n_per_class {
            // crude gaussian via CLT
            let noise = |rng: &mut SmallRng| (0..6).map(|_| rng.gen::<f64>()).sum::<f64>() - 3.0;
            xs.push(vec![noise(&mut rng) - separation, noise(&mut rng)]);
            ys.push(-1.0);
            xs.push(vec![noise(&mut rng) + separation, noise(&mut rng)]);
            ys.push(1.0);
        }
        Dataset::new(xs, ys).unwrap()
    }

    #[test]
    fn folds_are_stratified_and_partition() {
        let data = gaussian_blobs(25, 1.0, 1);
        let folds = stratified_folds(&data, 5, 42);
        assert_eq!(folds.len(), data.len());
        for fold in 0..5 {
            let members: Vec<usize> = (0..data.len()).filter(|&i| folds[i] == fold).collect();
            let pos = members.iter().filter(|&&i| data.labels()[i] > 0.0).count();
            assert_eq!(members.len(), 10, "balanced input → equal folds");
            assert_eq!(pos, 5, "stratification keeps class balance per fold");
        }
    }

    #[test]
    fn every_example_tested_exactly_once() {
        let data = gaussian_blobs(20, 2.0, 3);
        let report = cross_validate(&data, &SvmParams::with_kernel(Kernel::linear()), 5, 9);
        assert_eq!(report.confusion.total(), data.len());
        let fold_total: usize = report.folds.iter().map(|f| f.total()).sum();
        assert_eq!(fold_total, data.len());
        assert_eq!(report.folds.len(), 5);
    }

    #[test]
    fn well_separated_data_scores_high() {
        let data = gaussian_blobs(50, 4.0, 5);
        let report = cross_validate(&data, &SvmParams::paper_defaults(2), 5, 17);
        assert!(
            report.accuracy() > 0.95,
            "expected near-perfect CV accuracy, got {}",
            report.accuracy()
        );
    }

    #[test]
    fn overlapping_data_scores_lower_but_sane() {
        let data = gaussian_blobs(60, 0.5, 7);
        let report = cross_validate(&data, &SvmParams::paper_defaults(2), 5, 23);
        let acc = report.accuracy();
        assert!(acc > 0.5, "better than chance, got {acc}");
        assert!(acc < 1.0, "overlap must cause some errors, got {acc}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let data = gaussian_blobs(20, 1.0, 11);
        let p = SvmParams::with_kernel(Kernel::rbf(0.5));
        let a = cross_validate(&data, &p, 5, 99);
        let b = cross_validate(&data, &p, 5, 99);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_folds_match_serial_bit_for_bit() {
        let data = gaussian_blobs(25, 0.8, 13);
        let p = SvmParams::with_kernel(Kernel::rbf(0.5));
        let serial = cross_validate_on(&JobPool::with_threads(1), &data, &p, 5, 42);
        for threads in [2, 5, 8] {
            let parallel = cross_validate_on(&JobPool::with_threads(threads), &data, &p, 5, 42);
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    #[should_panic(expected = "at least k examples of each class")]
    fn too_few_positives_panics() {
        let xs = vec![
            vec![0.0],
            vec![1.0],
            vec![2.0],
            vec![3.0],
            vec![4.0],
            vec![5.0],
        ];
        let ys = vec![1.0, -1.0, -1.0, -1.0, -1.0, -1.0];
        let data = Dataset::new(xs, ys).unwrap();
        cross_validate(&data, &SvmParams::with_kernel(Kernel::linear()), 5, 1);
    }

    #[test]
    #[should_panic(expected = "at least 2 folds")]
    fn k_of_one_panics() {
        let data = gaussian_blobs(5, 1.0, 1);
        cross_validate(&data, &SvmParams::with_kernel(Kernel::linear()), 1, 1);
    }
}
