//! Labelled datasets for binary classification.
//!
//! Labels are `+1.0` (positive — in FRAppE, *malicious*) and `-1.0`
//! (negative — *benign*). The module also implements the class-ratio
//! subsampling the paper uses for Table 5 ("we sample apps at random from
//! the D-Complete dataset" at benign:malicious ratios of 1:1 … 10:1).

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A dense, labelled binary-classification dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    features: Vec<Vec<f64>>,
    labels: Vec<f64>,
}

/// Errors constructing a [`Dataset`].
#[derive(Debug, Clone, PartialEq)]
pub enum DatasetError {
    /// `features` and `labels` have different lengths.
    LengthMismatch {
        /// Number of feature rows.
        features: usize,
        /// Number of labels.
        labels: usize,
    },
    /// Feature rows have inconsistent dimensionality.
    RaggedFeatures {
        /// Dimension of the first row.
        expected: usize,
        /// Index of the first offending row.
        row: usize,
        /// Its dimension.
        found: usize,
    },
    /// A label other than `+1.0` / `-1.0` was supplied.
    InvalidLabel {
        /// Index of the offending label.
        row: usize,
        /// Its value.
        value: f64,
    },
    /// A feature value was NaN or infinite.
    NonFiniteFeature {
        /// Row of the offending value.
        row: usize,
        /// Column of the offending value.
        col: usize,
    },
}

impl std::fmt::Display for DatasetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatasetError::LengthMismatch { features, labels } => {
                write!(f, "{features} feature rows but {labels} labels")
            }
            DatasetError::RaggedFeatures {
                expected,
                row,
                found,
            } => write!(f, "row {row} has {found} features, expected {expected}"),
            DatasetError::InvalidLabel { row, value } => {
                write!(f, "label at row {row} is {value}, expected +1 or -1")
            }
            DatasetError::NonFiniteFeature { row, col } => {
                write!(f, "non-finite feature at ({row}, {col})")
            }
        }
    }
}

impl std::error::Error for DatasetError {}

impl Dataset {
    /// Builds a dataset, validating shape, label domain and finiteness.
    pub fn new(features: Vec<Vec<f64>>, labels: Vec<f64>) -> Result<Self, DatasetError> {
        if features.len() != labels.len() {
            return Err(DatasetError::LengthMismatch {
                features: features.len(),
                labels: labels.len(),
            });
        }
        if let Some(first) = features.first() {
            let expected = first.len();
            for (row, x) in features.iter().enumerate() {
                if x.len() != expected {
                    return Err(DatasetError::RaggedFeatures {
                        expected,
                        row,
                        found: x.len(),
                    });
                }
                for (col, v) in x.iter().enumerate() {
                    if !v.is_finite() {
                        return Err(DatasetError::NonFiniteFeature { row, col });
                    }
                }
            }
        }
        for (row, &y) in labels.iter().enumerate() {
            if y != 1.0 && y != -1.0 {
                return Err(DatasetError::InvalidLabel { row, value: y });
            }
        }
        Ok(Dataset { features, labels })
    }

    /// An empty dataset of dimension 0.
    pub fn empty() -> Self {
        Dataset {
            features: Vec::new(),
            labels: Vec::new(),
        }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset has no examples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature dimensionality (0 for an empty dataset).
    pub fn dim(&self) -> usize {
        self.features.first().map_or(0, Vec::len)
    }

    /// Feature matrix.
    pub fn features(&self) -> &[Vec<f64>] {
        &self.features
    }

    /// Label vector (`±1.0`).
    pub fn labels(&self) -> &[f64] {
        &self.labels
    }

    /// The `i`-th example.
    pub fn example(&self, i: usize) -> (&[f64], f64) {
        (&self.features[i], self.labels[i])
    }

    /// Indices of positive (+1) examples.
    pub fn positive_indices(&self) -> Vec<usize> {
        (0..self.len()).filter(|&i| self.labels[i] > 0.0).collect()
    }

    /// Indices of negative (−1) examples.
    pub fn negative_indices(&self) -> Vec<usize> {
        (0..self.len()).filter(|&i| self.labels[i] < 0.0).collect()
    }

    /// Counts of (positives, negatives).
    pub fn class_counts(&self) -> (usize, usize) {
        let pos = self.labels.iter().filter(|&&y| y > 0.0).count();
        (pos, self.len() - pos)
    }

    /// Returns the sub-dataset at the given indices (rows are cloned).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            features: indices.iter().map(|&i| self.features[i].clone()).collect(),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
        }
    }

    /// Concatenates two datasets of equal dimension.
    ///
    /// # Panics
    /// Panics if dimensions differ and both are non-empty.
    pub fn concat(&self, other: &Dataset) -> Dataset {
        if !self.is_empty() && !other.is_empty() {
            assert_eq!(self.dim(), other.dim(), "dimension mismatch in concat");
        }
        let mut features = self.features.clone();
        features.extend(other.features.iter().cloned());
        let mut labels = self.labels.clone();
        labels.extend_from_slice(&other.labels);
        Dataset { features, labels }
    }

    /// Draws a random sub-dataset with `neg_per_pos` negatives per positive
    /// (the paper's benign:malicious ratio), keeping as many positives as
    /// possible. If there are not enough negatives, positives are dropped to
    /// preserve the requested ratio exactly.
    ///
    /// Deterministic for a given `seed`.
    pub fn sample_with_ratio(&self, neg_per_pos: usize, seed: u64) -> Dataset {
        assert!(
            neg_per_pos > 0,
            "ratio must be at least 1 negative per positive"
        );
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut pos = self.positive_indices();
        let mut neg = self.negative_indices();
        pos.shuffle(&mut rng);
        neg.shuffle(&mut rng);

        // Largest (p, n) with n = p * ratio, p <= |pos|, n <= |neg|.
        let p = pos.len().min(neg.len() / neg_per_pos);
        let n = p * neg_per_pos;
        let mut idx: Vec<usize> = pos[..p].to_vec();
        idx.extend_from_slice(&neg[..n]);
        idx.shuffle(&mut rng);
        self.subset(&idx)
    }

    /// Returns a shuffled copy (deterministic for a given `seed`).
    pub fn shuffled(&self, seed: u64) -> Dataset {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(&mut SmallRng::seed_from_u64(seed));
        self.subset(&idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(pos: usize, neg: usize) -> Dataset {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..pos {
            xs.push(vec![i as f64, 1.0]);
            ys.push(1.0);
        }
        for i in 0..neg {
            xs.push(vec![i as f64, -1.0]);
            ys.push(-1.0);
        }
        Dataset::new(xs, ys).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(matches!(
            Dataset::new(vec![vec![1.0]], vec![]),
            Err(DatasetError::LengthMismatch { .. })
        ));
        assert!(matches!(
            Dataset::new(vec![vec![1.0], vec![1.0, 2.0]], vec![1.0, -1.0]),
            Err(DatasetError::RaggedFeatures { .. })
        ));
        assert!(matches!(
            Dataset::new(vec![vec![1.0]], vec![0.5]),
            Err(DatasetError::InvalidLabel { .. })
        ));
        assert!(matches!(
            Dataset::new(vec![vec![f64::NAN]], vec![1.0]),
            Err(DatasetError::NonFiniteFeature { .. })
        ));
    }

    #[test]
    fn basic_accessors() {
        let d = toy(3, 5);
        assert_eq!(d.len(), 8);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.class_counts(), (3, 5));
        assert_eq!(d.positive_indices().len(), 3);
        assert_eq!(d.negative_indices().len(), 5);
        let (x, y) = d.example(0);
        assert_eq!(x, &[0.0, 1.0]);
        assert_eq!(y, 1.0);
    }

    #[test]
    fn ratio_sampling_exact_ratio() {
        let d = toy(100, 1000);
        let s = d.sample_with_ratio(7, 42);
        let (p, n) = s.class_counts();
        assert_eq!(n, 7 * p);
        assert_eq!(p, 100, "all positives kept when negatives suffice");
    }

    #[test]
    fn ratio_sampling_drops_positives_when_negatives_scarce() {
        let d = toy(100, 30);
        let s = d.sample_with_ratio(10, 1);
        let (p, n) = s.class_counts();
        assert_eq!(p, 3);
        assert_eq!(n, 30);
    }

    #[test]
    fn ratio_sampling_is_deterministic() {
        let d = toy(20, 60);
        let a = d.sample_with_ratio(2, 7);
        let b = d.sample_with_ratio(2, 7);
        assert_eq!(a, b);
        let c = d.sample_with_ratio(2, 8);
        assert_ne!(a, c, "different seed should differ (overwhelmingly likely)");
    }

    #[test]
    fn shuffle_preserves_multiset() {
        let d = toy(5, 5);
        let s = d.shuffled(3);
        assert_eq!(s.len(), d.len());
        assert_eq!(s.class_counts(), d.class_counts());
    }

    #[test]
    fn subset_and_concat() {
        let d = toy(2, 2);
        let a = d.subset(&[0, 1]);
        let b = d.subset(&[2, 3]);
        let back = a.concat(&b);
        assert_eq!(back, d);
        assert_eq!(Dataset::empty().concat(&d), d);
    }
}
