//! Classification metrics.
//!
//! The paper evaluates with exactly three numbers (§5.1): *"Accuracy is
//! defined as the ratio of correctly identified apps ... False positive
//! (negative) rate is the fraction of benign (malicious) apps incorrectly
//! classified as malicious (benign)."* [`ConfusionMatrix`] implements those
//! definitions, plus the standard derived metrics for the extended analyses.

use std::fmt;
use std::ops::AddAssign;

use serde::{Deserialize, Serialize};

/// A 2×2 confusion matrix for a binary classifier where `+1` is the
/// *positive* (malicious) class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// Malicious apps classified malicious.
    pub true_positives: usize,
    /// Benign apps classified malicious.
    pub false_positives: usize,
    /// Benign apps classified benign.
    pub true_negatives: usize,
    /// Malicious apps classified benign.
    pub false_negatives: usize,
}

impl ConfusionMatrix {
    /// Builds a matrix from parallel slices of true and predicted `±1`
    /// labels.
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    pub fn from_predictions(truth: &[f64], predicted: &[f64]) -> Self {
        assert_eq!(truth.len(), predicted.len(), "label/prediction mismatch");
        let mut m = ConfusionMatrix::default();
        for (&y, &p) in truth.iter().zip(predicted) {
            m.record(y, p);
        }
        m
    }

    /// Records one observation.
    pub fn record(&mut self, truth: f64, predicted: f64) {
        match (truth > 0.0, predicted > 0.0) {
            (true, true) => self.true_positives += 1,
            (false, true) => self.false_positives += 1,
            (false, false) => self.true_negatives += 1,
            (true, false) => self.false_negatives += 1,
        }
    }

    /// Total number of observations.
    pub fn total(&self) -> usize {
        self.true_positives + self.false_positives + self.true_negatives + self.false_negatives
    }

    /// Correct classifications over total (0 observations ⇒ 0).
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        (self.true_positives + self.true_negatives) as f64 / total as f64
    }

    /// Fraction of benign (negative) examples classified malicious — the
    /// paper's FP rate. 0 when there are no negatives.
    pub fn false_positive_rate(&self) -> f64 {
        let negs = self.false_positives + self.true_negatives;
        if negs == 0 {
            return 0.0;
        }
        self.false_positives as f64 / negs as f64
    }

    /// Fraction of malicious (positive) examples classified benign — the
    /// paper's FN rate. 0 when there are no positives.
    pub fn false_negative_rate(&self) -> f64 {
        let pos = self.true_positives + self.false_negatives;
        if pos == 0 {
            return 0.0;
        }
        self.false_negatives as f64 / pos as f64
    }

    /// TP / (TP + FP); 0 when nothing was predicted positive.
    pub fn precision(&self) -> f64 {
        let pred_pos = self.true_positives + self.false_positives;
        if pred_pos == 0 {
            return 0.0;
        }
        self.true_positives as f64 / pred_pos as f64
    }

    /// TP / (TP + FN); 0 when there are no positives.
    pub fn recall(&self) -> f64 {
        1.0 - self.false_negative_rate()
    }

    /// Harmonic mean of precision and recall (0 if both are 0).
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

impl AddAssign for ConfusionMatrix {
    fn add_assign(&mut self, rhs: ConfusionMatrix) {
        self.true_positives += rhs.true_positives;
        self.false_positives += rhs.false_positives;
        self.true_negatives += rhs.true_negatives;
        self.false_negatives += rhs.false_negatives;
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "acc {:.1}% | FP {:.1}% | FN {:.1}% (tp {} fp {} tn {} fn {})",
            self.accuracy() * 100.0,
            self.false_positive_rate() * 100.0,
            self.false_negative_rate() * 100.0,
            self.true_positives,
            self.false_positives,
            self.true_negatives,
            self.false_negatives,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_predictions_counts_correctly() {
        let truth = [1.0, 1.0, -1.0, -1.0, 1.0];
        let pred = [1.0, -1.0, -1.0, 1.0, 1.0];
        let m = ConfusionMatrix::from_predictions(&truth, &pred);
        assert_eq!(m.true_positives, 2);
        assert_eq!(m.false_negatives, 1);
        assert_eq!(m.true_negatives, 1);
        assert_eq!(m.false_positives, 1);
        assert_eq!(m.total(), 5);
    }

    #[test]
    fn paper_metric_definitions() {
        // 90 benign, 10 malicious; 1 benign flagged, 2 malicious missed.
        let m = ConfusionMatrix {
            true_positives: 8,
            false_negatives: 2,
            false_positives: 1,
            true_negatives: 89,
        };
        assert!((m.accuracy() - 0.97).abs() < 1e-12);
        assert!((m.false_positive_rate() - 1.0 / 90.0).abs() < 1e-12);
        assert!((m.false_negative_rate() - 0.2).abs() < 1e-12);
        assert!((m.recall() - 0.8).abs() < 1e-12);
        assert!((m.precision() - 8.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_classifier() {
        let m = ConfusionMatrix {
            true_positives: 5,
            true_negatives: 5,
            ..Default::default()
        };
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.false_positive_rate(), 0.0);
        assert_eq!(m.false_negative_rate(), 0.0);
        assert_eq!(m.f1(), 1.0);
    }

    #[test]
    fn degenerate_cases_dont_divide_by_zero() {
        let empty = ConfusionMatrix::default();
        assert_eq!(empty.accuracy(), 0.0);
        assert_eq!(empty.false_positive_rate(), 0.0);
        assert_eq!(empty.false_negative_rate(), 0.0);
        assert_eq!(empty.precision(), 0.0);
        assert_eq!(empty.f1(), 0.0);
    }

    #[test]
    fn add_assign_accumulates_folds() {
        let mut total = ConfusionMatrix::default();
        total += ConfusionMatrix {
            true_positives: 1,
            false_positives: 2,
            true_negatives: 3,
            false_negatives: 4,
        };
        total += ConfusionMatrix {
            true_positives: 10,
            false_positives: 20,
            true_negatives: 30,
            false_negatives: 40,
        };
        assert_eq!(total.true_positives, 11);
        assert_eq!(total.false_positives, 22);
        assert_eq!(total.true_negatives, 33);
        assert_eq!(total.false_negatives, 44);
    }

    #[test]
    fn display_is_humane() {
        let m = ConfusionMatrix {
            true_positives: 1,
            false_positives: 0,
            true_negatives: 1,
            false_negatives: 0,
        };
        let s = m.to_string();
        assert!(s.contains("acc 100.0%"), "got {s}");
    }
}
