//! Kernel functions — libsvm's catalogue.
//!
//! The paper uses "the default parameter values in libsvm such as radial
//! basis function as kernel with degree 3, coef0 = 0 and C = 1" (§5.1).
//! libsvm's default `gamma` is `1 / num_features`, which
//! [`Kernel::rbf_default_gamma`] reproduces.

use serde::{Deserialize, Serialize};

use crate::simd;

/// A kernel function `K(x, y)` over dense feature vectors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Kernel {
    /// `K(x,y) = xᵀy`
    Linear,
    /// `K(x,y) = (γ·xᵀy + coef0)^degree`
    Polynomial {
        /// Polynomial degree (libsvm default 3).
        degree: u32,
        /// Scale on the inner product.
        gamma: f64,
        /// Additive constant (libsvm default 0).
        coef0: f64,
    },
    /// `K(x,y) = exp(−γ‖x−y‖²)` — the paper's kernel.
    Rbf {
        /// Width parameter (libsvm default `1/num_features`).
        gamma: f64,
    },
    /// `K(x,y) = tanh(γ·xᵀy + coef0)`
    Sigmoid {
        /// Scale on the inner product.
        gamma: f64,
        /// Additive constant.
        coef0: f64,
    },
}

impl Kernel {
    /// Linear kernel.
    pub const fn linear() -> Kernel {
        Kernel::Linear
    }

    /// RBF kernel with explicit `gamma`.
    pub const fn rbf(gamma: f64) -> Kernel {
        Kernel::Rbf { gamma }
    }

    /// RBF kernel with libsvm's default `gamma = 1/num_features`.
    pub fn rbf_default_gamma(num_features: usize) -> Kernel {
        assert!(num_features > 0, "need at least one feature");
        Kernel::Rbf {
            gamma: 1.0 / num_features as f64,
        }
    }

    /// Polynomial kernel with libsvm defaults (`degree 3`, `coef0 0`) and
    /// the given `gamma`.
    pub const fn poly(gamma: f64) -> Kernel {
        Kernel::Polynomial {
            degree: 3,
            gamma,
            coef0: 0.0,
        }
    }

    /// Evaluates `K(x, y)` on the active SIMD engine ([`simd::active`]):
    /// one dispatched code path shared with the packed scorer and the SMO
    /// solver's kernel rows.
    ///
    /// # Panics
    /// Panics (release builds included) if `x` and `y` have different
    /// lengths — the vectorized primitives read through raw pointers, so
    /// the old debug-only zip-and-truncate behaviour is gone.
    pub fn compute(&self, x: &[f64], y: &[f64]) -> f64 {
        let d = simd::active();
        match *self {
            Kernel::Linear => simd::dot_with(d, x, y),
            Kernel::Polynomial {
                degree,
                gamma,
                coef0,
            } => (gamma * simd::dot_with(d, x, y) + coef0).powi(degree as i32),
            Kernel::Rbf { gamma } => {
                simd::exp_with(d.mode, simd::squared_distance_with(d, x, y) * -gamma)
            }
            Kernel::Sigmoid { gamma, coef0 } => (gamma * simd::dot_with(d, x, y) + coef0).tanh(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn linear_is_dot_product() {
        assert_eq!(Kernel::linear().compute(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    fn rbf_identity_is_one() {
        let k = Kernel::rbf(0.5);
        let x = [1.0, -2.0, 3.5];
        assert!((k.compute(&x, &x) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn rbf_decays_with_distance() {
        let k = Kernel::rbf(1.0);
        let near = k.compute(&[0.0, 0.0], &[0.1, 0.0]);
        let far = k.compute(&[0.0, 0.0], &[2.0, 0.0]);
        assert!(near > far);
        assert!(far > 0.0);
    }

    #[test]
    fn default_gamma_matches_libsvm() {
        if let Kernel::Rbf { gamma } = Kernel::rbf_default_gamma(8) {
            assert_eq!(gamma, 0.125);
        } else {
            panic!("expected RBF");
        }
    }

    #[test]
    fn polynomial_known_value() {
        // (0.5 * 4 + 1)^2 = 9
        let k = Kernel::Polynomial {
            degree: 2,
            gamma: 0.5,
            coef0: 1.0,
        };
        assert!((k.compute(&[2.0], &[2.0]) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn sigmoid_bounded() {
        let k = Kernel::Sigmoid {
            gamma: 1.0,
            coef0: 0.0,
        };
        let v = k.compute(&[100.0], &[100.0]);
        assert!((-1.0..=1.0).contains(&v));
    }

    fn vec3() -> impl Strategy<Value = Vec<f64>> {
        proptest::collection::vec(-5.0f64..5.0, 3)
    }

    proptest! {
        #[test]
        fn kernels_are_symmetric(x in vec3(), y in vec3(), gamma in 0.01f64..2.0) {
            for k in [
                Kernel::linear(),
                Kernel::rbf(gamma),
                Kernel::poly(gamma),
                Kernel::Sigmoid { gamma, coef0: 0.0 },
            ] {
                let xy = k.compute(&x, &y);
                let yx = k.compute(&y, &x);
                prop_assert!((xy - yx).abs() < 1e-12);
            }
        }

        #[test]
        fn rbf_in_unit_interval(x in vec3(), y in vec3(), gamma in 0.01f64..2.0) {
            let v = Kernel::rbf(gamma).compute(&x, &y);
            prop_assert!((0.0..=1.0).contains(&v));
        }

        #[test]
        fn rbf_cauchy_schwarz(x in vec3(), y in vec3(), gamma in 0.01f64..2.0) {
            // For a PSD kernel, K(x,y)^2 <= K(x,x) * K(y,y).
            let k = Kernel::rbf(gamma);
            let kxy = k.compute(&x, &y);
            let kxx = k.compute(&x, &x);
            let kyy = k.compute(&y, &y);
            prop_assert!(kxy * kxy <= kxx * kyy + 1e-12);
        }
    }
}
