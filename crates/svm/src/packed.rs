//! The packed scoring engine: a trained model flattened for SIMD.
//!
//! [`SvmModel`](crate::SvmModel) stores support vectors the way the solver
//! produces them — `Vec<Vec<f64>>`, one heap allocation per vector, row
//! pointers scattered across the heap. That layout is cache-hostile and
//! un-vectorizable. [`PackedModel`] flattens the whole decision function
//! into three contiguous arrays at pack time:
//!
//! * `data` — the support vectors in the lane-transposed block layout of
//!   [`simd::pack_lanes`]: groups of four vectors interleaved
//!   feature-major, so one 256-bit load fetches feature `j` of four
//!   vectors. The last block is zero-padded.
//! * `coefs` — dual coefficients, zero-padded to the same block count
//!   (a zero coefficient contributes exactly `0.0` to every kernel sum).
//! * `linear_w` — for linear kernels only, the primal weight vector
//!   `w = Σ coefᵢ·svᵢ` folded out at pack time, so a linear verdict is a
//!   single dot product and `explain` reads the very same weights.
//!
//! Packing is cached per model behind [`PackedCache`], a
//! serialization-transparent `OnceLock`: the first verdict (or an explicit
//! `warm()`) pays the one-time flatten, every later verdict reuses it, and
//! checkpoint/JSON round-trips simply rebuild it lazily.

use std::sync::{Arc, OnceLock};

use serde::{Deserialize, Error, Serialize, Value};

use crate::kernel::Kernel;
use crate::simd::{self, Dispatch, LANES};

/// A trained model flattened into contiguous SIMD-friendly arrays.
#[derive(Debug, Clone)]
pub struct PackedModel {
    kernel: Kernel,
    dim: usize,
    n_sv: usize,
    data: Vec<f64>,
    coefs: Vec<f64>,
    rho: f64,
    linear_w: Option<Vec<f64>>,
}

impl PackedModel {
    /// Flattens solver output into the packed layout.
    ///
    /// # Panics
    /// Panics if `support_vectors` and `dual_coefs` lengths differ, or if
    /// the support vectors are not all of one dimension.
    pub fn pack(
        kernel: Kernel,
        support_vectors: &[Vec<f64>],
        dual_coefs: &[f64],
        rho: f64,
    ) -> PackedModel {
        assert_eq!(
            support_vectors.len(),
            dual_coefs.len(),
            "one dual coefficient per support vector"
        );
        let n_sv = support_vectors.len();
        let dim = support_vectors.first().map_or(0, Vec::len);
        let data = simd::pack_lanes(support_vectors, dim);
        let blocks = n_sv.div_ceil(LANES);
        let mut coefs = vec![0.0; blocks * LANES];
        coefs[..n_sv].copy_from_slice(dual_coefs);
        // The primal fold runs in fixed sequential scalar order, independent
        // of the active engine: `explain` and every checkpoint must see the
        // same weight bytes on every machine.
        let linear_w = (kernel == Kernel::Linear).then(|| {
            let mut w = vec![0.0; dim];
            for (sv, &coef) in support_vectors.iter().zip(dual_coefs) {
                for (wj, &xj) in w.iter_mut().zip(sv) {
                    *wj += coef * xj;
                }
            }
            w
        });
        PackedModel {
            kernel,
            dim,
            n_sv,
            data,
            coefs,
            rho,
            linear_w,
        }
    }

    /// The kernel the model was trained with.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Feature dimension (0 for an empty model).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of (real, unpadded) support vectors.
    pub fn support_vector_count(&self) -> usize {
        self.n_sv
    }

    /// The bias term `rho`.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// The folded primal weights (linear kernels only).
    pub fn fused_weights(&self) -> Option<&[f64]> {
        self.linear_w.as_deref()
    }

    /// Decision value `f(x)` with the [`simd::active`] dispatch.
    pub fn decision_value(&self, x: &[f64]) -> f64 {
        self.decision_value_with(simd::active(), x)
    }

    /// Decision value `f(x)` with an explicit dispatch.
    ///
    /// # Panics
    /// Panics — in release builds too — if `x.len()` differs from the
    /// model's feature dimension (unless the model has no support vectors,
    /// in which case `f(x) = −rho` for any input).
    pub fn decision_value_with(&self, d: Dispatch, x: &[f64]) -> f64 {
        if self.n_sv == 0 {
            return -self.rho;
        }
        assert_eq!(
            x.len(),
            self.dim,
            "feature dimension mismatch: model expects {}, query has {}",
            self.dim,
            x.len()
        );
        match self.kernel {
            Kernel::Linear => {
                let w = self.linear_w.as_deref().expect("linear weights packed");
                simd::dot_with(d, w, x) - self.rho
            }
            Kernel::Rbf { gamma } => {
                simd::rbf_sum_with(d, &self.data, self.dim, &self.coefs, gamma, x) - self.rho
            }
            Kernel::Polynomial {
                degree,
                gamma,
                coef0,
            } => self.transformed_sum(d, x, |t| (gamma * t + coef0).powi(degree as i32)) - self.rho,
            Kernel::Sigmoid { gamma, coef0 } => {
                self.transformed_sum(d, x, |t| (gamma * t + coef0).tanh()) - self.rho
            }
        }
    }

    // Dot-based kernels without a primal form: blocked dot products, then a
    // per-lane transform accumulated in the canonical lane order (identical
    // in both engines, so bit-identity is preserved end to end).
    fn transformed_sum(&self, d: Dispatch, x: &[f64], f: impl Fn(f64) -> f64) -> f64 {
        let mut dots = vec![0.0; self.coefs.len()];
        simd::dots_into_with(d, &self.data, self.dim, x, &mut dots);
        let mut lanes = [0.0; LANES];
        for (i, (&t, &c)) in dots.iter().zip(&self.coefs).enumerate() {
            lanes[i % LANES] += c * f(t);
        }
        simd::reduce_lanes(lanes)
    }
}

/// A lazily packed [`PackedModel`] that is transparent to serde: it
/// serializes as `null`, deserializes as an empty cache, and compares equal
/// to every other cache, so the owning model keeps its plain derives and
/// its serialized form stays a pure function of the mathematical content.
#[derive(Debug, Default, Clone)]
pub struct PackedCache(OnceLock<Arc<PackedModel>>);

impl PackedCache {
    /// The cached packed model, packing on first use.
    pub fn get_or_pack(&self, pack: impl FnOnce() -> PackedModel) -> &Arc<PackedModel> {
        self.0.get_or_init(|| Arc::new(pack()))
    }
}

impl PartialEq for PackedCache {
    fn eq(&self, _: &PackedCache) -> bool {
        true // a cache is derived state, never part of model identity
    }
}

impl Serialize for PackedCache {
    fn serialize(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for PackedCache {
    fn deserialize(_: &Value) -> Result<Self, Error> {
        Ok(PackedCache::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn svs() -> (Vec<Vec<f64>>, Vec<f64>) {
        let svs = vec![
            vec![1.0, 0.5, -0.25],
            vec![-1.0, 2.0, 0.75],
            vec![0.5, -0.5, 1.5],
            vec![2.0, 1.0, -1.0],
            vec![-0.75, 0.25, 0.5],
        ];
        let coefs = vec![0.8, -1.0, 0.3, -0.6, 0.5];
        (svs, coefs)
    }

    #[test]
    fn packed_matches_naive_decision_function() {
        let (svs, coefs) = svs();
        for kernel in [
            Kernel::linear(),
            Kernel::rbf(0.3),
            Kernel::poly(0.5),
            Kernel::Sigmoid {
                gamma: 0.25,
                coef0: 0.1,
            },
        ] {
            let packed = PackedModel::pack(kernel, &svs, &coefs, 0.125);
            let x = [0.4, -1.2, 0.9];
            let naive: f64 = svs
                .iter()
                .zip(&coefs)
                .map(|(sv, &c)| c * kernel.compute(sv, &x))
                .sum::<f64>()
                - 0.125;
            let got = packed.decision_value_with(Dispatch::scalar_deterministic(), &x);
            assert!(
                (got - naive).abs() < 1e-9,
                "{kernel:?}: packed {got} vs naive {naive}"
            );
        }
    }

    #[test]
    fn empty_model_scores_minus_rho() {
        let packed = PackedModel::pack(Kernel::rbf(1.0), &[], &[], 0.25);
        assert_eq!(packed.decision_value(&[1.0, 2.0]), -0.25);
    }

    #[test]
    #[should_panic(expected = "feature dimension mismatch")]
    fn wrong_dimension_panics_in_release_too() {
        let (svs, coefs) = svs();
        let packed = PackedModel::pack(Kernel::rbf(0.3), &svs, &coefs, 0.0);
        packed.decision_value(&[1.0, 2.0]);
    }

    #[test]
    fn fused_linear_weights_match_explain_weights() {
        let (svs, coefs) = svs();
        let packed = PackedModel::pack(Kernel::linear(), &svs, &coefs, 0.0);
        let w = packed.fused_weights().expect("linear");
        let mut expect = vec![0.0; 3];
        for (sv, &c) in svs.iter().zip(&coefs) {
            for (j, &v) in sv.iter().enumerate() {
                expect[j] += c * v;
            }
        }
        assert_eq!(w, &expect[..], "bit-identical fold");
    }
}
