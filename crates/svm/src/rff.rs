//! Random Fourier features: O(D·d) approximate RBF scoring.
//!
//! Exact RBF scoring is O(n_sv·d) per query — every verdict walks every
//! support vector. Rahimi & Recht's random-Fourier construction replaces
//! the kernel with an explicit finite feature map: because the RBF kernel
//! is shift-invariant, Bochner's theorem gives
//!
//! ```text
//!   K(x, y) = exp(−γ‖x−y‖²) ≈ (2/D) Σᵢ cos(ωᵢᵀx + bᵢ)·cos(ωᵢᵀy + bᵢ)
//! ```
//!
//! with `ωᵢ ~ N(0, 2γI)` and `bᵢ ~ U[0, 2π)`. Substituting into the SVM
//! decision function collapses the support-vector sum into a single
//! precomputed weight per feature:
//!
//! ```text
//!   f(x) ≈ Σᵢ wᵢ·cos(ωᵢᵀx + bᵢ) − rho,
//!   wᵢ = (2/D) Σₛ coefₛ·cos(ωᵢᵀsvₛ + bᵢ)
//! ```
//!
//! so scoring is one D×d projection plus D cosines — independent of the
//! support-vector count. The projection is drawn from a seeded `splitmix64`
//! stream, making the model **checkpointable**: the same `(model, D, seed)`
//! triple rebuilds byte-identical matrices anywhere, and the matrices
//! themselves round-trip through the lifecycle checkpoint format.
//!
//! The approximation is validated, not trusted: callers keep the exact
//! model as the shadow reference through the `frappe-lifecycle` promotion
//! gate and require ≥99.5% verdict agreement on held-out data (see
//! [`RffModel::verdict_agreement`] and the `scoring` test suite).

use std::fmt;
use std::sync::{Arc, OnceLock};

use serde::{Deserialize, Error, Serialize, Value};

use crate::kernel::Kernel;
use crate::model::SvmModel;
use crate::simd::{self, Dispatch, LANES};

/// Default number of Fourier features `D`. At the paper's dimensionality
/// (d ≈ 9) this holds verdict agreement comfortably above the 99.5% gate
/// while keeping a verdict ~an order of magnitude cheaper than the exact
/// kernel sum at realistic support counts.
pub const DEFAULT_FEATURES: usize = 512;

/// Why an [`RffModel`] could not be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RffError {
    /// The source model's kernel is not RBF — the Fourier construction
    /// only applies to shift-invariant kernels.
    NotRbf,
    /// Zero Fourier features requested.
    ZeroFeatures,
    /// Component arrays with inconsistent shapes (checkpoint corruption).
    Shape(String),
}

impl fmt::Display for RffError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RffError::NotRbf => write!(f, "random-Fourier approximation requires an RBF kernel"),
            RffError::ZeroFeatures => write!(f, "need at least one Fourier feature"),
            RffError::Shape(detail) => write!(f, "inconsistent RFF component shapes: {detail}"),
        }
    }
}

impl std::error::Error for RffError {}

// Serialization-transparent lazy pack, same contract as
// `packed::PackedCache` (null on the wire, equal to everything).
#[derive(Debug, Default, Clone)]
struct RffCache(OnceLock<Arc<RffPacked>>);

impl PartialEq for RffCache {
    fn eq(&self, _: &RffCache) -> bool {
        true
    }
}

impl Serialize for RffCache {
    fn serialize(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for RffCache {
    fn deserialize(_: &Value) -> Result<Self, Error> {
        Ok(RffCache::default())
    }
}

#[derive(Debug)]
struct RffPacked {
    /// Projection rows in the lane-transposed layout of [`simd::pack_lanes`].
    data: Vec<f64>,
    /// Phases zero-padded to the block count.
    phases: Vec<f64>,
    /// Weights zero-padded to the block count (a zero weight contributes
    /// exactly `0.0·cos(0 + 0) = 0.0`).
    weights: Vec<f64>,
}

/// A seeded, checkpointable random-Fourier approximation of one RBF model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RffModel {
    gamma: f64,
    seed: u64,
    dim: usize,
    features: usize,
    /// Row-major `features × dim` projection matrix (row i = ωᵢ).
    projection: Vec<f64>,
    phases: Vec<f64>,
    weights: Vec<f64>,
    rho: f64,
    packed: RffCache,
}

// --- seeded sampling -------------------------------------------------------

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const TWO_POW_53: f64 = 9007199254740992.0;

/// Uniform on `(0, 1]` — safe as a `ln` argument.
fn unit_open(state: &mut u64) -> f64 {
    ((splitmix64(state) >> 11) + 1) as f64 / TWO_POW_53
}

/// Uniform on `[0, 1)`.
fn unit_half_open(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / TWO_POW_53
}

/// Standard normal via Box–Muller (cosine branch only: two draws per
/// sample, no hidden state, deterministic stream position).
fn gaussian(state: &mut u64) -> f64 {
    let u1 = unit_open(state);
    let u2 = unit_half_open(state);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

// Plain sequential dot, deliberately NOT the SIMD engine: construction must
// produce identical bytes regardless of the machine's ISA, because the
// matrices are checkpointed and diffed byte-for-byte.
fn seq_dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(p, q)| p * q).sum()
}

impl RffModel {
    /// Draws a `features`-dimensional Fourier map from `seed` and folds the
    /// exact model's support-vector sum into per-feature weights.
    ///
    /// Construction is pure scalar arithmetic in a fixed order — the same
    /// `(model, features, seed)` triple yields byte-identical matrices on
    /// every machine and at every thread count.
    pub fn from_model(model: &SvmModel, features: usize, seed: u64) -> Result<RffModel, RffError> {
        let Kernel::Rbf { gamma } = model.kernel() else {
            return Err(RffError::NotRbf);
        };
        if features == 0 {
            return Err(RffError::ZeroFeatures);
        }
        let dim = model.support_vectors().first().map_or(0, Vec::len);
        let scale = (2.0 * gamma).sqrt();
        let mut state = seed;
        let mut projection = Vec::with_capacity(features * dim);
        let mut phases = Vec::with_capacity(features);
        for _ in 0..features {
            for _ in 0..dim {
                projection.push(gaussian(&mut state) * scale);
            }
            phases.push(std::f64::consts::TAU * unit_half_open(&mut state));
        }
        let norm = 2.0 / features as f64;
        let mut weights = vec![0.0; features];
        for (i, w) in weights.iter_mut().enumerate() {
            let row = &projection[i * dim..(i + 1) * dim];
            let mut acc = 0.0;
            for (sv, &coef) in model.support_vectors().iter().zip(model.dual_coefs()) {
                acc += coef * (seq_dot(row, sv) + phases[i]).cos();
            }
            *w = norm * acc;
        }
        Ok(RffModel {
            gamma,
            seed,
            dim,
            features,
            projection,
            phases,
            weights,
            rho: model.rho(),
            packed: RffCache::default(),
        })
    }

    /// Reassembles a model from checkpointed components.
    pub fn from_parts(
        gamma: f64,
        seed: u64,
        dim: usize,
        projection: Vec<f64>,
        phases: Vec<f64>,
        weights: Vec<f64>,
        rho: f64,
    ) -> Result<RffModel, RffError> {
        let features = phases.len();
        if features == 0 {
            return Err(RffError::ZeroFeatures);
        }
        if weights.len() != features {
            return Err(RffError::Shape(format!(
                "{} weights for {features} phases",
                weights.len()
            )));
        }
        if projection.len() != features * dim {
            return Err(RffError::Shape(format!(
                "projection has {} entries, expected {features}×{dim}",
                projection.len()
            )));
        }
        Ok(RffModel {
            gamma,
            seed,
            dim,
            features,
            projection,
            phases,
            weights,
            rho,
            packed: RffCache::default(),
        })
    }

    /// RBF width the approximation was drawn for.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// The seed of the projection stream.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Input feature dimension `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of Fourier features `D`.
    pub fn features(&self) -> usize {
        self.features
    }

    /// Row-major `D × d` projection matrix.
    pub fn projection(&self) -> &[f64] {
        &self.projection
    }

    /// Per-feature phases `bᵢ`.
    pub fn phases(&self) -> &[f64] {
        &self.phases
    }

    /// Per-feature folded weights `wᵢ`.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The bias term inherited from the exact model.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    fn packed(&self) -> &RffPacked {
        self.packed.0.get_or_init(|| {
            let rows: Vec<&[f64]> = self.projection.chunks(self.dim.max(1)).collect();
            let blocks = self.features.div_ceil(LANES);
            let data = if self.dim == 0 {
                Vec::new()
            } else {
                simd::pack_lanes(&rows, self.dim)
            };
            let mut phases = vec![0.0; blocks * LANES];
            phases[..self.features].copy_from_slice(&self.phases);
            let mut weights = vec![0.0; blocks * LANES];
            weights[..self.features].copy_from_slice(&self.weights);
            Arc::new(RffPacked {
                data,
                phases,
                weights,
            })
        })
    }

    /// Builds the packed projection eagerly (first-verdict warm-up).
    pub fn warm(&self) {
        let _ = self.packed();
    }

    /// Approximate decision value with the [`simd::active`] dispatch.
    pub fn decision_value(&self, x: &[f64]) -> f64 {
        self.decision_value_with(simd::active(), x)
    }

    /// Approximate decision value with an explicit dispatch.
    ///
    /// # Panics
    /// Panics — in release builds too — if `x.len()` differs from the
    /// model's feature dimension.
    pub fn decision_value_with(&self, d: Dispatch, x: &[f64]) -> f64 {
        assert_eq!(
            x.len(),
            self.dim,
            "feature dimension mismatch: model expects {}, query has {}",
            self.dim,
            x.len()
        );
        let p = self.packed();
        simd::rff_sum_with(d, &p.data, self.dim, &p.phases, &p.weights, x) - self.rho
    }

    /// Predicted label, same tie convention as the exact model
    /// (`+1` when `f(x) ≥ 0`).
    pub fn predict(&self, x: &[f64]) -> f64 {
        if self.decision_value(x) >= 0.0 {
            1.0
        } else {
            -1.0
        }
    }

    /// Fraction of `xs` on which this approximation and the exact model
    /// agree on the verdict sign. `1.0` on an empty slice.
    pub fn verdict_agreement<X: AsRef<[f64]>>(&self, exact: &SvmModel, xs: &[X]) -> f64 {
        if xs.is_empty() {
            return 1.0;
        }
        let agree = xs
            .iter()
            .filter(|x| {
                let x = x.as_ref();
                (self.decision_value(x) >= 0.0) == (exact.decision_value(x) >= 0.0)
            })
            .count();
        agree as f64 / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_rbf_model() -> SvmModel {
        // A small hand-made RBF model over 3 features.
        let svs = vec![
            vec![0.2, -0.4, 0.9],
            vec![-1.0, 0.3, 0.1],
            vec![0.7, 0.7, -0.6],
            vec![-0.2, -0.9, 0.4],
        ];
        let coefs = vec![1.0, -0.8, 0.6, -0.9];
        SvmModel::new(Kernel::rbf(0.5), svs, coefs, 0.05)
    }

    #[test]
    fn construction_is_deterministic() {
        let m = toy_rbf_model();
        let a = RffModel::from_model(&m, 128, 42).unwrap();
        let b = RffModel::from_model(&m, 128, 42).unwrap();
        assert_eq!(a.projection(), b.projection());
        assert_eq!(a.phases(), b.phases());
        assert_eq!(a.weights(), b.weights());
    }

    #[test]
    fn different_seeds_differ() {
        let m = toy_rbf_model();
        let a = RffModel::from_model(&m, 64, 1).unwrap();
        let b = RffModel::from_model(&m, 64, 2).unwrap();
        assert_ne!(a.projection(), b.projection());
    }

    #[test]
    fn approximates_decision_values() {
        let m = toy_rbf_model();
        let rff = RffModel::from_model(&m, 4096, 7).unwrap();
        // With D = 4096 the kernel estimator's std error is ~1.5%, so
        // decision values should track closely on in-range points.
        for x in [
            [0.1, 0.2, -0.3],
            [-0.5, 0.8, 0.0],
            [0.9, -0.9, 0.5],
            [0.0, 0.0, 0.0],
        ] {
            let exact = m.decision_value(&x);
            let approx = rff.decision_value(&x);
            assert!(
                (exact - approx).abs() < 0.15,
                "exact {exact} vs approx {approx} at {x:?}"
            );
        }
    }

    #[test]
    fn rejects_non_rbf() {
        let m = SvmModel::new(Kernel::linear(), vec![vec![1.0]], vec![1.0], 0.0);
        assert_eq!(
            RffModel::from_model(&m, 16, 0).unwrap_err(),
            RffError::NotRbf
        );
    }

    #[test]
    fn parts_round_trip() {
        let m = toy_rbf_model();
        let a = RffModel::from_model(&m, 32, 9).unwrap();
        let b = RffModel::from_parts(
            a.gamma(),
            a.seed(),
            a.dim(),
            a.projection().to_vec(),
            a.phases().to_vec(),
            a.weights().to_vec(),
            a.rho(),
        )
        .unwrap();
        assert_eq!(a, b);
        let x = [0.3, -0.1, 0.6];
        assert_eq!(
            a.decision_value(&x).to_bits(),
            b.decision_value(&x).to_bits()
        );
    }
}
