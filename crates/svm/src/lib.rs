//! # svm — a from-scratch Support Vector Machine
//!
//! FRAppE's classifier is an SVM "widely used for binary classification in
//! security and other disciplines", trained with libsvm's default
//! parameters: RBF kernel, `C = 1` (§5.1). The Rust ML ecosystem offers no
//! libsvm equivalent we are permitted to depend on, so this crate implements
//! the whole stack from scratch:
//!
//! * [`kernel`] — linear, polynomial, RBF and sigmoid kernels (libsvm's
//!   catalogue), with libsvm's `gamma = 1/num_features` default.
//! * [`smo`] — the Sequential Minimal Optimization solver for the C-SVC
//!   dual, with maximal-violating-pair working-set selection, an LRU kernel
//!   row cache, and libsvm's two-variable analytic subproblem update.
//! * [`model`] — the trained model: support vectors, dual coefficients and
//!   the bias term, with decision values and sign prediction.
//! * [`simd`] — runtime-dispatched scoring primitives: AVX2 intrinsics
//!   with a bit-identical unrolled-scalar fallback, plus a deterministic
//!   vectorizable exponential.
//! * [`packed`] — the model flattened into contiguous lane-transposed
//!   arrays; all scoring runs here, including a fused single-dot-product
//!   path for linear kernels.
//! * [`rff`] — a seeded, checkpointable random-Fourier approximation of
//!   the RBF decision function: O(D·d) per verdict instead of O(n_sv·d).
//! * [`scale`] — per-feature min–max scaling to `[-1, 1]` (what `svm-scale`
//!   does; essential for RBF kernels over mixed-unit features).
//! * [`dataset`] — labelled datasets, class-ratio subsampling (the paper's
//!   1:1 / 4:1 / 7:1 / 10:1 benign-to-malicious sweeps) and shuffling.
//! * [`crossval`] — stratified k-fold cross-validation (the paper uses
//!   5-fold throughout); folds run in parallel on a `frappe-jobs` pool
//!   with bit-identical results at any thread count.
//! * [`metrics`] — confusion matrices and the three metrics the paper
//!   reports: accuracy, false-positive rate and false-negative rate.
//! * [`grid`] — grid search over `(C, γ)` for the ablation benches,
//!   parallel over the flattened points × folds task list.
//!
//! ## Quick example
//!
//! ```
//! use svm::{Dataset, SvmParams, Kernel, train};
//!
//! // A linearly separable toy problem.
//! let xs = vec![
//!     vec![0.0, 0.0], vec![0.1, 0.2], vec![0.2, 0.1],
//!     vec![1.0, 1.0], vec![0.9, 0.8], vec![0.8, 1.0],
//! ];
//! let ys = vec![-1.0, -1.0, -1.0, 1.0, 1.0, 1.0];
//! let data = Dataset::new(xs, ys).unwrap();
//! let model = train(&data, &SvmParams::with_kernel(Kernel::linear()));
//! assert_eq!(model.predict(&[0.05, 0.1]), -1.0);
//! assert_eq!(model.predict(&[0.95, 0.9]), 1.0);
//! ```

// Unsafe code is denied crate-wide and allowed back in exactly one place:
// the `simd` module's AVX2 intrinsics, each behind runtime ISA detection
// with a bit-identical safe scalar fallback.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod crossval;
pub mod dataset;
pub mod grid;
pub mod kernel;
pub mod metrics;
pub mod model;
pub mod packed;
pub mod rff;
pub mod scale;
pub mod simd;
pub mod smo;

pub use crossval::{cross_validate, cross_validate_on, CrossValReport};
pub use dataset::Dataset;
pub use grid::{grid_search, grid_search_on, GridPoint, GridSearchResult};
pub use kernel::Kernel;
pub use metrics::ConfusionMatrix;
pub use model::SvmModel;
pub use packed::PackedModel;
pub use rff::{RffError, RffModel};
pub use scale::Scaler;
pub use simd::{Dispatch, Engine, MathMode};
pub use smo::{train, CacheStats, SvmParams};
