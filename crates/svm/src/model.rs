//! Trained SVM models.

use serde::{Deserialize, Serialize};

use crate::kernel::Kernel;
use crate::packed::{PackedCache, PackedModel};
use crate::simd::Dispatch;

/// A trained C-SVC model.
///
/// The decision function is
///
/// ```text
///   f(x) = Σᵢ coefᵢ · K(svᵢ, x) − rho
/// ```
///
/// where `coefᵢ = yᵢ·αᵢ` are the signed dual coefficients of the support
/// vectors, and the predicted label is `sign(f(x))` (`+1` on ties, which in
/// FRAppE errs on the side of flagging).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SvmModel {
    kernel: Kernel,
    support_vectors: Vec<Vec<f64>>,
    dual_coefs: Vec<f64>,
    rho: f64,
    packed: PackedCache,
}

impl SvmModel {
    /// Assembles a model from solver output.
    ///
    /// # Panics
    /// Panics if `support_vectors` and `dual_coefs` lengths differ, or if
    /// the support vectors do not all share one dimension.
    pub fn new(
        kernel: Kernel,
        support_vectors: Vec<Vec<f64>>,
        dual_coefs: Vec<f64>,
        rho: f64,
    ) -> Self {
        assert_eq!(
            support_vectors.len(),
            dual_coefs.len(),
            "one dual coefficient per support vector"
        );
        let dim = support_vectors.first().map_or(0, Vec::len);
        assert!(
            support_vectors.iter().all(|sv| sv.len() == dim),
            "support vectors must share one dimension"
        );
        SvmModel {
            kernel,
            support_vectors,
            dual_coefs,
            rho,
            packed: PackedCache::default(),
        }
    }

    /// The SIMD-packed form of this model, flattening on first use.
    ///
    /// All scoring goes through this representation; the row-major
    /// `Vec<Vec<f64>>` form is kept as the canonical serialized shape.
    pub fn packed(&self) -> &PackedModel {
        self.packed.get_or_pack(|| {
            PackedModel::pack(
                self.kernel,
                &self.support_vectors,
                &self.dual_coefs,
                self.rho,
            )
        })
    }

    /// Builds the packed representation eagerly, so the first real verdict
    /// doesn't pay the flatten (the serve path calls this on install).
    pub fn warm(&self) {
        let _ = self.packed();
    }

    /// The kernel the model was trained with.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Number of support vectors.
    pub fn support_vector_count(&self) -> usize {
        self.support_vectors.len()
    }

    /// The support vectors themselves (row-major, one `Vec` per vector).
    ///
    /// Exposed so model checkpoints can serialize the decision function
    /// exactly; pair each row with the matching entry of
    /// [`dual_coefs`](Self::dual_coefs).
    pub fn support_vectors(&self) -> &[Vec<f64>] {
        &self.support_vectors
    }

    /// Signed dual coefficients (`yᵢ·αᵢ`).
    pub fn dual_coefs(&self) -> &[f64] {
        &self.dual_coefs
    }

    /// The bias term `rho`.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// Primal weight vector `w = Σᵢ coefᵢ·svᵢ`, defined for linear
    /// kernels only (`f(x) = w·x − rho`).
    ///
    /// This is what makes verdicts explainable: each `wⱼ·xⱼ` term is one
    /// feature's contribution to the decision value. Non-linear kernels
    /// have no finite-dimensional `w`, so they return `None`.
    ///
    /// The weights come straight from the packed engine's fused-linear
    /// fold, so `explain` reads the very same bytes a verdict multiplies.
    pub fn linear_weights(&self) -> Option<Vec<f64>> {
        self.packed().fused_weights().map(<[f64]>::to_vec)
    }

    /// Raw decision value `f(x)`; positive means class `+1`.
    ///
    /// Evaluated by the packed SIMD engine on the [`crate::simd::active`]
    /// dispatch: a single fused dot product for linear kernels, blocked
    /// lane-parallel kernel sums otherwise.
    ///
    /// # Panics
    /// Panics (release builds included) if `x.len()` differs from the
    /// model's feature dimension — a short query used to zip-truncate
    /// silently in release builds.
    pub fn decision_value(&self, x: &[f64]) -> f64 {
        self.packed().decision_value(x)
    }

    /// [`Self::decision_value`] on an explicit engine dispatch; used by
    /// tests and benches to compare engines side by side without touching
    /// the process-wide selection.
    pub fn decision_value_with(&self, d: Dispatch, x: &[f64]) -> f64 {
        self.packed().decision_value_with(d, x)
    }

    /// Predicted label: `+1.0` if `f(x) ≥ 0`, else `-1.0`.
    pub fn predict(&self, x: &[f64]) -> f64 {
        if self.decision_value(x) >= 0.0 {
            1.0
        } else {
            -1.0
        }
    }

    /// Predicts a batch of examples.
    pub fn predict_batch<'a, I>(&self, xs: I) -> Vec<f64>
    where
        I: IntoIterator<Item = &'a [f64]>,
    {
        xs.into_iter().map(|x| self.predict(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-built linear model: f(x) = 1·K(sv1,x) − 1·K(sv2,x) − 0
    /// with sv1 = (1,0), sv2 = (−1,0)  ⇒  f(x) = 2·x₀.
    fn hand_model() -> SvmModel {
        SvmModel::new(
            Kernel::linear(),
            vec![vec![1.0, 0.0], vec![-1.0, 0.0]],
            vec![1.0, -1.0],
            0.0,
        )
    }

    #[test]
    fn decision_value_matches_hand_computation() {
        let m = hand_model();
        assert!((m.decision_value(&[3.0, 5.0]) - 6.0).abs() < 1e-12);
        assert!((m.decision_value(&[-2.0, 1.0]) + 4.0).abs() < 1e-12);
    }

    #[test]
    fn predict_signs() {
        let m = hand_model();
        assert_eq!(m.predict(&[0.5, 0.0]), 1.0);
        assert_eq!(m.predict(&[-0.5, 0.0]), -1.0);
        // tie goes to +1
        assert_eq!(m.predict(&[0.0, 9.0]), 1.0);
    }

    #[test]
    fn rho_shifts_boundary() {
        let m = SvmModel::new(
            Kernel::linear(),
            vec![vec![1.0, 0.0], vec![-1.0, 0.0]],
            vec![1.0, -1.0],
            1.0,
        );
        // f(x) = 2x₀ − 1: boundary at x₀ = 0.5
        assert_eq!(m.predict(&[0.4, 0.0]), -1.0);
        assert_eq!(m.predict(&[0.6, 0.0]), 1.0);
    }

    #[test]
    fn batch_prediction() {
        let m = hand_model();
        let a = [1.0, 0.0];
        let b = [-1.0, 0.0];
        assert_eq!(m.predict_batch([&a[..], &b[..]]), vec![1.0, -1.0]);
    }

    #[test]
    #[should_panic(expected = "one dual coefficient per support vector")]
    fn mismatched_lengths_panic() {
        SvmModel::new(Kernel::linear(), vec![vec![1.0]], vec![], 0.0);
    }

    #[test]
    fn linear_weights_reproduce_decision_value() {
        let m = SvmModel::new(
            Kernel::linear(),
            vec![vec![1.0, 2.0], vec![-0.5, 1.0]],
            vec![0.75, -1.25],
            0.125,
        );
        let w = m.linear_weights().expect("linear model has weights");
        for x in [[0.3, -0.7], [2.0, 4.5], [-1.0, 0.0]] {
            let via_w = w[0] * x[0] + w[1] * x[1] - m.rho();
            assert!((via_w - m.decision_value(&x)).abs() < 1e-12);
        }
    }

    #[test]
    fn nonlinear_kernels_have_no_weights() {
        let m = SvmModel::new(
            Kernel::Rbf { gamma: 0.5 },
            vec![vec![1.0, 0.0]],
            vec![1.0],
            0.0,
        );
        assert!(m.linear_weights().is_none());
    }
}
