//! Trained SVM models.

use serde::{Deserialize, Serialize};

use crate::kernel::Kernel;

/// A trained C-SVC model.
///
/// The decision function is
///
/// ```text
///   f(x) = Σᵢ coefᵢ · K(svᵢ, x) − rho
/// ```
///
/// where `coefᵢ = yᵢ·αᵢ` are the signed dual coefficients of the support
/// vectors, and the predicted label is `sign(f(x))` (`+1` on ties, which in
/// FRAppE errs on the side of flagging).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SvmModel {
    kernel: Kernel,
    support_vectors: Vec<Vec<f64>>,
    dual_coefs: Vec<f64>,
    rho: f64,
}

impl SvmModel {
    /// Assembles a model from solver output.
    ///
    /// # Panics
    /// Panics if `support_vectors` and `dual_coefs` lengths differ.
    pub fn new(
        kernel: Kernel,
        support_vectors: Vec<Vec<f64>>,
        dual_coefs: Vec<f64>,
        rho: f64,
    ) -> Self {
        assert_eq!(
            support_vectors.len(),
            dual_coefs.len(),
            "one dual coefficient per support vector"
        );
        SvmModel {
            kernel,
            support_vectors,
            dual_coefs,
            rho,
        }
    }

    /// The kernel the model was trained with.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Number of support vectors.
    pub fn support_vector_count(&self) -> usize {
        self.support_vectors.len()
    }

    /// The support vectors themselves (row-major, one `Vec` per vector).
    ///
    /// Exposed so model checkpoints can serialize the decision function
    /// exactly; pair each row with the matching entry of
    /// [`dual_coefs`](Self::dual_coefs).
    pub fn support_vectors(&self) -> &[Vec<f64>] {
        &self.support_vectors
    }

    /// Signed dual coefficients (`yᵢ·αᵢ`).
    pub fn dual_coefs(&self) -> &[f64] {
        &self.dual_coefs
    }

    /// The bias term `rho`.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// Primal weight vector `w = Σᵢ coefᵢ·svᵢ`, defined for linear
    /// kernels only (`f(x) = w·x − rho`).
    ///
    /// This is what makes verdicts explainable: each `wⱼ·xⱼ` term is one
    /// feature's contribution to the decision value. Non-linear kernels
    /// have no finite-dimensional `w`, so they return `None`.
    pub fn linear_weights(&self) -> Option<Vec<f64>> {
        if self.kernel != Kernel::Linear {
            return None;
        }
        let dim = self.support_vectors.first().map_or(0, Vec::len);
        let mut w = vec![0.0; dim];
        for (sv, &coef) in self.support_vectors.iter().zip(&self.dual_coefs) {
            for (wj, &xj) in w.iter_mut().zip(sv) {
                *wj += coef * xj;
            }
        }
        Some(w)
    }

    /// Raw decision value `f(x)`; positive means class `+1`.
    pub fn decision_value(&self, x: &[f64]) -> f64 {
        let mut sum = 0.0;
        for (sv, &coef) in self.support_vectors.iter().zip(&self.dual_coefs) {
            sum += coef * self.kernel.compute(sv, x);
        }
        sum - self.rho
    }

    /// Predicted label: `+1.0` if `f(x) ≥ 0`, else `-1.0`.
    pub fn predict(&self, x: &[f64]) -> f64 {
        if self.decision_value(x) >= 0.0 {
            1.0
        } else {
            -1.0
        }
    }

    /// Predicts a batch of examples.
    pub fn predict_batch<'a, I>(&self, xs: I) -> Vec<f64>
    where
        I: IntoIterator<Item = &'a [f64]>,
    {
        xs.into_iter().map(|x| self.predict(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-built linear model: f(x) = 1·K(sv1,x) − 1·K(sv2,x) − 0
    /// with sv1 = (1,0), sv2 = (−1,0)  ⇒  f(x) = 2·x₀.
    fn hand_model() -> SvmModel {
        SvmModel::new(
            Kernel::linear(),
            vec![vec![1.0, 0.0], vec![-1.0, 0.0]],
            vec![1.0, -1.0],
            0.0,
        )
    }

    #[test]
    fn decision_value_matches_hand_computation() {
        let m = hand_model();
        assert!((m.decision_value(&[3.0, 5.0]) - 6.0).abs() < 1e-12);
        assert!((m.decision_value(&[-2.0, 1.0]) + 4.0).abs() < 1e-12);
    }

    #[test]
    fn predict_signs() {
        let m = hand_model();
        assert_eq!(m.predict(&[0.5, 0.0]), 1.0);
        assert_eq!(m.predict(&[-0.5, 0.0]), -1.0);
        // tie goes to +1
        assert_eq!(m.predict(&[0.0, 9.0]), 1.0);
    }

    #[test]
    fn rho_shifts_boundary() {
        let m = SvmModel::new(
            Kernel::linear(),
            vec![vec![1.0, 0.0], vec![-1.0, 0.0]],
            vec![1.0, -1.0],
            1.0,
        );
        // f(x) = 2x₀ − 1: boundary at x₀ = 0.5
        assert_eq!(m.predict(&[0.4, 0.0]), -1.0);
        assert_eq!(m.predict(&[0.6, 0.0]), 1.0);
    }

    #[test]
    fn batch_prediction() {
        let m = hand_model();
        let a = [1.0, 0.0];
        let b = [-1.0, 0.0];
        assert_eq!(m.predict_batch([&a[..], &b[..]]), vec![1.0, -1.0]);
    }

    #[test]
    #[should_panic(expected = "one dual coefficient per support vector")]
    fn mismatched_lengths_panic() {
        SvmModel::new(Kernel::linear(), vec![vec![1.0]], vec![], 0.0);
    }

    #[test]
    fn linear_weights_reproduce_decision_value() {
        let m = SvmModel::new(
            Kernel::linear(),
            vec![vec![1.0, 2.0], vec![-0.5, 1.0]],
            vec![0.75, -1.25],
            0.125,
        );
        let w = m.linear_weights().expect("linear model has weights");
        for x in [[0.3, -0.7], [2.0, 4.5], [-1.0, 0.0]] {
            let via_w = w[0] * x[0] + w[1] * x[1] - m.rho();
            assert!((via_w - m.decision_value(&x)).abs() < 1e-12);
        }
    }

    #[test]
    fn nonlinear_kernels_have_no_weights() {
        let m = SvmModel::new(
            Kernel::Rbf { gamma: 0.5 },
            vec![vec![1.0, 0.0]],
            vec![1.0],
            0.0,
        );
        assert!(m.linear_weights().is_none());
    }
}
