//! App-level ground-truth derivation.
//!
//! §2.3: *"if any post made by an application was flagged as malicious by
//! MyPageKeeper, we mark the application as malicious"*. Popular apps can
//! be wrongly caught this way because piggybacked posts carry their
//! attribution (§6.2); the paper handles this with a whitelist "created by
//! considering the most popular apps and significant manual effort", which
//! [`derive_app_labels`] reproduces.

use std::collections::{HashMap, HashSet};

use fb_platform::platform::Platform;
use osn_types::ids::AppId;

use crate::service::MyPageKeeper;

/// The label assigned to an app by the heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppLabel {
    /// At least one of the app's monitored posts was flagged.
    Malicious,
    /// The app posted but nothing was flagged.
    Benign,
    /// The app was flagged but is on the whitelist (popular app, most
    /// likely piggybacked).
    Whitelisted,
}

/// The labelling outcome for a whole platform.
#[derive(Debug, Clone)]
pub struct LabelReport {
    /// Label per app that was observed posting at least once.
    pub labels: HashMap<AppId, AppLabel>,
    /// Per-app counts of (flagged posts, total monitored posts).
    pub post_counts: HashMap<AppId, (usize, usize)>,
}

impl LabelReport {
    /// Apps labelled malicious (excludes whitelisted).
    pub fn malicious_apps(&self) -> Vec<AppId> {
        let mut v: Vec<AppId> = self
            .labels
            .iter()
            .filter(|(_, &l)| l == AppLabel::Malicious)
            .map(|(&a, _)| a)
            .collect();
        v.sort_unstable();
        v
    }

    /// Apps labelled benign (no flagged posts; excludes whitelisted).
    pub fn benign_apps(&self) -> Vec<AppId> {
        let mut v: Vec<AppId> = self
            .labels
            .iter()
            .filter(|(_, &l)| l == AppLabel::Benign)
            .map(|(&a, _)| a)
            .collect();
        v.sort_unstable();
        v
    }

    /// The *malicious posts to all posts ratio* for an app — Fig. 16's
    /// x-axis, and the signal used to spot piggybacked popular apps (a low
    /// ratio on a high-volume app is the piggybacking signature).
    pub fn malicious_post_ratio(&self, app: AppId) -> Option<f64> {
        let &(flagged, total) = self.post_counts.get(&app)?;
        if total == 0 {
            return None;
        }
        Some(flagged as f64 / total as f64)
    }
}

/// Derives app labels from the service's flagged-post set.
///
/// Only posts that MyPageKeeper actually monitored count toward an app's
/// totals (the paper's view is limited to subscribed users). Apps that
/// never appeared in monitored posts receive no label.
pub fn derive_app_labels(
    service: &MyPageKeeper,
    platform: &Platform,
    whitelist: &HashSet<AppId>,
) -> LabelReport {
    let mut post_counts: HashMap<AppId, (usize, usize)> = HashMap::new();

    for &pid in service.monitored_posts() {
        let Some(post) = platform.post(pid) else {
            continue;
        };
        let Some(app) = post.app else {
            continue;
        };
        let entry = post_counts.entry(app).or_insert((0, 0));
        entry.1 += 1;
        if service.is_flagged(pid) {
            entry.0 += 1;
        }
    }

    let labels = post_counts
        .iter()
        .map(|(&app, &(flagged, _))| {
            let label = if flagged == 0 {
                AppLabel::Benign
            } else if whitelist.contains(&app) {
                AppLabel::Whitelisted
            } else {
                AppLabel::Malicious
            };
            (app, label)
        })
        .collect();

    LabelReport {
        labels,
        post_counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::CalibratedOracle;
    use fb_platform::app::AppRegistration;
    use osn_types::ids::UserId;
    use osn_types::permission::{Permission, PermissionSet};
    use osn_types::url::Url;

    fn setup() -> (Platform, Vec<UserId>, AppId, AppId, AppId) {
        let mut p = Platform::new();
        let users = p.add_users(2);
        let mk = |p: &mut Platform, name: &str| {
            p.register_app(AppRegistration::simple(
                name,
                PermissionSet::from_iter([Permission::PublishStream]),
                Url::parse(&format!("http://{name}.com/l")).unwrap(),
            ))
            .unwrap()
        };
        let bad = mk(&mut p, "badapp");
        let good = mk(&mut p, "goodapp");
        let popular = mk(&mut p, "farmville");
        for &u in &users {
            for app in [bad, good, popular] {
                p.grant_install(u, app).unwrap();
            }
        }
        (p, users, bad, good, popular)
    }

    #[test]
    fn one_flagged_post_marks_app_malicious() {
        let (mut p, users, bad, good, _) = setup();
        let scam = Url::parse("http://scam.com/x").unwrap();
        p.post_as_app(bad, users[0], "free ipad", Some(scam.clone()))
            .unwrap();
        p.post_as_app(bad, users[0], "harmless chatter", None)
            .unwrap();
        p.post_as_app(good, users[0], "harvest time", None).unwrap();

        let mut mpk = MyPageKeeper::new();
        mpk.subscribe_all(users.iter().copied());
        let mut oracle = CalibratedOracle::perfect([scam.to_string()].into(), 1);
        mpk.sweep(&p, &mut oracle);

        let report = derive_app_labels(&mpk, &p, &HashSet::new());
        assert_eq!(report.labels[&bad], AppLabel::Malicious);
        assert_eq!(report.labels[&good], AppLabel::Benign);
        assert_eq!(report.malicious_apps(), vec![bad]);
        assert_eq!(report.benign_apps(), vec![good]);
        assert_eq!(report.malicious_post_ratio(bad), Some(0.5));
        assert_eq!(report.malicious_post_ratio(good), Some(0.0));
    }

    #[test]
    fn whitelist_rescues_piggybacked_popular_app() {
        let (mut p, users, _, _, popular) = setup();
        let scam = Url::parse("http://scam.com/pig").unwrap();
        // A hacker piggybacks a scam post onto the popular app's identity.
        p.post_via_prompt_feed(popular, users[0], "WOW free credits", Some(scam.clone()))
            .unwrap();
        p.post_as_app(popular, users[1], "my farm is thriving", None)
            .unwrap();

        let mut mpk = MyPageKeeper::new();
        mpk.subscribe_all(users.iter().copied());
        let mut oracle = CalibratedOracle::perfect([scam.to_string()].into(), 1);
        mpk.sweep(&p, &mut oracle);

        // without a whitelist the popular app is misclassified...
        let naive = derive_app_labels(&mpk, &p, &HashSet::new());
        assert_eq!(naive.labels[&popular], AppLabel::Malicious);

        // ...the whitelist fixes it.
        let report = derive_app_labels(&mpk, &p, &[popular].into());
        assert_eq!(report.labels[&popular], AppLabel::Whitelisted);
        assert!(report.malicious_apps().is_empty());
        // ratio still low: the piggybacking signature of Fig. 16
        assert_eq!(report.malicious_post_ratio(popular), Some(0.5));
    }

    #[test]
    fn unmonitored_apps_receive_no_label() {
        let (mut p, users, bad, _, _) = setup();
        // post exists, but nobody subscribes -> not monitored
        p.post_as_app(bad, users[0], "free", None).unwrap();
        let mpk = MyPageKeeper::new();
        let report = derive_app_labels(&mpk, &p, &HashSet::new());
        assert!(report.labels.is_empty());
        assert_eq!(report.malicious_post_ratio(bad), None);
    }
}
