//! # pagekeeper — the MyPageKeeper substrate
//!
//! MyPageKeeper (§2.2) is the security application whose nine months of
//! monitoring produced FRAppE's entire dataset and ground truth. Its
//! defining properties, all reproduced here:
//!
//! * it monitors the walls and news feeds of its **subscribed users** only
//!   (the paper's coverage caveat);
//! * it classifies at the granularity of **URLs, not apps**: features are
//!   aggregated across all posts containing a URL, and "once a URL is
//!   identified as malicious, MyPageKeeper marks all posts containing the
//!   URL as malicious";
//! * it is imperfect — 97% of flagged posts are truly malicious, 0.005% of
//!   benign posts are wrongly flagged — and FRAppE trains on those noisy
//!   labels.
//!
//! Modules:
//!
//! * [`features`] — per-URL aggregation of the classifier features the
//!   paper names: spam keywords, cross-post text similarity, like/comment
//!   counts.
//! * [`classifier`] — an SVM-based URL classifier built on those features
//!   (the "real" substrate), plus [`classifier::CalibratedOracle`], a
//!   truth-plus-noise judge with the paper's measured error profile for
//!   experiments that need exactly calibrated label noise.
//! * [`service`] — the monitoring service: subscription, periodic sweeps,
//!   post flagging.
//! * [`labels`] — the app-level ground-truth heuristic of §2.3 ("if any
//!   post made by an application was flagged ... we mark the application
//!   as malicious") with its whitelist escape hatch for piggybacked
//!   popular apps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classifier;
pub mod features;
pub mod labels;
pub mod service;

pub use classifier::{CalibratedOracle, PostJudge, UrlClassifier};
pub use features::{aggregate_by_url, UrlAggregate};
pub use labels::{derive_app_labels, AppLabel, LabelReport};
pub use service::MyPageKeeper;
