//! Per-URL feature aggregation.
//!
//! §2.2 names MyPageKeeper's features: *"a) the presence of spam keywords
//! such as 'FREE', 'Deal', and 'Hurry' ..., b) the similarity of text
//! messages (posts in a spam campaign tend to have similar text messages
//! across posts containing the same URL), and c) the number of 'Like's and
//! comments (malicious posts receive fewer 'Like's and comments)."*
//!
//! The unit of classification is the URL: every feature is computed by
//! "combining information obtained from all posts containing that URL".

use std::collections::HashMap;

use fb_platform::post::Post;
use text_analysis::keywords::SpamLexicon;
use text_analysis::shingles::shingle_set;

/// All monitored posts containing one URL, with the derived features.
#[derive(Debug, Clone)]
pub struct UrlAggregate {
    /// The URL (display form).
    pub url: String,
    /// Indices into the post slice this aggregate was built from.
    pub post_indices: Vec<usize>,
    /// Mean number of distinct spam keywords per post message.
    pub mean_spam_keywords: f64,
    /// Mean pairwise Jaccard similarity of post messages (1.0 when all
    /// messages are near-identical — the campaign signature). Defined as
    /// 1.0 for a single post (a campaign of one is maximally self-similar).
    pub mean_pairwise_similarity: f64,
    /// Mean 'Like's per post.
    pub mean_likes: f64,
    /// Mean comments per post.
    pub mean_comments: f64,
}

impl UrlAggregate {
    /// Number of posts carrying this URL.
    pub fn post_count(&self) -> usize {
        self.post_indices.len()
    }

    /// The feature vector consumed by [`crate::classifier::UrlClassifier`]:
    /// `[spam keywords, text similarity, likes, comments, log₂(1+posts)]`.
    pub fn feature_vector(&self) -> Vec<f64> {
        vec![
            self.mean_spam_keywords,
            self.mean_pairwise_similarity,
            self.mean_likes,
            self.mean_comments,
            (1.0 + self.post_count() as f64).log2(),
        ]
    }
}

/// Shingle size used for message similarity; spam lines are short, so
/// bigrams balance sensitivity and robustness.
const SHINGLE_K: usize = 2;

/// Cap on the number of pairwise similarity comparisons per URL; beyond
/// this the first `PAIR_CAP` posts are representative (campaign posts are
/// near-duplicates, so sampling is safe).
const PAIR_CAP: usize = 50;

/// Groups posts by the URL they carry and computes per-URL features.
/// Posts without links contribute nothing (MyPageKeeper's SVM classifies
/// URLs).
pub fn aggregate_by_url(posts: &[&Post]) -> Vec<UrlAggregate> {
    let lexicon = SpamLexicon::default();
    let mut groups: HashMap<String, Vec<usize>> = HashMap::new();
    for (i, post) in posts.iter().enumerate() {
        if let Some(link) = &post.link {
            groups.entry(link.to_string()).or_default().push(i);
        }
    }

    let mut aggregates: Vec<UrlAggregate> = groups
        .into_iter()
        .map(|(url, idxs)| {
            let msgs: Vec<&str> = idxs.iter().map(|&i| posts[i].message.as_str()).collect();

            let mean_spam =
                msgs.iter().map(|m| lexicon.hits(m) as f64).sum::<f64>() / msgs.len() as f64;

            let mean_sim = if msgs.len() < 2 {
                1.0
            } else {
                let capped = &msgs[..msgs.len().min(PAIR_CAP)];
                let sets: Vec<_> = capped.iter().map(|m| shingle_set(m, SHINGLE_K)).collect();
                let mut total = 0.0;
                let mut pairs = 0usize;
                for a in 0..sets.len() {
                    for b in a + 1..sets.len() {
                        total += sets[a].jaccard(&sets[b]);
                        pairs += 1;
                    }
                }
                total / pairs as f64
            };

            let mean_likes =
                idxs.iter().map(|&i| f64::from(posts[i].likes)).sum::<f64>() / idxs.len() as f64;
            let mean_comments = idxs
                .iter()
                .map(|&i| f64::from(posts[i].comments))
                .sum::<f64>()
                / idxs.len() as f64;

            UrlAggregate {
                url,
                post_indices: idxs,
                mean_spam_keywords: mean_spam,
                mean_pairwise_similarity: mean_sim,
                mean_likes,
                mean_comments,
            }
        })
        .collect();

    // Deterministic output order regardless of hash iteration.
    aggregates.sort_by(|a, b| a.url.cmp(&b.url));
    aggregates
}

#[cfg(test)]
mod tests {
    use super::*;
    use fb_platform::post::PostKind;
    use osn_types::ids::{AppId, PostId, UserId};
    use osn_types::time::SimTime;
    use osn_types::url::Url;

    fn post(id: u64, msg: &str, link: Option<&str>, likes: u32) -> Post {
        Post {
            id: PostId(id),
            wall_owner: UserId(0),
            author: UserId(0),
            app: Some(AppId(1)),
            profile_of: None,
            kind: PostKind::App,
            message: msg.into(),
            link: link.map(|l| Url::parse(l).unwrap()),
            created_at: SimTime::ZERO,
            likes,
            comments: 0,
        }
    }

    #[test]
    fn groups_by_url_and_skips_linkless() {
        let posts = [
            post(0, "free ipad", Some("http://scam.com/a"), 0),
            post(1, "free ipad now", Some("http://scam.com/a"), 0),
            post(2, "holiday photos", None, 10),
            post(3, "my blog", Some("http://blog.com/x"), 3),
        ];
        let refs: Vec<&Post> = posts.iter().collect();
        let aggs = aggregate_by_url(&refs);
        assert_eq!(aggs.len(), 2);
        let scam = aggs.iter().find(|a| a.url.contains("scam")).unwrap();
        assert_eq!(scam.post_count(), 2);
    }

    #[test]
    fn campaign_posts_have_high_similarity_and_spam_score() {
        let posts = [
            post(
                0,
                "WOW I just got 5000 Facebook Credits for Free",
                Some("http://s.com/x"),
                0,
            ),
            post(
                1,
                "WOW I just got 4000 Facebook Credits for Free",
                Some("http://s.com/x"),
                0,
            ),
            post(
                2,
                "WOW I just got 3000 Facebook Credits for Free",
                Some("http://s.com/x"),
                1,
            ),
        ];
        let refs: Vec<&Post> = posts.iter().collect();
        let aggs = aggregate_by_url(&refs);
        let a = &aggs[0];
        assert!(
            a.mean_pairwise_similarity > 0.5,
            "got {}",
            a.mean_pairwise_similarity
        );
        assert!(a.mean_spam_keywords >= 2.0, "got {}", a.mean_spam_keywords);
        assert!(a.mean_likes < 1.0);
    }

    #[test]
    fn benign_posts_have_diverse_messages() {
        let posts = [
            post(
                0,
                "check out my farm harvest today",
                Some("https://apps.facebook.com/farm/"),
                12,
            ),
            post(
                1,
                "new high score on level nine",
                Some("https://apps.facebook.com/farm/"),
                8,
            ),
            post(
                2,
                "does anyone trade seeds?",
                Some("https://apps.facebook.com/farm/"),
                20,
            ),
        ];
        let refs: Vec<&Post> = posts.iter().collect();
        let aggs = aggregate_by_url(&refs);
        let a = &aggs[0];
        assert!(
            a.mean_pairwise_similarity < 0.3,
            "got {}",
            a.mean_pairwise_similarity
        );
        assert_eq!(a.mean_spam_keywords, 0.0);
        assert!(a.mean_likes > 5.0);
    }

    #[test]
    fn single_post_url_is_self_similar() {
        let posts = [post(0, "unique message", Some("http://one.com/"), 0)];
        let refs: Vec<&Post> = posts.iter().collect();
        let aggs = aggregate_by_url(&refs);
        assert_eq!(aggs[0].mean_pairwise_similarity, 1.0);
    }

    #[test]
    fn feature_vector_has_fixed_dimension() {
        let posts = [post(0, "m", Some("http://a.com/"), 2)];
        let refs: Vec<&Post> = posts.iter().collect();
        let v = aggregate_by_url(&refs)[0].feature_vector();
        assert_eq!(v.len(), 5);
        assert!(v.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn output_order_is_deterministic() {
        let posts: Vec<Post> = (0..20)
            .map(|i| post(i, "m", Some(&format!("http://h{i}.com/")), 0))
            .collect();
        let refs: Vec<&Post> = posts.iter().collect();
        let a: Vec<String> = aggregate_by_url(&refs).into_iter().map(|x| x.url).collect();
        let b: Vec<String> = aggregate_by_url(&refs).into_iter().map(|x| x.url).collect();
        assert_eq!(a, b);
    }
}
