//! The MyPageKeeper monitoring service.
//!
//! "Once a Facebook user installs MyPageKeeper, it periodically crawls
//! posts from the user's wall and news feed" (§2.2). The service keeps a
//! cursor over the platform's post log, aggregates newly-seen posts by URL,
//! consults a [`PostJudge`], and accumulates the flagged-post set that the
//! rest of the pipeline (app labelling, FRAppE training) consumes.

use std::collections::{HashMap, HashSet};

use fb_platform::platform::Platform;
use fb_platform::post::Post;
use osn_types::ids::{AppId, PostId, UserId};

use crate::classifier::PostJudge;
use crate::features::aggregate_by_url;

/// Statistics from one monitoring sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SweepStats {
    /// Posts examined this sweep.
    pub posts_seen: usize,
    /// Distinct URLs judged this sweep.
    pub urls_judged: usize,
    /// Posts flagged malicious this sweep.
    pub posts_flagged: usize,
}

/// The monitoring service.
#[derive(Debug, Clone, Default)]
pub struct MyPageKeeper {
    subscribers: HashSet<UserId>,
    /// Posts flagged as malicious so far.
    flagged_posts: HashSet<PostId>,
    /// URLs flagged as malicious so far (display form).
    flagged_urls: HashSet<String>,
    /// All post ids ever examined (wall membership of subscribers).
    monitored_posts: HashSet<PostId>,
    /// Cursor into the platform's append-only post log.
    next_post_cursor: usize,
}

impl MyPageKeeper {
    /// A service with no subscribers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Subscribes a user (they installed MyPageKeeper).
    pub fn subscribe(&mut self, user: UserId) {
        self.subscribers.insert(user);
    }

    /// Subscribes many users.
    pub fn subscribe_all<I: IntoIterator<Item = UserId>>(&mut self, users: I) {
        self.subscribers.extend(users);
    }

    /// Number of subscribed users.
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.len()
    }

    /// Whether a post was examined by any sweep.
    pub fn monitored(&self, post: PostId) -> bool {
        self.monitored_posts.contains(&post)
    }

    /// Whether a post has been flagged malicious.
    pub fn is_flagged(&self, post: PostId) -> bool {
        self.flagged_posts.contains(&post)
    }

    /// All flagged post ids.
    pub fn flagged_posts(&self) -> &HashSet<PostId> {
        &self.flagged_posts
    }

    /// All flagged URLs (display form).
    pub fn flagged_urls(&self) -> &HashSet<String> {
        &self.flagged_urls
    }

    /// All monitored post ids.
    pub fn monitored_posts(&self) -> &HashSet<PostId> {
        &self.monitored_posts
    }

    /// Runs one monitoring sweep: examines every post since the previous
    /// sweep that is visible to a subscriber (on a subscriber's wall — news
    /// feeds re-expose friends' wall posts, so wall coverage of subscribers
    /// is the coverage unit the paper reports), judges the new URLs, and
    /// flags carrying posts.
    ///
    /// A URL that was ever flagged stays flagged, and *newly seen posts*
    /// carrying an already-flagged URL are flagged immediately without
    /// re-judging ("once a URL is identified as malicious, MyPageKeeper
    /// marks all posts containing the URL as malicious").
    pub fn sweep(&mut self, platform: &Platform, judge: &mut dyn PostJudge) -> SweepStats {
        let _span = frappe_obs::span("pagekeeper/sweep");
        let all_posts = platform.posts();
        let new_posts = &all_posts[self.next_post_cursor.min(all_posts.len())..];
        self.next_post_cursor = all_posts.len();

        let visible: Vec<&Post> = new_posts
            .iter()
            .filter(|p| p.profile_of.is_none() && self.subscribers.contains(&p.wall_owner))
            .collect();
        for p in &visible {
            self.monitored_posts.insert(p.id);
        }

        let aggregates = aggregate_by_url(&visible);
        let mut stats = SweepStats {
            posts_seen: visible.len(),
            ..SweepStats::default()
        };

        for agg in &aggregates {
            let malicious = if self.flagged_urls.contains(&agg.url) {
                true
            } else {
                stats.urls_judged += 1;
                judge.is_malicious_url(agg, &visible)
            };
            if malicious {
                self.flagged_urls.insert(agg.url.clone());
                for &i in &agg.post_indices {
                    if self.flagged_posts.insert(visible[i].id) {
                        stats.posts_flagged += 1;
                    }
                }
            }
        }
        let registry = frappe_obs::Registry::global();
        registry
            .counter("pagekeeper_posts_seen")
            .add(stats.posts_seen as u64);
        registry
            .counter("pagekeeper_urls_judged")
            .add(stats.urls_judged as u64);
        registry
            .counter("pagekeeper_posts_flagged")
            .add(stats.posts_flagged as u64);
        stats
    }

    /// Count of flagged posts per attributed app (posts without an app
    /// field are under the `None` key — 27% of malicious posts in the
    /// paper had no associated application).
    pub fn flagged_by_app(&self, platform: &Platform) -> HashMap<Option<AppId>, usize> {
        let mut counts: HashMap<Option<AppId>, usize> = HashMap::new();
        for &pid in &self.flagged_posts {
            if let Some(post) = platform.post(pid) {
                *counts.entry(post.app).or_default() += 1;
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::CalibratedOracle;
    use fb_platform::app::AppRegistration;
    use osn_types::permission::{Permission, PermissionSet};
    use osn_types::url::Url;

    fn world() -> (Platform, Vec<UserId>, AppId) {
        let mut p = Platform::new();
        let users = p.add_users(3);
        let app = p
            .register_app(AppRegistration::simple(
                "spammy",
                PermissionSet::from_iter([Permission::PublishStream]),
                Url::parse("http://scam.com/landing").unwrap(),
            ))
            .unwrap();
        (p, users, app)
    }

    #[test]
    fn sweep_only_sees_subscriber_walls() {
        let (mut p, users, app) = world();
        p.grant_install(users[0], app).unwrap();
        p.grant_install(users[1], app).unwrap();
        let bad = Url::parse("http://scam.com/win").unwrap();
        p.post_as_app(app, users[0], "free ipad", Some(bad.clone()))
            .unwrap();
        p.post_as_app(app, users[1], "free ipad", Some(bad.clone()))
            .unwrap();

        let mut mpk = MyPageKeeper::new();
        mpk.subscribe(users[0]); // users[1] not subscribed
        let truth: HashSet<String> = [bad.to_string()].into();
        let mut oracle = CalibratedOracle::perfect(truth, 1);
        let stats = mpk.sweep(&p, &mut oracle);
        assert_eq!(stats.posts_seen, 1);
        assert_eq!(stats.posts_flagged, 1);
        assert_eq!(mpk.flagged_posts().len(), 1);
    }

    #[test]
    fn cursor_avoids_rejudging_old_posts() {
        let (mut p, users, app) = world();
        p.grant_install(users[0], app).unwrap();
        let bad = Url::parse("http://scam.com/win").unwrap();
        p.post_as_app(app, users[0], "free", Some(bad.clone()))
            .unwrap();

        let mut mpk = MyPageKeeper::new();
        mpk.subscribe(users[0]);
        let mut oracle = CalibratedOracle::perfect([bad.to_string()].into(), 1);
        let s1 = mpk.sweep(&p, &mut oracle);
        assert_eq!(s1.posts_seen, 1);
        let s2 = mpk.sweep(&p, &mut oracle);
        assert_eq!(s2.posts_seen, 0);
        assert_eq!(s2.urls_judged, 0);
    }

    #[test]
    fn flagged_url_flags_future_posts_without_rejudging() {
        let (mut p, users, app) = world();
        p.grant_install(users[0], app).unwrap();
        let bad = Url::parse("http://scam.com/win").unwrap();
        p.post_as_app(app, users[0], "free", Some(bad.clone()))
            .unwrap();

        let mut mpk = MyPageKeeper::new();
        mpk.subscribe(users[0]);
        let mut oracle = CalibratedOracle::perfect([bad.to_string()].into(), 1);
        mpk.sweep(&p, &mut oracle);
        assert_eq!(oracle.judged_count(), 1);

        // same URL posted again later
        p.post_as_app(app, users[0], "free again", Some(bad))
            .unwrap();
        let s = mpk.sweep(&p, &mut oracle);
        assert_eq!(s.posts_flagged, 1);
        assert_eq!(
            s.urls_judged, 0,
            "already-flagged URL must not be re-judged"
        );
        assert_eq!(oracle.judged_count(), 1);
    }

    #[test]
    fn flagged_by_app_attributes_correctly() {
        let (mut p, users, app) = world();
        p.grant_install(users[0], app).unwrap();
        let bad = Url::parse("http://scam.com/win").unwrap();
        p.post_as_app(app, users[0], "free", Some(bad.clone()))
            .unwrap();
        // a manual post with the same bad link (no app attribution)
        p.post_manual(users[0], "look at this", Some(bad.clone()))
            .unwrap();

        let mut mpk = MyPageKeeper::new();
        mpk.subscribe(users[0]);
        let mut oracle = CalibratedOracle::perfect([bad.to_string()].into(), 1);
        mpk.sweep(&p, &mut oracle);

        let by_app = mpk.flagged_by_app(&p);
        assert_eq!(by_app.get(&Some(app)), Some(&1));
        assert_eq!(by_app.get(&None), Some(&1));
    }

    #[test]
    fn subscriber_count_and_monitoring() {
        let (mut p, users, app) = world();
        let mut mpk = MyPageKeeper::new();
        mpk.subscribe_all(users.iter().copied());
        mpk.subscribe(users[0]); // duplicate
        assert_eq!(mpk.subscriber_count(), 3);

        p.grant_install(users[2], app).unwrap();
        let pid = p.post_as_app(app, users[2], "hi", None).unwrap();
        let mut oracle = CalibratedOracle::perfect(HashSet::new(), 1);
        mpk.sweep(&p, &mut oracle);
        assert!(mpk.monitored(pid));
        assert!(!mpk.is_flagged(pid));
    }
}
