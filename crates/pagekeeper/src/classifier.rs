//! URL judges: the trained SVM classifier and the calibrated oracle.
//!
//! Two implementations of [`PostJudge`]:
//!
//! * [`UrlClassifier`] — the real substrate: an SVM (via the workspace's
//!   [`svm`] crate) over [`crate::features::UrlAggregate`] vectors, with a
//!   blacklist short-circuit, exactly the §2.2 architecture ("applies URL
//!   blacklists as well as custom classification techniques").
//! * [`CalibratedOracle`] — a truth-table judge with injected noise at the
//!   paper's measured error profile (97% of flags correct, 0.005% of benign
//!   posts flagged). Experiments that must control label noise precisely
//!   (FRAppE's training-label quality ablation) use this judge; everything
//!   still flows through the same URL-granularity pipeline.

use std::collections::{HashMap, HashSet};

use fb_platform::post::Post;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use svm::{train, Dataset, Scaler, SvmModel, SvmParams};
use url_services::blacklist::Blacklist;

use crate::features::UrlAggregate;

/// Anything that can judge whether a URL (with its carrying posts) is
/// malicious.
pub trait PostJudge {
    /// Judges one URL aggregate. `posts` is the slice the aggregate's
    /// indices refer to.
    fn is_malicious_url(&mut self, aggregate: &UrlAggregate, posts: &[&Post]) -> bool;
}

/// SVM-backed URL classifier with a blacklist front-end.
#[derive(Debug, Clone)]
pub struct UrlClassifier {
    blacklist: Blacklist,
    scaler: Scaler,
    model: SvmModel,
}

impl UrlClassifier {
    /// Trains the classifier from labelled URL aggregates.
    ///
    /// # Panics
    /// Panics if the training data is empty or single-class (see
    /// [`svm::train`]).
    pub fn train_from(
        aggregates: &[UrlAggregate],
        labels: &[bool],
        blacklist: Blacklist,
        params: &SvmParams,
    ) -> Self {
        assert_eq!(aggregates.len(), labels.len(), "one label per aggregate");
        let features: Vec<Vec<f64>> = aggregates
            .iter()
            .map(UrlAggregate::feature_vector)
            .collect();
        let ys: Vec<f64> = labels.iter().map(|&m| if m { 1.0 } else { -1.0 }).collect();
        let raw = Dataset::new(features, ys).expect("feature vectors are rectangular and finite");
        let scaler = Scaler::fit(&raw);
        let scaled = scaler.transform_dataset(&raw);
        let model = train(&scaled, params);
        UrlClassifier {
            blacklist,
            scaler,
            model,
        }
    }

    /// Number of support vectors in the underlying model (for diagnostics).
    pub fn support_vector_count(&self) -> usize {
        self.model.support_vector_count()
    }
}

impl PostJudge for UrlClassifier {
    fn is_malicious_url(&mut self, aggregate: &UrlAggregate, posts: &[&Post]) -> bool {
        // Blacklist short-circuit: any carrying post's link hit.
        if let Some(&first) = aggregate.post_indices.first() {
            if let Some(link) = &posts[first].link {
                if self.blacklist.contains(link) {
                    return true;
                }
            }
        }
        let x = self.scaler.transform(&aggregate.feature_vector());
        self.model.predict(&x) > 0.0
    }
}

/// Truth-plus-noise judge calibrated to MyPageKeeper's measured accuracy.
#[derive(Debug, Clone)]
pub struct CalibratedOracle {
    /// URLs (display form) that are truly malicious.
    truth: HashSet<String>,
    /// Probability a truly malicious URL is flagged (detection rate).
    detect_prob: f64,
    /// Per-URL overrides of the detection probability. Real MyPageKeeper's
    /// recall was far from uniform — campaigns using fresh domains and
    /// unremarkable text sailed under its radar (which is exactly why
    /// FRAppE later finds 8,051 malicious apps MyPageKeeper never flagged).
    detect_prob_overrides: HashMap<String, f64>,
    /// Probability a benign URL is flagged (the paper's 0.005% = 5e-5).
    false_flag_prob: f64,
    rng: SmallRng,
    /// Memoized verdicts so every sweep sees consistent decisions
    /// (a URL once flagged stays flagged, like a real blacklist entry).
    verdicts: HashMap<String, bool>,
}

impl CalibratedOracle {
    /// Default calibration from the paper: MyPageKeeper "detects malicious
    /// posts with high accuracy — 97% of posts flagged by it indeed point
    /// to malicious websites and it incorrectly flags only 0.005% of benign
    /// posts". We model the flag rates as 95% detection and 0.005%
    /// false-flagging, which yields ≈97% precision at the paper's
    /// benign:malicious post mix.
    pub fn paper_calibration(truth: HashSet<String>, seed: u64) -> Self {
        Self::new(truth, 0.95, 0.00005, seed)
    }

    /// Fully specified calibration.
    ///
    /// # Panics
    /// Panics if either probability is outside `[0, 1]`.
    pub fn new(truth: HashSet<String>, detect_prob: f64, false_flag_prob: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&detect_prob),
            "detect_prob out of range"
        );
        assert!(
            (0.0..=1.0).contains(&false_flag_prob),
            "false_flag_prob out of range"
        );
        CalibratedOracle {
            truth,
            detect_prob,
            detect_prob_overrides: HashMap::new(),
            false_flag_prob,
            rng: SmallRng::seed_from_u64(seed),
            verdicts: HashMap::new(),
        }
    }

    /// Overrides the detection probability for specific malicious URLs
    /// (URLs in the map are added to the truth set). Used to model
    /// campaigns that largely evade MyPageKeeper.
    ///
    /// # Panics
    /// Panics if any probability is outside `[0, 1]`.
    pub fn with_detect_overrides(mut self, overrides: HashMap<String, f64>) -> Self {
        for (url, p) in &overrides {
            assert!(
                (0.0..=1.0).contains(p),
                "override for {url} out of range: {p}"
            );
            self.truth.insert(url.clone());
        }
        self.detect_prob_overrides.extend(overrides);
        self
    }

    /// A perfect oracle (no noise) — baseline for ablations.
    pub fn perfect(truth: HashSet<String>, seed: u64) -> Self {
        Self::new(truth, 1.0, 0.0, seed)
    }

    /// Number of distinct URLs judged so far.
    pub fn judged_count(&self) -> usize {
        self.verdicts.len()
    }
}

impl PostJudge for CalibratedOracle {
    fn is_malicious_url(&mut self, aggregate: &UrlAggregate, _posts: &[&Post]) -> bool {
        if let Some(&v) = self.verdicts.get(&aggregate.url) {
            return v;
        }
        let truly_bad = self.truth.contains(&aggregate.url);
        let p = if truly_bad {
            self.detect_prob_overrides
                .get(&aggregate.url)
                .copied()
                .unwrap_or(self.detect_prob)
        } else {
            self.false_flag_prob
        };
        let flagged = self.rng.gen::<f64>() < p;
        self.verdicts.insert(aggregate.url.clone(), flagged);
        flagged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::aggregate_by_url;
    use fb_platform::post::PostKind;
    use osn_types::ids::{AppId, PostId, UserId};
    use osn_types::time::SimTime;
    use osn_types::url::Url;
    use svm::Kernel;

    fn post(id: u64, msg: &str, link: &str, likes: u32) -> Post {
        Post {
            id: PostId(id),
            wall_owner: UserId(0),
            author: UserId(0),
            app: Some(AppId(1)),
            profile_of: None,
            kind: PostKind::App,
            message: msg.into(),
            link: Some(Url::parse(link).unwrap()),
            created_at: SimTime::ZERO,
            likes,
            comments: likes / 2,
        }
    }

    /// Builds a small labelled corpus: spammy campaign URLs vs diverse
    /// benign URLs.
    fn corpus() -> (Vec<Post>, Vec<bool>, usize) {
        let mut posts = Vec::new();
        let mut id = 0;
        // 10 malicious URLs, 3 near-identical spam posts each, no likes
        for u in 0..10 {
            for v in 0..3 {
                posts.push(post(
                    id,
                    &format!("WOW free iPad number {v} hurry claim your prize"),
                    &format!("http://scam{u}.com/win"),
                    0,
                ));
                id += 1;
            }
        }
        // 10 benign URLs, 3 diverse posts each, healthy likes
        let chatter = [
            "had a great harvest on my farm today",
            "who wants to join my neighborhood",
            "just finished planting the winter crop",
        ];
        for u in 0..10 {
            for (v, msg) in chatter.iter().enumerate() {
                posts.push(post(
                    id,
                    &format!("{msg} ({u})"),
                    &format!("https://apps.facebook.com/game{u}/"),
                    10 + v as u32,
                ));
                id += 1;
            }
        }
        (posts, vec![], 10)
    }

    #[test]
    fn svm_classifier_separates_spam_from_chatter() {
        let (posts, _, _) = corpus();
        let refs: Vec<&Post> = posts.iter().collect();
        let aggs = aggregate_by_url(&refs);
        let labels: Vec<bool> = aggs.iter().map(|a| a.url.contains("scam")).collect();
        let mut clf = UrlClassifier::train_from(
            &aggs,
            &labels,
            Blacklist::new(),
            &SvmParams::with_kernel(Kernel::rbf(0.5)),
        );
        let mut correct = 0;
        for (a, &want) in aggs.iter().zip(&labels) {
            if clf.is_malicious_url(a, &refs) == want {
                correct += 1;
            }
        }
        assert_eq!(correct, aggs.len(), "training corpus should be separable");
        assert!(clf.support_vector_count() > 0);
    }

    #[test]
    fn blacklist_short_circuits_model() {
        let (posts, _, _) = corpus();
        let refs: Vec<&Post> = posts.iter().collect();
        let aggs = aggregate_by_url(&refs);
        let labels: Vec<bool> = aggs.iter().map(|a| a.url.contains("scam")).collect();
        let mut bl = Blacklist::new();
        // blacklist a *benign-looking* URL: it must be flagged anyway
        let benign = aggs.iter().find(|a| !a.url.contains("scam")).unwrap();
        bl.add_url(posts[benign.post_indices[0]].link.as_ref().unwrap());
        let mut clf = UrlClassifier::train_from(
            &aggs,
            &labels,
            bl,
            &SvmParams::with_kernel(Kernel::rbf(0.5)),
        );
        assert!(clf.is_malicious_url(benign, &refs));
    }

    #[test]
    fn perfect_oracle_matches_truth() {
        let (posts, _, _) = corpus();
        let refs: Vec<&Post> = posts.iter().collect();
        let aggs = aggregate_by_url(&refs);
        let truth: HashSet<String> = aggs
            .iter()
            .filter(|a| a.url.contains("scam"))
            .map(|a| a.url.clone())
            .collect();
        let mut oracle = CalibratedOracle::perfect(truth.clone(), 1);
        for a in &aggs {
            assert_eq!(oracle.is_malicious_url(a, &refs), truth.contains(&a.url));
        }
        assert_eq!(oracle.judged_count(), aggs.len());
    }

    #[test]
    fn noisy_oracle_is_consistent_across_queries() {
        let (posts, _, _) = corpus();
        let refs: Vec<&Post> = posts.iter().collect();
        let aggs = aggregate_by_url(&refs);
        let truth: HashSet<String> = aggs.iter().map(|a| a.url.clone()).collect();
        let mut oracle = CalibratedOracle::new(truth, 0.5, 0.0, 42);
        let first: Vec<bool> = aggs
            .iter()
            .map(|a| oracle.is_malicious_url(a, &refs))
            .collect();
        let second: Vec<bool> = aggs
            .iter()
            .map(|a| oracle.is_malicious_url(a, &refs))
            .collect();
        assert_eq!(first, second, "verdicts must be memoized");
    }

    #[test]
    fn oracle_noise_rates_are_roughly_calibrated() {
        // 2000 malicious URLs at detect_prob 0.9: expect ~1800 flagged.
        let truth: HashSet<String> = (0..2000).map(|i| format!("http://bad{i}.com/")).collect();
        let mut oracle = CalibratedOracle::new(truth.clone(), 0.9, 0.0, 7);
        let mut flagged = 0;
        for url in &truth {
            let agg = UrlAggregate {
                url: url.clone(),
                post_indices: vec![],
                mean_spam_keywords: 0.0,
                mean_pairwise_similarity: 0.0,
                mean_likes: 0.0,
                mean_comments: 0.0,
            };
            if oracle.is_malicious_url(&agg, &[]) {
                flagged += 1;
            }
        }
        assert!(
            (1700..1900).contains(&flagged),
            "expected ~1800 flags, got {flagged}"
        );
    }

    #[test]
    #[should_panic(expected = "detect_prob out of range")]
    fn invalid_probability_panics() {
        CalibratedOracle::new(HashSet::new(), 1.5, 0.0, 1);
    }

    #[test]
    fn detect_overrides_let_stealthy_urls_evade() {
        let agg = |url: &str| UrlAggregate {
            url: url.to_string(),
            post_indices: vec![],
            mean_spam_keywords: 0.0,
            mean_pairwise_similarity: 0.0,
            mean_likes: 0.0,
            mean_comments: 0.0,
        };
        let overrides: HashMap<String, f64> = (0..500)
            .map(|i| (format!("http://stealthy{i}.com/"), 0.0))
            .collect();
        let mut oracle = CalibratedOracle::new(HashSet::new(), 1.0, 0.0, 3)
            .with_detect_overrides(overrides.clone());
        // stealthy URLs (prob 0) never flagged despite being in truth
        for url in overrides.keys() {
            assert!(!oracle.is_malicious_url(&agg(url), &[]));
        }
        // an ordinary truth URL is impossible here (truth only has overrides),
        // so add one via a fresh oracle
        let mut oracle2 = CalibratedOracle::perfect(["http://loud.com/".to_string()].into(), 3);
        assert!(oracle2.is_malicious_url(&agg("http://loud.com/"), &[]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_override_panics() {
        let overrides: HashMap<String, f64> = [("http://x.com/".to_string(), 2.0)].into();
        let _ = CalibratedOracle::new(HashSet::new(), 1.0, 0.0, 1).with_detect_overrides(overrides);
    }
}
