//! Incremental HTTP/1.1: a request parser that accepts bytes as the
//! reactor delivers them, and a response writer that renders into a
//! connection's outbound buffer.
//!
//! Scope is exactly what the edge needs — `HTTP/1.1` only, identity
//! bodies sized by `Content-Length`, keep-alive by default, `Connection:
//! close` honoured. Chunked transfer encoding is refused with `501`
//! rather than half-implemented. Pipelined requests are *parsed*
//! correctly (each [`RequestParser::next_request`] consumes exactly one
//! request, leaving the rest buffered) but the connection state machine
//! guards how many are *served* per wake-up, so a pipelining flood
//! cannot starve other connections (see [`crate::server`]).
//!
//! Both limits in [`Limits`] are enforced incrementally: an over-long
//! header section or declared body fails as soon as it is knowable, not
//! after buffering it.

/// Byte budgets for one request.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Max bytes for the request line + headers (431 beyond).
    pub max_head_bytes: usize,
    /// Max declared `Content-Length` (413 beyond).
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head_bytes: 8 * 1024,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// Why a request could not be parsed. Each maps to one response status;
/// all of them close the connection (framing is unrecoverable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HttpError {
    /// Malformed request line, header, or length field.
    BadRequest(&'static str),
    /// Header section exceeded [`Limits::max_head_bytes`].
    HeadTooLarge,
    /// Declared body exceeds [`Limits::max_body_bytes`].
    BodyTooLarge,
    /// Anything other than `HTTP/1.1`.
    UnsupportedVersion,
    /// `Transfer-Encoding` (chunked bodies are out of scope).
    UnsupportedTransferEncoding,
}

impl HttpError {
    /// The `(status, reason)` this error answers with.
    pub fn status(&self) -> (u16, &'static str) {
        match self {
            HttpError::BadRequest(_) => (400, "Bad Request"),
            HttpError::HeadTooLarge => (431, "Request Header Fields Too Large"),
            HttpError::BodyTooLarge => (413, "Payload Too Large"),
            HttpError::UnsupportedVersion => (505, "HTTP Version Not Supported"),
            HttpError::UnsupportedTransferEncoding => (501, "Not Implemented"),
        }
    }

    /// Human-readable detail for the error body.
    pub fn detail(&self) -> &'static str {
        match self {
            HttpError::BadRequest(detail) => detail,
            HttpError::HeadTooLarge => "request headers exceed the configured limit",
            HttpError::BodyTooLarge => "request body exceeds the configured limit",
            HttpError::UnsupportedVersion => "only HTTP/1.1 is supported",
            HttpError::UnsupportedTransferEncoding => "transfer encodings are not supported",
        }
    }
}

/// Request method (anything else routes to 405 at dispatch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// GET
    Get,
    /// POST
    Post,
    /// Any other token (parsed fine, rejected by the router).
    Other,
}

/// One fully-parsed request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// The method.
    pub method: Method,
    /// Request-target path, query string stripped.
    pub path: String,
    /// Whether the connection stays open after the response
    /// (HTTP/1.1 default unless `Connection: close`).
    pub keep_alive: bool,
    /// The body (`Content-Length` bytes; empty when absent).
    pub body: Vec<u8>,
}

/// Incremental parser: feed bytes with [`push`](Self::push), take
/// complete requests with [`next_request`](Self::next_request).
pub struct RequestParser {
    buf: Vec<u8>,
    start: usize,
    limits: Limits,
}

impl RequestParser {
    /// An empty parser with the given limits.
    pub fn new(limits: Limits) -> Self {
        RequestParser {
            buf: Vec::new(),
            start: 0,
            limits,
        }
    }

    /// Appends bytes read off the socket.
    pub fn push(&mut self, bytes: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a parsed request.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    fn compact(&mut self) {
        if self.start > 0 && (self.start == self.buf.len() || self.start >= 8 * 1024) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }

    /// Parses and consumes the next complete request, if one is fully
    /// buffered. `Ok(None)` means "need more bytes". Errors are fatal to
    /// the connection — the buffer position is unspecified afterwards.
    pub fn next_request(&mut self) -> Result<Option<Request>, HttpError> {
        let data = &self.buf[self.start..];
        let Some(head_len) = find_head_end(data) else {
            if data.len() > self.limits.max_head_bytes {
                return Err(HttpError::HeadTooLarge);
            }
            return Ok(None);
        };
        if head_len > self.limits.max_head_bytes {
            return Err(HttpError::HeadTooLarge);
        }
        let head = std::str::from_utf8(&data[..head_len - 4])
            .map_err(|_| HttpError::BadRequest("header bytes are not UTF-8"))?;
        let mut lines = head.split("\r\n");
        let request_line = lines.next().unwrap_or("");
        let mut parts = request_line.split(' ');
        let method = match parts.next().unwrap_or("") {
            "GET" => Method::Get,
            "POST" => Method::Post,
            "" => return Err(HttpError::BadRequest("empty request line")),
            _ => Method::Other,
        };
        let target = parts
            .next()
            .ok_or(HttpError::BadRequest("request line lacks a target"))?;
        let version = parts
            .next()
            .ok_or(HttpError::BadRequest("request line lacks a version"))?;
        if parts.next().is_some() {
            return Err(HttpError::BadRequest("request line has trailing tokens"));
        }
        if version != "HTTP/1.1" {
            return Err(HttpError::UnsupportedVersion);
        }

        let mut content_length: usize = 0;
        let mut keep_alive = true;
        for line in lines {
            let Some((name, value)) = line.split_once(':') else {
                return Err(HttpError::BadRequest("header line lacks a colon"));
            };
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .parse()
                    .map_err(|_| HttpError::BadRequest("unparsable Content-Length"))?;
            } else if name.eq_ignore_ascii_case("transfer-encoding") {
                return Err(HttpError::UnsupportedTransferEncoding);
            } else if name.eq_ignore_ascii_case("connection") {
                keep_alive = !value.eq_ignore_ascii_case("close");
            }
        }
        if content_length > self.limits.max_body_bytes {
            return Err(HttpError::BodyTooLarge);
        }
        if data.len() < head_len + content_length {
            return Ok(None); // head complete, body still arriving
        }

        let path = target.split('?').next().unwrap_or(target).to_owned();
        let body = data[head_len..head_len + content_length].to_vec();
        self.start += head_len + content_length;
        self.compact();
        Ok(Some(Request {
            method,
            path,
            keep_alive,
            body,
        }))
    }
}

/// Index just past `\r\n\r\n`, if present.
fn find_head_end(data: &[u8]) -> Option<usize> {
    data.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|i| i + 4)
}

/// One response, rendered with [`write_into`](Self::write_into).
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// The body.
    pub body: Vec<u8>,
    /// Adds a `Retry-After: <secs>` header (the 429 path).
    pub retry_after_secs: Option<u64>,
    /// Answer with `Connection: close` and drop the connection after
    /// the flush.
    pub close: bool,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into(),
            retry_after_secs: None,
            close: false,
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
            retry_after_secs: None,
            close: false,
        }
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            501 => "Not Implemented",
            503 => "Service Unavailable",
            505 => "HTTP Version Not Supported",
            _ => "Response",
        }
    }

    /// Renders status line, headers, and body onto `out`.
    pub fn write_into(&self, out: &mut Vec<u8>) {
        use std::io::Write as _;
        let _ = write!(out, "HTTP/1.1 {} {}\r\n", self.status, self.reason());
        let _ = write!(out, "content-type: {}\r\n", self.content_type);
        let _ = write!(out, "content-length: {}\r\n", self.body.len());
        if let Some(secs) = self.retry_after_secs {
            let _ = write!(out, "retry-after: {secs}\r\n");
        }
        let keep = if self.close { "close" } else { "keep-alive" };
        let _ = write!(out, "connection: {keep}\r\n\r\n");
        out.extend_from_slice(&self.body);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parser() -> RequestParser {
        RequestParser::new(Limits::default())
    }

    #[test]
    fn parses_a_request_fed_one_byte_at_a_time() {
        let raw = b"POST /v1/events HTTP/1.1\r\ncontent-length: 4\r\n\r\nbody";
        let mut p = parser();
        for (i, byte) in raw.iter().enumerate() {
            p.push(std::slice::from_ref(byte));
            let parsed = p.next_request().unwrap();
            if i + 1 < raw.len() {
                assert!(parsed.is_none(), "complete only at the last byte");
            } else {
                let req = parsed.expect("complete");
                assert_eq!(req.method, Method::Post);
                assert_eq!(req.path, "/v1/events");
                assert!(req.keep_alive);
                assert_eq!(req.body, b"body");
            }
        }
        assert_eq!(p.buffered(), 0);
    }

    #[test]
    fn pipelined_requests_come_out_one_at_a_time_in_order() {
        let mut p = parser();
        p.push(
            b"GET /healthz HTTP/1.1\r\n\r\nGET /metrics?x=1 HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        let first = p.next_request().unwrap().unwrap();
        assert_eq!(first.path, "/healthz");
        assert!(first.keep_alive);
        let second = p.next_request().unwrap().unwrap();
        assert_eq!(second.path, "/metrics", "query string stripped");
        assert!(!second.keep_alive);
        assert!(p.next_request().unwrap().is_none());
        assert_eq!(p.buffered(), 0);
    }

    #[test]
    fn oversized_heads_and_bodies_fail_as_soon_as_knowable() {
        let limits = Limits {
            max_head_bytes: 64,
            max_body_bytes: 16,
        };
        let mut p = RequestParser::new(limits);
        p.push(&[b'a'; 65]); // no \r\n\r\n yet, already over budget
        assert_eq!(p.next_request(), Err(HttpError::HeadTooLarge));

        let mut p = RequestParser::new(limits);
        p.push(b"POST / HTTP/1.1\r\ncontent-length: 17\r\n\r\n");
        assert_eq!(
            p.next_request(),
            Err(HttpError::BodyTooLarge),
            "declared length is enough; no body bytes needed"
        );
    }

    #[test]
    fn wrong_version_and_chunked_are_refused() {
        let mut p = parser();
        p.push(b"GET / HTTP/1.0\r\n\r\n");
        assert_eq!(p.next_request(), Err(HttpError::UnsupportedVersion));

        let mut p = parser();
        p.push(b"POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n");
        assert_eq!(
            p.next_request(),
            Err(HttpError::UnsupportedTransferEncoding)
        );
        assert_eq!(HttpError::UnsupportedTransferEncoding.status().0, 501);
    }

    #[test]
    fn malformed_lines_are_bad_requests() {
        let mut p = parser();
        p.push(b"GET /\r\n\r\n"); // no version
        assert!(matches!(p.next_request(), Err(HttpError::BadRequest(_))));

        let mut p = parser();
        p.push(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n");
        assert!(matches!(p.next_request(), Err(HttpError::BadRequest(_))));

        let mut p = parser();
        p.push(b"POST / HTTP/1.1\r\ncontent-length: nope\r\n\r\n");
        assert!(matches!(p.next_request(), Err(HttpError::BadRequest(_))));
    }

    #[test]
    fn response_bytes_are_exactly_as_specified() {
        let mut r = Response::json(
            429,
            br#"{"error":"ShuttingDown","retry_after_ms":null}"#.to_vec(),
        );
        r.retry_after_secs = Some(1);
        r.close = true;
        let mut out = Vec::new();
        r.write_into(&mut out);
        let text = String::from_utf8(out).unwrap();
        assert_eq!(
            text,
            "HTTP/1.1 429 Too Many Requests\r\n\
             content-type: application/json\r\n\
             content-length: 46\r\n\
             retry-after: 1\r\n\
             connection: close\r\n\r\n\
             {\"error\":\"ShuttingDown\",\"retry_after_ms\":null}"
        );
    }

    #[test]
    fn unknown_method_tokens_parse_as_other() {
        let mut p = parser();
        p.push(b"DELETE /v1/events HTTP/1.1\r\n\r\n");
        let req = p.next_request().unwrap().unwrap();
        assert_eq!(req.method, Method::Other);
    }
}
