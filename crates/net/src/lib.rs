//! # frappe-net — the from-scratch network edge over FRAppE-as-a-service
//!
//! The paper's closing proposal is FRAppE "as a service to which one can
//! query any app ID" (§8). [`frappe_serve`] provides the in-process
//! service; this crate puts a socket in front of it — built from raw
//! parts, no async runtime, in keeping with the workspace's vendored-only
//! discipline:
//!
//! * [`sys`] — one of the workspace's two unsafe surfaces (the other is
//!   the AVX2 scoring engine in `svm::simd`): a thin FFI wrapper
//!   over `epoll` and `eventfd` (std already links libc, so the five
//!   calls are declared directly against the C ABI). Descriptors live in
//!   `OwnedFd`, errors become `io::Error`, and no unsafety escapes.
//! * [`reactor`] — edge-triggered readiness multiplexing with a
//!   cross-thread [`reactor::Waker`]; connections keep readiness *memos*
//!   so backpressure can defer work without losing kernel edges.
//! * [`http`] — an incremental HTTP/1.1 parser (request line, headers,
//!   `Content-Length` bodies, keep-alive, pipelining) with hard byte
//!   limits, plus the response writer.
//! * [`server`] — the single-threaded event loop: nonblocking accept
//!   with a bounded-connection gate, per-connection state machines that
//!   ride the scorer pool via [`frappe_serve::PendingVerdict`] (the loop
//!   never parks on a verdict), 429-triggered read pauses with
//!   hysteresis, and a drain protocol whose [`server::EdgeHandle`]
//!   implements [`frappe_lifecycle::SwapFence`] so model hot-swaps run
//!   with zero responses in flight.
//!
//! Wire contract: verdicts are [`frappe_serve::Verdict`] JSON; every
//! error is the [`frappe_serve::ErrorEnvelope`], whose exact bytes are
//! pinned by a `frappe-serve` unit test. `tests/edge.rs` (repo root)
//! drives real sockets end to end: byte-identical verdicts against
//! in-process classification, deterministic 429s off a saturated scorer
//! queue, and a mid-load hot-swap with zero dropped or stale responses.
//!
//! ```no_run
//! use std::sync::Arc;
//! use frappe_net::{NetConfig, Server};
//! # fn service() -> frappe_serve::FrappeService { unimplemented!() }
//!
//! let service = Arc::new(service());
//! let server = Server::bind(service, "127.0.0.1:0", NetConfig::default())?;
//! println!("edge at http://{}", server.local_addr());
//! // curl http://$ADDR/healthz ; curl http://$ADDR/v1/classify/app:7
//! # Ok::<(), std::io::Error>(())
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

#[allow(unsafe_code)]
pub mod sys;

mod conn;
pub mod http;
pub mod reactor;
pub mod server;

pub use server::{EdgeHandle, NetConfig, Server};
