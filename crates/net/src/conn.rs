//! Per-connection state: socket, parser, outbound buffer, edge-trigger
//! memos, and the request phase.
//!
//! A connection is a small state machine the event loop drives:
//!
//! ```text
//!            bytes in           complete request        verdict ready
//!   readable ────────► parser ──────────────────► Scoring ──────────►
//!      ▲                  │  (immediate routes)      │        response
//!      │                  └──────────────────────────┴──────► out buf
//!      └── paused while the scorer queue is saturated          │
//!                                                    writable ─┴─► socket
//! ```
//!
//! The `readable`/`writable` fields are the edge-trigger memos the
//! reactor module's docs demand: `EPOLLET` reports a readiness
//! *transition* once, so the loop records it here and keeps acting until
//! `WouldBlock` clears the memo. Pausing a read under backpressure is
//! then free — the memo stays set, and the loop simply returns to the
//! socket once the scorer queue drains.

use std::io::{self, Read as _, Write as _};
use std::net::TcpStream;
use std::time::Instant;

use frappe_obs::{SpanId, TraceHandle};
use frappe_serve::PendingVerdict;

use crate::http::{Limits, RequestParser};

/// Where the connection is in its request cycle.
pub(crate) enum Phase {
    /// No request in flight; the parser may produce the next one.
    Idle,
    /// A classify request is queued on the scorer pool; the loop polls
    /// the handle each tick. `keep_alive` is the parsed request's.
    Scoring {
        /// The pollable verdict handle.
        pending: PendingVerdict,
        /// Whether to keep the connection after answering.
        keep_alive: bool,
        /// When the request finished parsing (feeds the latency histogram).
        started: Instant,
        /// The request's trace (handle + root span); handed back to the
        /// loop with the verdict so the response write is traced too.
        trace: Option<(TraceHandle, SpanId)>,
    },
}

/// A response whose bytes are enqueued but not yet flushed, with the
/// trace waiting on that flush. `target` is the connection's cumulative
/// enqueued-byte watermark at which this response is fully on the wire —
/// the trace's `edge/write` span (and the trace itself) finishes when
/// `flushed_total` reaches it.
pub(crate) struct PendingWrite {
    pub(crate) handle: TraceHandle,
    pub(crate) root: SpanId,
    pub(crate) write_span: SpanId,
    pub(crate) outcome: String,
    pub(crate) target: u64,
}

/// One accepted connection.
pub(crate) struct Conn {
    pub(crate) stream: TcpStream,
    pub(crate) parser: RequestParser,
    /// Rendered responses not yet written to the socket.
    pub(crate) out: Vec<u8>,
    /// How much of `out` is already written.
    pub(crate) out_pos: usize,
    /// Edge-trigger memo: the socket may have unread bytes.
    pub(crate) readable: bool,
    /// Edge-trigger memo: the socket can accept writes.
    pub(crate) writable: bool,
    /// Reads deferred while the scorer queue is saturated.
    pub(crate) paused: bool,
    /// Close once `out` is flushed.
    pub(crate) closing: bool,
    pub(crate) phase: Phase,
    /// When the socket was accepted — the first traced request records
    /// the accept→parse gap as a retroactive `edge/accept` span.
    pub(crate) accepted_at: Instant,
    /// Whether the accept span has been recorded (once per connection).
    pub(crate) accept_traced: bool,
    /// Cumulative bytes ever enqueued into `out`.
    pub(crate) enqueued_total: u64,
    /// Cumulative bytes ever flushed to the socket.
    pub(crate) flushed_total: u64,
    /// Traces waiting for their response bytes to hit the wire, in
    /// enqueue order (watermarks are monotone).
    pub(crate) write_traces: Vec<PendingWrite>,
}

/// What a socket-facing step did.
pub(crate) enum IoStep {
    /// Made progress (possibly zero bytes) and the connection lives on.
    Progress(usize),
    /// Peer closed or the socket errored: drop the connection.
    Gone,
}

impl Conn {
    pub(crate) fn new(stream: TcpStream, limits: Limits) -> Conn {
        Conn {
            stream,
            parser: RequestParser::new(limits),
            out: Vec::new(),
            out_pos: 0,
            // A fresh socket is writable until proven otherwise, and
            // registering with EPOLLET reports no initial edge for it.
            readable: false,
            writable: true,
            paused: false,
            closing: false,
            phase: Phase::Idle,
            accepted_at: Instant::now(),
            accept_traced: false,
            enqueued_total: 0,
            flushed_total: 0,
            write_traces: Vec::new(),
        }
    }

    /// Finishes every trace whose response bytes are now fully flushed
    /// (the write span ends at the moment the last byte left the
    /// buffer). Call after each successful flush.
    pub(crate) fn complete_flushed_writes(&mut self) {
        while self
            .write_traces
            .first()
            .is_some_and(|w| w.target <= self.flushed_total)
        {
            let w = self.write_traces.remove(0);
            w.handle.end_span(w.write_span);
            w.handle.end_span(w.root);
            w.handle.finish(&w.outcome);
        }
    }

    /// Finishes every still-pending write trace as `aborted` — the peer
    /// vanished (or the loop is shutting down) before the response made
    /// it out.
    pub(crate) fn abort_write_traces(&mut self) {
        for w in self.write_traces.drain(..) {
            w.handle.end_span(w.write_span);
            w.handle.end_span(w.root);
            w.handle.finish("aborted");
        }
    }

    /// A response (or several) is waiting to be flushed.
    pub(crate) fn has_pending_output(&self) -> bool {
        self.out_pos < self.out.len()
    }

    /// A request is being scored right now.
    pub(crate) fn in_flight(&self) -> bool {
        matches!(self.phase, Phase::Scoring { .. })
    }

    /// Drained for the purposes of the edge's drain protocol: nothing in
    /// flight and nothing left to flush.
    pub(crate) fn is_quiesced(&self) -> bool {
        !self.in_flight() && !self.has_pending_output()
    }

    /// Reads until `WouldBlock` (re-arming the edge), pushing bytes into
    /// the parser. Returns the byte count, or [`IoStep::Gone`] on EOF or
    /// a hard error.
    pub(crate) fn fill(&mut self) -> IoStep {
        let mut total = 0usize;
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => return IoStep::Gone,
                Ok(n) => {
                    self.parser.push(&chunk[..n]);
                    total += n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.readable = false;
                    return IoStep::Progress(total);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return IoStep::Gone,
            }
        }
    }

    /// Writes buffered output until done or `WouldBlock` (re-arming the
    /// edge). Returns bytes written, or [`IoStep::Gone`] on a hard error.
    pub(crate) fn flush_out(&mut self) -> IoStep {
        let mut total = 0usize;
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => return IoStep::Gone,
                Ok(n) => {
                    self.out_pos += n;
                    total += n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.writable = false;
                    return IoStep::Progress(total);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return IoStep::Gone,
            }
        }
        // fully flushed — reclaim the buffer
        self.out.clear();
        self.out_pos = 0;
        IoStep::Progress(total)
    }
}
