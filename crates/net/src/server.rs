//! The server: one event-loop thread driving listener + connections over
//! the [`crate::reactor`], routing HTTP requests into any
//! [`ScoringBackend`] — a single [`frappe_serve::FrappeService`] or a
//! [`frappe_serve::ShardRouter`] over K shard groups (the edge code is
//! identical either way; only construction differs).
//!
//! ## Routes
//!
//! | route | verb | body | answer |
//! |---|---|---|---|
//! | `/v1/events` | POST | NDJSON [`ServeEvent`] lines | `202 {"ingested":n}` (parse is all-or-nothing) |
//! | `/v1/classify/{app_id}` | GET | — | `200` [`frappe_serve::Verdict`] JSON |
//! | `/metrics` | GET | — | `200` Prometheus text |
//! | `/healthz` | GET | — | `200 {"status":"ok"}` |
//!
//! Every error a classify can produce travels as the shared
//! [`ErrorEnvelope`]: `UnknownApp → 404`, `Overloaded → 429` with a
//! `Retry-After` header (whole seconds, rounded up from the envelope's
//! exact millisecond hint), `ShuttingDown → 503`.
//!
//! ## Backpressure, in three rings
//!
//! 1. **Accept gate** — beyond [`NetConfig::max_connections`] live
//!    connections, new ones get a best-effort `503` + `Retry-After` and
//!    are closed immediately.
//! 2. **Read pause** — a connection whose classify is rejected with
//!    [`ServeError::Overloaded`] got its `429` *and* stops being read:
//!    its buffered pipeline waits and TCP pushes back on the client.
//!    Reads resume once the scorer queue falls to half capacity
//!    (hysteresis, so the edge does not flap).
//! 3. **Pipelining guard** — at most
//!    [`NetConfig::max_requests_per_wake`] buffered requests are served
//!    per connection per wake-up, so one pipelining client cannot starve
//!    the rest of the loop.
//!
//! ## Drain protocol
//!
//! [`EdgeHandle::drain`] asks the loop to stop accepting and stop
//! *starting* requests, while in-flight scores finish and responses
//! flush; it blocks until the loop reports every connection quiesced
//! (phase idle, output flushed) and returns the drain latency.
//! Connections stay open throughout — after [`EdgeHandle::resume`],
//! buffered requests pick up where they left off. [`EdgeHandle`]
//! implements [`SwapFence`], so installing it on a
//! [`frappe_lifecycle::LifecycleManager`] wraps every model promotion
//! and rollback in exactly this drain/swap/resume cycle — the "zero
//! dropped responses across a hot swap" guarantee `tests/edge.rs`
//! exercises.

use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use frappe_lifecycle::SwapFence;
use frappe_obs::{
    Clock, Counter, Gauge, Histogram, LifecycleEvent, SloConfig, SloWindow, SpanId, TraceCollector,
    TraceFlag, TraceHandle, WallClock,
};
use frappe_serve::metrics::LATENCY_BOUNDS_MICROS;
use frappe_serve::{
    ErrorEnvelope, PendingVerdict, ScoringBackend, ServeError, ServeEvent, Verdict,
};
use osn_types::ids::AppId;

use crate::conn::{Conn, IoStep, PendingWrite, Phase};
use crate::http::{Limits, Method, Request, Response};
use crate::reactor::{Reactor, Readiness, Waker};

/// The listener's reactor token; connections use `slot index + 1`.
const LISTENER_TOKEN: u64 = 0;

/// Edge tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// Live-connection cap; beyond it accepts are answered `503` and
    /// closed (ring 1 of the backpressure story).
    pub max_connections: usize,
    /// Per-request header budget (`431` beyond).
    pub max_head_bytes: usize,
    /// Per-request body budget (`413` beyond).
    pub max_body_bytes: usize,
    /// Buffered requests served per connection per wake-up (ring 3).
    pub max_requests_per_wake: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            max_connections: 1024,
            max_head_bytes: 8 * 1024,
            max_body_bytes: 1024 * 1024,
            max_requests_per_wake: 4,
        }
    }
}

/// What the control plane has asked the loop to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Command {
    Running,
    Draining,
    Shutdown,
}

struct EdgeState {
    command: Command,
    /// Loop-reported: every connection quiesced (only meaningful while
    /// `command == Draining`).
    drained: bool,
}

struct Shared {
    state: Mutex<EdgeState>,
    cond: Condvar,
}

impl Default for Shared {
    fn default() -> Self {
        Shared {
            state: Mutex::new(EdgeState {
                command: Command::Running,
                drained: false,
            }),
            cond: Condvar::new(),
        }
    }
}

/// Connection-level metrics, registered on the service's own obs
/// registry so one `/metrics` scrape shows serving, lifecycle, *and*
/// edge state.
struct NetMetrics {
    accepted: Arc<Counter>,
    rejected: Arc<Counter>,
    active: Arc<Gauge>,
    bytes_read: Arc<Counter>,
    bytes_written: Arc<Counter>,
    read_stalls: Arc<Counter>,
    requests: Arc<Counter>,
    responses_429: Arc<Counter>,
    /// Submit-time 429s attributed to the shard group that shed them
    /// (a distinct family from `net_http_429`, which stays the
    /// deployment-wide total — same name plus labels would double-count
    /// in a merged scrape). One lane per group; single-service edges get
    /// exactly one.
    responses_429_by_group: Vec<Arc<Counter>>,
    request_latency: Arc<Histogram>,
    drains: Arc<Counter>,
    drain_micros: Arc<Histogram>,
}

impl NetMetrics {
    fn new(registry: &frappe_obs::Registry, group_count: usize) -> NetMetrics {
        NetMetrics {
            accepted: registry.counter("net_conns_accepted"),
            rejected: registry.counter("net_conns_rejected"),
            active: registry.gauge("net_conns_active"),
            bytes_read: registry.counter("net_bytes_read"),
            bytes_written: registry.counter("net_bytes_written"),
            read_stalls: registry.counter("net_read_stalls"),
            requests: registry.counter("net_http_requests"),
            responses_429: registry.counter("net_http_429"),
            responses_429_by_group: (0..group_count.max(1))
                .map(|g| {
                    registry.counter_with("net_http_429_by_group", &[("group", &g.to_string())])
                })
                .collect(),
            request_latency: registry
                .histogram("net_request_latency_micros", &LATENCY_BOUNDS_MICROS),
            drains: registry.counter("net_drains"),
            drain_micros: registry.histogram("net_drain_micros", &LATENCY_BOUNDS_MICROS),
        }
    }

    /// Books one shed request against its owning group's 429 lane.
    fn shed(&self, group: usize) {
        self.responses_429.inc();
        if let Some(lane) = self.responses_429_by_group.get(group) {
            lane.inc();
        }
    }
}

/// Control handle onto a running [`Server`]: drain, resume, and the
/// [`SwapFence`] implementation that fences lifecycle hot-swaps.
#[derive(Clone)]
pub struct EdgeHandle {
    shared: Arc<Shared>,
    waker: Waker,
    drains: Arc<Counter>,
    drain_micros: Arc<Histogram>,
    trace: Option<TraceCollector>,
}

impl EdgeHandle {
    /// Stops accepting and starting requests, waits until every
    /// connection is quiesced (in-flight verdicts answered, responses
    /// flushed), and returns how long that took. Idempotent while
    /// already draining. Connections stay open; pair with
    /// [`resume`](Self::resume).
    pub fn drain(&self) -> Duration {
        let start = Instant::now();
        if let Some(tc) = &self.trace {
            // every in-flight trace gets flagged + the event appended,
            // so exported traces show what they straddled
            tc.lifecycle_event(LifecycleEvent::DrainBegin, "edge drain");
        }
        let mut state = self.shared.state.lock().expect("edge state lock");
        if state.command == Command::Running {
            state.command = Command::Draining;
            state.drained = false;
        }
        self.waker.wake();
        while state.command == Command::Draining && !state.drained {
            // Timed wait so a dead loop thread cannot park us forever.
            let (guard, _) = self
                .shared
                .cond
                .wait_timeout(state, Duration::from_millis(50))
                .expect("edge state lock");
            state = guard;
        }
        drop(state);
        let took = start.elapsed();
        self.drains.inc();
        self.drain_micros
            .observe(u64::try_from(took.as_micros()).unwrap_or(u64::MAX));
        took
    }

    /// Reopens the edge after a [`drain`](Self::drain): accepting
    /// restarts and buffered requests resume.
    pub fn resume(&self) {
        if let Some(tc) = &self.trace {
            tc.lifecycle_event(LifecycleEvent::DrainEnd, "edge resume");
        }
        let mut state = self.shared.state.lock().expect("edge state lock");
        if state.command == Command::Draining {
            state.command = Command::Running;
            state.drained = false;
        }
        drop(state);
        self.waker.wake();
    }

    /// Whether the edge is currently draining (or drained).
    pub fn is_draining(&self) -> bool {
        self.shared.state.lock().expect("edge state lock").command == Command::Draining
    }
}

impl SwapFence for EdgeHandle {
    /// Drain → swap → resume. Installed on a
    /// [`frappe_lifecycle::LifecycleManager`], this runs every model
    /// promotion and rollback with zero responses mid-flight.
    fn fenced(&self, swap: &mut dyn FnMut()) {
        self.drain();
        swap();
        self.resume();
    }
}

/// The network edge: owns the listener and the event-loop thread.
/// Dropping the server shuts the loop down and joins it (open
/// connections are closed without ceremony — drain first for grace).
pub struct Server {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    waker: Waker,
    handle: EdgeHandle,
    thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port), registers the
    /// edge's `net_*` metrics on the backend's base obs registry, and
    /// spawns the event-loop thread. Accepts any [`ScoringBackend`] —
    /// `Arc<FrappeService>` and `Arc<ShardRouter>` both work unchanged.
    pub fn bind<A: ToSocketAddrs, B: ScoringBackend + 'static>(
        service: Arc<B>,
        addr: A,
        config: NetConfig,
    ) -> io::Result<Server> {
        Self::bind_dyn(service, addr, config)
    }

    /// [`bind`](Self::bind) for an already-erased backend handle —
    /// callers that pick the deployment shape at runtime hold an
    /// `Arc<dyn ScoringBackend>`, which the generic signature cannot
    /// accept (`B` must be sized).
    pub fn bind_dyn<A: ToSocketAddrs>(
        service: Arc<dyn ScoringBackend>,
        addr: A,
        config: NetConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let reactor = Reactor::new(256)?;
        reactor.register_read(listener.as_raw_fd(), LISTENER_TOKEN)?;
        let waker = reactor.waker();
        let shared = Arc::new(Shared::default());
        let metrics = NetMetrics::new(service.obs_registry(), service.group_count());
        // The collector attached to the service (if any) becomes the
        // edge's tracer: captured at bind, so attach it *before* binding.
        let trace = service.trace_collector();
        let handle = EdgeHandle {
            shared: Arc::clone(&shared),
            waker: waker.clone(),
            drains: Arc::clone(&metrics.drains),
            drain_micros: Arc::clone(&metrics.drain_micros),
            trace: trace.clone(),
        };

        // SLO windows share the collector's clock so traced tests can
        // drive both deterministically; untraced edges run on wall time.
        let slo_clock: Arc<dyn Clock> = trace
            .as_ref()
            .map(TraceCollector::clock)
            .unwrap_or_else(|| Arc::new(WallClock::new()));
        let slo_1m = SloWindow::new(
            SloConfig {
                window_secs: 60,
                ..SloConfig::default()
            },
            Arc::clone(&slo_clock),
        );
        let slo_5m = SloWindow::new(
            SloConfig {
                window_secs: 300,
                ..SloConfig::default()
            },
            slo_clock,
        );

        let queue_capacity = service.queue_capacity();
        let retry_after_ms = service.retry_after_ms();
        let event_loop = EventLoop {
            overload_response: accept_gate_response(retry_after_ms),
            limits: Limits {
                max_head_bytes: config.max_head_bytes,
                max_body_bytes: config.max_body_bytes,
            },
            service,
            listener,
            reactor,
            shared: Arc::clone(&shared),
            config,
            queue_capacity,
            conns: Vec::new(),
            free: Vec::new(),
            active: 0,
            accept_ready: true, // connections may predate registration
            paused_any: false,
            metrics,
            trace,
            slo_1m,
            slo_5m,
        };
        let thread = std::thread::Builder::new()
            .name("frappe-net".into())
            .spawn(move || event_loop.run())?;
        Ok(Server {
            local_addr,
            shared,
            waker,
            handle,
            thread: Some(thread),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A cloneable control handle (drain/resume/[`SwapFence`]).
    pub fn handle(&self) -> EdgeHandle {
        self.handle.clone()
    }

    /// Convenience for [`EdgeHandle::drain`].
    pub fn drain(&self) -> Duration {
        self.handle.drain()
    }

    /// Convenience for [`EdgeHandle::resume`].
    pub fn resume(&self) {
        self.handle.resume()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("edge state lock");
            state.command = Command::Shutdown;
        }
        self.shared.cond.notify_all();
        self.waker.wake();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// Pre-rendered `503` for connections beyond the accept gate, reusing
/// the standard envelope so even gate rejections parse uniformly.
fn accept_gate_response(retry_after_ms: u64) -> Vec<u8> {
    let envelope = ErrorEnvelope::new(ServeError::Overloaded { retry_after_ms });
    let mut response = Response::json(503, envelope_json(&envelope));
    response.retry_after_secs = Some(retry_secs(retry_after_ms));
    response.close = true;
    let mut bytes = Vec::new();
    response.write_into(&mut bytes);
    bytes
}

fn envelope_json(envelope: &ErrorEnvelope) -> Vec<u8> {
    serde_json::to_string(envelope)
        .expect("the envelope wire format is pinned by a frappe-serve test")
        .into_bytes()
}

/// `Retry-After` is whole seconds; round the millisecond hint up so the
/// header never promises an earlier retry than the envelope.
fn retry_secs(retry_after_ms: u64) -> u64 {
    retry_after_ms.div_ceil(1000).max(1)
}

/// Where a routed request goes next.
enum Routed {
    /// Answer immediately; `pause_reads` is the 429 backpressure signal.
    Done {
        response: Response,
        pause_reads: bool,
    },
    /// A classify rode the scorer queue; poll the handle from the loop.
    Score(PendingVerdict),
}

struct EventLoop {
    service: Arc<dyn ScoringBackend>,
    listener: TcpListener,
    reactor: Reactor,
    shared: Arc<Shared>,
    config: NetConfig,
    limits: Limits,
    queue_capacity: usize,
    /// Slab of connections; reactor token = index + 1.
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    active: usize,
    /// Edge-trigger memo for the listener.
    accept_ready: bool,
    /// Any connection read-paused (enables the resume check + busy tick).
    paused_any: bool,
    metrics: NetMetrics,
    overload_response: Vec<u8>,
    /// Request tracer (the service's collector, captured at bind).
    trace: Option<TraceCollector>,
    /// Rolling SLO windows fed by every completed response.
    slo_1m: SloWindow,
    slo_5m: SloWindow,
}

impl EventLoop {
    fn run(mut self) {
        let mut events: Vec<Readiness> = Vec::new();
        loop {
            let command = self.shared.state.lock().expect("edge state lock").command;
            if command == Command::Shutdown {
                break;
            }
            let running = command == Command::Running;

            self.maybe_resume_paused();
            if running {
                self.accept_new();
            }
            for idx in 0..self.conns.len() {
                self.pump(idx, running);
            }
            self.publish_drained(command);

            // In-flight verdicts and paused reads have no fd edge to wake
            // us — tick; otherwise sleep until the kernel or a waker says.
            let busy = self.paused_any || self.conns.iter().flatten().any(Conn::in_flight);
            let timeout = busy.then(|| Duration::from_millis(1));
            events.clear();
            if self.reactor.poll(timeout, &mut events).is_err() {
                continue;
            }
            for event in &events {
                if event.token == LISTENER_TOKEN {
                    self.accept_ready = true;
                    continue;
                }
                let idx = (event.token - 1) as usize;
                if let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) {
                    if event.readable || event.hangup {
                        // hangup delivers the final bytes + EOF via read
                        conn.readable = true;
                    }
                    if event.writable {
                        conn.writable = true;
                    }
                }
            }
        }
        for idx in 0..self.conns.len() {
            if let Some(mut conn) = self.conns[idx].take() {
                conn.abort_write_traces();
                self.reactor.deregister(conn.stream.as_raw_fd());
            }
        }
        self.active = 0;
        self.metrics.active.set(0);
    }

    /// Hysteresis: 429-paused connections resume once the scorer queue
    /// has fallen to half capacity, not the instant one slot frees — so
    /// the edge does not flap between pause and reject.
    fn maybe_resume_paused(&mut self) {
        if !self.paused_any {
            return;
        }
        if self.service.queue_depth() * 2 <= self.queue_capacity {
            for conn in self.conns.iter_mut().flatten() {
                conn.paused = false;
            }
            self.paused_any = false;
        }
    }

    fn accept_new(&mut self) {
        while self.accept_ready {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if self.active >= self.config.max_connections {
                        // ring 1: over the gate — canned 503, then close.
                        // A fresh socket's buffer swallows this small
                        // write, so best-effort is near-certain delivery.
                        self.metrics.rejected.inc();
                        if let Some(tc) = &self.trace {
                            // no connection ever exists, so the trace is
                            // born finished — and always tail-kept
                            let t = tc.begin("edge");
                            t.flag(TraceFlag::ShedAcceptGate);
                            t.event("accept_gate", format!("active={}", self.active));
                            t.finish("503");
                        }
                        let _ = stream.set_nonblocking(true);
                        let _ = io::Write::write(&mut &stream, &self.overload_response);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let idx = self.free.pop().unwrap_or_else(|| {
                        self.conns.push(None);
                        self.conns.len() - 1
                    });
                    let token = idx as u64 + 1;
                    if self.reactor.register(stream.as_raw_fd(), token).is_err() {
                        self.free.push(idx);
                        continue;
                    }
                    self.conns[idx] = Some(Conn::new(stream, self.limits));
                    self.active += 1;
                    self.metrics.accepted.inc();
                    self.metrics.active.set(self.active as i64);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.accept_ready = false;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                // transient per-connection failures (e.g. ECONNABORTED)
                Err(_) => {}
            }
        }
    }

    fn pump(&mut self, idx: usize, running: bool) {
        let Some(mut conn) = self.conns[idx].take() else {
            return;
        };
        let gone = self.pump_conn(&mut conn, running);
        let finished = conn.closing && conn.is_quiesced();
        if gone || finished {
            // a vanished peer leaves responses unflushed; their traces
            // still finish (as `aborted`) so nothing dangles
            conn.abort_write_traces();
            self.reactor.deregister(conn.stream.as_raw_fd());
            self.free.push(idx);
            self.active -= 1;
            self.metrics.active.set(self.active as i64);
        } else {
            self.conns[idx] = Some(conn);
        }
    }

    /// One connection's turn; `true` means the peer is gone.
    fn pump_conn(&mut self, conn: &mut Conn, running: bool) -> bool {
        if conn.writable && conn.has_pending_output() {
            match conn.flush_out() {
                IoStep::Progress(n) => self.flushed(conn, n),
                IoStep::Gone => return true,
            }
        }

        if let Phase::Scoring {
            pending,
            keep_alive,
            started,
            trace,
        } = &mut conn.phase
        {
            if let Some(outcome) = pending.poll() {
                let (keep_alive, started, trace) = (*keep_alive, *started, trace.take());
                let response = self.verdict_response(outcome);
                self.enqueue(conn, response, keep_alive, Some(started), trace);
            }
        }

        if running && !conn.closing && !conn.paused && matches!(conn.phase, Phase::Idle) {
            if conn.readable {
                match conn.fill() {
                    IoStep::Progress(n) => self.metrics.bytes_read.add(n as u64),
                    // EOF: serve what's buffered, flush, then retire
                    IoStep::Gone => conn.closing = true,
                }
            }
            self.serve_buffered(conn);
        }

        if conn.writable && conn.has_pending_output() {
            match conn.flush_out() {
                IoStep::Progress(n) => self.flushed(conn, n),
                IoStep::Gone => return true,
            }
        }
        false
    }

    /// Books `n` flushed bytes: byte counter, watermark, and any traces
    /// whose responses just made it fully onto the wire.
    fn flushed(&self, conn: &mut Conn, n: usize) {
        self.metrics.bytes_written.add(n as u64);
        conn.flushed_total += n as u64;
        conn.complete_flushed_writes();
    }

    /// Parses and serves buffered requests, bounded by the pipelining
    /// guard, stopping at an in-flight classify or a read pause.
    fn serve_buffered(&mut self, conn: &mut Conn) {
        for _ in 0..self.config.max_requests_per_wake {
            if conn.closing && conn.parser.buffered() == 0 {
                break;
            }
            if !matches!(conn.phase, Phase::Idle) || conn.paused {
                break;
            }
            match conn.parser.next_request() {
                Ok(None) => break,
                Ok(Some(request)) => {
                    let started = Instant::now();
                    self.metrics.requests.inc();
                    let trace = self.begin_request_trace(conn, &request);
                    match self.route(&request, trace.as_ref()) {
                        Routed::Done {
                            response,
                            pause_reads,
                        } => {
                            self.enqueue(conn, response, request.keep_alive, Some(started), trace);
                            if pause_reads {
                                // ring 2: this client just got a 429 —
                                // stop reading it until the queue recovers
                                conn.paused = true;
                                self.paused_any = true;
                                self.metrics.read_stalls.inc();
                            }
                        }
                        Routed::Score(pending) => {
                            conn.phase = Phase::Scoring {
                                pending,
                                keep_alive: request.keep_alive,
                                started,
                                trace,
                            };
                        }
                    }
                }
                Err(err) => {
                    // framing is broken — answer and close
                    self.metrics.requests.inc();
                    let (status, _) = err.status();
                    let body = format!(
                        "{{\"error\":{}}}",
                        serde_json::to_string(err.detail()).expect("strings serialize")
                    );
                    let response = Response::json(status, body.into_bytes());
                    self.enqueue(conn, response, false, None, None);
                    break;
                }
            }
        }
    }

    /// Mints the request's trace (when a collector is attached): a
    /// retroactive `edge/accept` span on the connection's first request,
    /// then the open `edge/request` root span everything downstream
    /// parents under.
    fn begin_request_trace(
        &self,
        conn: &mut Conn,
        request: &Request,
    ) -> Option<(TraceHandle, SpanId)> {
        let tc = self.trace.as_ref()?;
        let handle = tc.begin("edge");
        if !conn.accept_traced {
            conn.accept_traced = true;
            let now = handle.now_micros();
            let elapsed = u64::try_from(conn.accepted_at.elapsed().as_micros()).unwrap_or(u64::MAX);
            handle.span_at("edge/accept", None, now.saturating_sub(elapsed), now);
        }
        let root = handle.start_span("edge/request", None);
        let verb = match request.method {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Other => "?",
        };
        handle.event("http_request", format!("{verb} {}", request.path));
        Some((handle, root))
    }

    fn route(&self, request: &Request, trace: Option<&(TraceHandle, SpanId)>) -> Routed {
        let done = |response| Routed::Done {
            response,
            pause_reads: false,
        };
        match (request.method, request.path.as_str()) {
            (Method::Get, "/healthz") => done(Response::json(200, &br#"{"status":"ok"}"#[..])),
            (Method::Get, "/metrics") => {
                // Publish edge-side state into the backend's *base*
                // registry first; `exposition()` then snapshots it and —
                // for a sharded backend — merges every group's registry
                // in per-group lanes without double-counting shared
                // families. One scrape, whole deployment.
                let registry = self.service.obs_registry();
                if let Some(tc) = &self.trace {
                    tc.publish_metrics(registry);
                }
                self.slo_1m.publish(registry, "1m");
                self.slo_5m.publish(registry, "5m");
                let text = self.service.exposition().to_prometheus_text();
                done(Response::text(200, text.into_bytes()))
            }
            (Method::Get, "/v1/traces") => done(match &self.trace {
                Some(tc) => Response::text(200, tc.export_jsonl().into_bytes()),
                None => Response::json(404, &br#"{"error":"tracing disabled"}"#[..]),
            }),
            (Method::Get, "/v1/traces/chrome") => done(match &self.trace {
                Some(tc) => Response::json(200, tc.export_chrome_trace().into_bytes()),
                None => Response::json(404, &br#"{"error":"tracing disabled"}"#[..]),
            }),
            (Method::Post, "/v1/events") => done(self.ingest_events(&request.body)),
            (Method::Get, path) if path.starts_with("/v1/classify/") => {
                let raw = &path["/v1/classify/".len()..];
                let Ok(app) = raw.parse::<AppId>() else {
                    let body = format!(
                        "{{\"error\":{}}}",
                        serde_json::to_string(&format!("unparsable app id: {raw}"))
                            .expect("strings serialize")
                    );
                    return done(Response::json(400, body.into_bytes()));
                };
                let edge_trace = trace.map(|(handle, root)| (handle.clone(), Some(*root)));
                match self.service.classify_traced(app, edge_trace) {
                    Ok(pending) => Routed::Score(pending),
                    Err(err) => {
                        let pause_reads = matches!(err, ServeError::Overloaded { .. });
                        if pause_reads {
                            // the submit site is the one place both the
                            // app and the shed are known — attribute the
                            // 429 to the group that owns the app
                            self.metrics.shed(self.service.group_of(app));
                        }
                        Routed::Done {
                            response: error_response(err),
                            pause_reads,
                        }
                    }
                }
            }
            (_, "/healthz" | "/metrics" | "/v1/events" | "/v1/traces" | "/v1/traces/chrome") => {
                done(Response::json(
                    405,
                    &br#"{"error":"method not allowed"}"#[..],
                ))
            }
            (_, path) if path.starts_with("/v1/classify/") => done(Response::json(
                405,
                &br#"{"error":"method not allowed"}"#[..],
            )),
            _ => done(Response::json(404, &br#"{"error":"no such route"}"#[..])),
        }
    }

    /// `POST /v1/events`: NDJSON. Parsing is all-or-nothing — every line
    /// must parse before any event is forwarded, so a *malformed* batch
    /// moves no feature. Forwarding can still shed on a sharded backend
    /// (a full group mailbox answers 429 with `Retry-After`); events
    /// before the shed point are applied, and the envelope tells the
    /// client to retry the remainder.
    fn ingest_events(&self, body: &[u8]) -> Response {
        let Ok(text) = std::str::from_utf8(body) else {
            return Response::json(400, &br#"{"error":"body is not UTF-8"}"#[..]);
        };
        let mut events = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            match serde_json::from_str::<ServeEvent>(line) {
                Ok(event) => events.push(event),
                Err(err) => {
                    let msg = format!("line {}: {err}", lineno + 1);
                    let body = format!(
                        "{{\"error\":{}}}",
                        serde_json::to_string(&msg).expect("strings serialize")
                    );
                    return Response::json(400, body.into_bytes());
                }
            }
        }
        for event in &events {
            if let Err(err) = self.service.ingest_event(event) {
                if matches!(err, ServeError::Overloaded { .. }) {
                    self.metrics.shed(self.service.group_of(event.app()));
                }
                return error_response(err);
            }
        }
        Response::json(
            202,
            format!("{{\"ingested\":{}}}", events.len()).into_bytes(),
        )
    }

    fn verdict_response(&self, outcome: Result<Verdict, ServeError>) -> Response {
        match outcome {
            Ok(verdict) => Response::json(
                200,
                serde_json::to_string(&verdict)
                    .expect("verdicts serialize")
                    .into_bytes(),
            ),
            Err(err) => {
                if matches!(err, ServeError::Overloaded { .. }) {
                    self.metrics.responses_429.inc();
                }
                error_response(err)
            }
        }
    }

    fn enqueue(
        &self,
        conn: &mut Conn,
        mut response: Response,
        keep_alive: bool,
        started: Option<Instant>,
        trace: Option<(TraceHandle, SpanId)>,
    ) {
        if !keep_alive {
            response.close = true;
        }
        if response.close {
            conn.closing = true;
        }
        let status = response.status;
        let before = conn.out.len();
        response.write_into(&mut conn.out);
        conn.enqueued_total += (conn.out.len() - before) as u64;
        conn.phase = Phase::Idle;
        if let Some(started) = started {
            let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
            // latency bucket exemplars name a real traced request
            let exemplar = trace.as_ref().map_or(0, |(h, _)| h.id().as_u64());
            self.metrics
                .request_latency
                .observe_with_exemplar(micros, exemplar);
            // "bad" for SLO purposes: shed (429) or server-side failure
            let bad = status == 429 || status >= 500;
            self.slo_1m.record(micros, bad);
            self.slo_5m.record(micros, bad);
        }
        if let Some((handle, root)) = trace {
            if status == 429 {
                handle.flag(TraceFlag::Shed429);
            }
            // the response is buffered, not yet on the wire: the trace
            // finishes when the flush watermark passes `target`
            let write_span = handle.start_span("edge/write", Some(root));
            conn.write_traces.push(PendingWrite {
                handle,
                root,
                write_span,
                outcome: status.to_string(),
                target: conn.enqueued_total,
            });
        }
    }

    fn publish_drained(&self, command: Command) {
        if command != Command::Draining {
            return;
        }
        let drained = self.conns.iter().flatten().all(Conn::is_quiesced);
        let mut state = self.shared.state.lock().expect("edge state lock");
        if state.command == command && state.drained != drained {
            state.drained = drained;
            self.shared.cond.notify_all();
        }
    }
}

/// Maps a [`ServeError`] onto its status + envelope body. The 429
/// carries both the exact millisecond hint (envelope) and the
/// rounded-up `Retry-After` header; 503 closes the connection.
fn error_response(err: ServeError) -> Response {
    let status = match &err {
        ServeError::UnknownApp(_) => 404,
        ServeError::Overloaded { .. } => 429,
        ServeError::ShuttingDown => 503,
    };
    let retry_after_secs = match &err {
        ServeError::Overloaded { retry_after_ms } => Some(retry_secs(*retry_after_ms)),
        _ => None,
    };
    let close = matches!(err, ServeError::ShuttingDown);
    let mut response = Response::json(status, envelope_json(&ErrorEnvelope::new(err)));
    response.retry_after_secs = retry_after_secs;
    response.close = close;
    response
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_after_header_rounds_milliseconds_up_to_at_least_one_second() {
        assert_eq!(retry_secs(1), 1);
        assert_eq!(retry_secs(999), 1);
        assert_eq!(retry_secs(1000), 1);
        assert_eq!(retry_secs(1001), 2);
    }

    #[test]
    fn serve_errors_map_onto_status_envelope_and_header() {
        let r = error_response(ServeError::Overloaded { retry_after_ms: 7 });
        assert_eq!(r.status, 429);
        assert_eq!(r.retry_after_secs, Some(1));
        assert_eq!(
            r.body,
            br#"{"error":{"Overloaded":{"retry_after_ms":7}},"retry_after_ms":7}"#
        );
        assert!(!r.close);

        let r = error_response(ServeError::UnknownApp(AppId(404)));
        assert_eq!(r.status, 404);
        assert_eq!(r.retry_after_secs, None);

        let r = error_response(ServeError::ShuttingDown);
        assert_eq!(r.status, 503);
        assert!(r.close, "no point keeping a connection to a dying service");
    }
}
