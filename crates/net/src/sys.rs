//! Thin FFI over the two kernel primitives the reactor needs: `epoll`
//! and `eventfd`.
//!
//! This is the only module in the workspace that touches raw syscalls.
//! The repo's vendored-only policy means no `libc` crate, so the three
//! `epoll` calls, `eventfd`, and raw `read`/`write` (for the eventfd
//! counter) are declared directly against the C ABI that `std` already
//! links. Everything is wrapped immediately: file descriptors live in
//! [`OwnedFd`] (closed on drop), errors become [`io::Error`], and no
//! unsafety escapes this module.
//!
//! All socket I/O goes through `std::net` in nonblocking mode — only the
//! readiness machinery needs FFI.

use std::io;
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::os::raw::{c_int, c_uint, c_void};

/// Readable readiness.
pub const EPOLLIN: u32 = 0x001;
/// Writable readiness.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported, never requested).
pub const EPOLLERR: u32 = 0x008;
/// Hang-up (always reported, never requested).
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its write half.
pub const EPOLLRDHUP: u32 = 0x2000;
/// Edge-triggered delivery.
pub const EPOLLET: u32 = 1 << 31;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLL_CLOEXEC: c_int = 0o2000000;
const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

/// One readiness record, ABI-compatible with the kernel's
/// `struct epoll_event` (packed on x86-64, where the kernel declares it
/// with `__attribute__((packed))`).
#[repr(C)]
#[cfg_attr(any(target_arch = "x86_64", target_arch = "x86"), repr(packed))]
#[derive(Clone, Copy, Default)]
pub struct EpollEvent {
    /// Ready event mask (`EPOLL*` bits).
    pub events: u32,
    /// The caller's token, returned verbatim.
    pub data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An epoll instance (closed on drop).
pub struct Epoll {
    fd: OwnedFd,
}

impl Epoll {
    /// Creates a close-on-exec epoll instance.
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: plain syscall, no pointers involved.
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        // SAFETY: epoll_create1 returned a fresh, owned descriptor.
        Ok(Epoll {
            fd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    fn ctl(&self, op: c_int, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        let mut event = EpollEvent {
            events: interest,
            data: token,
        };
        let event_ptr = if op == EPOLL_CTL_DEL {
            std::ptr::null_mut()
        } else {
            &mut event
        };
        // SAFETY: `event_ptr` is either null (DEL, where the kernel
        // ignores it) or points at a live, properly laid-out EpollEvent.
        cvt(unsafe { epoll_ctl(self.fd.as_raw_fd(), op, fd, event_ptr) })?;
        Ok(())
    }

    /// Registers `fd` for `interest` under `token`.
    pub fn add(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest, token)
    }

    /// Changes an existing registration.
    pub fn modify(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest, token)
    }

    /// Removes a registration. (Closing the descriptor does this
    /// implicitly; an explicit delete keeps the bookkeeping honest.)
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Waits up to `timeout_ms` (-1 = forever) and fills `events` with
    /// ready records, returning how many are valid. Retries on `EINTR`.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            // SAFETY: the buffer is live and its length is passed as the
            // capacity; the kernel writes at most that many records.
            let n = unsafe {
                epoll_wait(
                    self.fd.as_raw_fd(),
                    events.as_mut_ptr(),
                    events.len() as c_int,
                    timeout_ms,
                )
            };
            match cvt(n) {
                Ok(n) => return Ok(n as usize),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

/// A nonblocking eventfd used to wake `epoll_wait` from other threads.
pub struct EventFd {
    fd: OwnedFd,
}

impl EventFd {
    /// Creates a nonblocking, close-on-exec eventfd.
    pub fn new() -> io::Result<EventFd> {
        // SAFETY: plain syscall, no pointers involved.
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        // SAFETY: eventfd returned a fresh, owned descriptor.
        Ok(EventFd {
            fd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    /// The raw descriptor, for epoll registration.
    pub fn raw_fd(&self) -> RawFd {
        self.fd.as_raw_fd()
    }

    /// Bumps the counter, making the fd readable. A full counter
    /// (`EAGAIN`) already guarantees a pending wake-up, so errors are
    /// deliberately ignored.
    pub fn notify(&self) {
        let one: u64 = 1;
        // SAFETY: writes exactly 8 bytes from a live u64, as the eventfd
        // contract requires.
        unsafe {
            let _ = write(
                self.fd.as_raw_fd(),
                (&raw const one).cast::<c_void>(),
                std::mem::size_of::<u64>(),
            );
        }
    }

    /// Resets the counter to zero so the next `notify` re-arms readiness.
    pub fn drain(&self) {
        let mut counter: u64 = 0;
        // SAFETY: reads exactly 8 bytes into a live u64; nonblocking, so
        // an empty counter returns EAGAIN rather than parking.
        unsafe {
            let _ = read(
                self.fd.as_raw_fd(),
                (&raw mut counter).cast::<c_void>(),
                std::mem::size_of::<u64>(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eventfd_wakes_epoll() {
        let epoll = Epoll::new().unwrap();
        let efd = EventFd::new().unwrap();
        epoll.add(efd.raw_fd(), EPOLLIN, 42).unwrap();

        let mut events = [EpollEvent::default(); 4];
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0, "nothing pending");

        efd.notify();
        let n = epoll.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let (mask, token) = (events[0].events, events[0].data);
        assert_eq!(token, 42);
        assert_ne!(mask & EPOLLIN, 0);

        efd.drain();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0, "drained");
    }

    #[test]
    fn delete_stops_events() {
        let epoll = Epoll::new().unwrap();
        let efd = EventFd::new().unwrap();
        epoll.add(efd.raw_fd(), EPOLLIN, 7).unwrap();
        epoll.delete(efd.raw_fd()).unwrap();
        efd.notify();
        let mut events = [EpollEvent::default(); 4];
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn modify_changes_token() {
        let epoll = Epoll::new().unwrap();
        let efd = EventFd::new().unwrap();
        epoll.add(efd.raw_fd(), EPOLLIN, 1).unwrap();
        epoll.modify(efd.raw_fd(), EPOLLIN, 2).unwrap();
        efd.notify();
        let mut events = [EpollEvent::default(); 4];
        assert_eq!(epoll.wait(&mut events, 1000).unwrap(), 1);
        assert_eq!({ events[0].data }, 2);
    }
}
