//! The reactor: edge-triggered readiness over [`crate::sys::Epoll`],
//! plus a cross-thread [`Waker`].
//!
//! The reactor deliberately does *not* own connection state — it maps
//! file descriptors to caller-chosen `u64` tokens and reports readiness
//! transitions. Because registrations are edge-triggered (`EPOLLET`),
//! a readiness bit is reported **once per transition**: the event loop
//! must remember it (the connection's `readable`/`writable` memo) and
//! keep reading or writing until `WouldBlock` re-arms the edge. That
//! memo discipline is what lets the loop *pause* a connection under
//! backpressure without losing the wake-up — the kernel already told us
//! the data is there; we simply defer acting on it.

use std::io;
use std::os::fd::RawFd;
use std::sync::Arc;
use std::time::Duration;

use crate::sys::{
    Epoll, EpollEvent, EventFd, EPOLLERR, EPOLLET, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP,
};

/// Token the reactor reserves for its own wake-up eventfd.
const WAKE_TOKEN: u64 = u64::MAX;

/// One readiness transition on a registered descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Readiness {
    /// The token the descriptor was registered under.
    pub token: u64,
    /// Readable (or a pending accept, for a listener).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Peer hang-up or error — the connection is done for.
    pub hangup: bool,
}

/// Wakes a [`Reactor`] blocked in [`Reactor::poll`] from another thread.
///
/// Cloneable and cheap; used by `Server::drain`/`resume`/shutdown to nudge
/// the event loop into observing a state change.
#[derive(Clone)]
pub struct Waker {
    wake: Arc<EventFd>,
}

impl Waker {
    /// Interrupts the next (or current) `poll`.
    pub fn wake(&self) {
        self.wake.notify();
    }
}

/// Edge-triggered readiness multiplexer.
pub struct Reactor {
    epoll: Epoll,
    wake: Arc<EventFd>,
    buf: Vec<EpollEvent>,
}

impl Reactor {
    /// Creates a reactor with `capacity` readiness slots per poll.
    pub fn new(capacity: usize) -> io::Result<Reactor> {
        let epoll = Epoll::new()?;
        let wake = Arc::new(EventFd::new()?);
        // The wake fd is level-ish by construction: `notify` bumps a
        // counter that stays readable until drained, so even with EPOLLET
        // a wake between polls is never lost.
        epoll.add(wake.raw_fd(), EPOLLIN | EPOLLET, WAKE_TOKEN)?;
        Ok(Reactor {
            epoll,
            wake,
            buf: vec![EpollEvent::default(); capacity.max(8)],
        })
    }

    /// A handle other threads can use to interrupt [`poll`](Self::poll).
    pub fn waker(&self) -> Waker {
        Waker {
            wake: Arc::clone(&self.wake),
        }
    }

    /// Registers `fd` for edge-triggered read+write readiness under
    /// `token`. `token` must not be [`u64::MAX`] (reserved).
    pub fn register(&self, fd: RawFd, token: u64) -> io::Result<()> {
        assert_ne!(token, WAKE_TOKEN, "u64::MAX is the reactor's wake token");
        self.epoll
            .add(fd, EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET, token)
    }

    /// Registers `fd` for edge-triggered read readiness only (listeners).
    pub fn register_read(&self, fd: RawFd, token: u64) -> io::Result<()> {
        assert_ne!(token, WAKE_TOKEN, "u64::MAX is the reactor's wake token");
        self.epoll.add(fd, EPOLLIN | EPOLLET, token)
    }

    /// Drops a registration; errors are ignored (closing the fd
    /// deregisters implicitly anyway).
    pub fn deregister(&self, fd: RawFd) {
        let _ = self.epoll.delete(fd);
    }

    /// Waits for readiness (or a wake, or `timeout`), appending
    /// transitions to `out`. Returns `true` when a [`Waker`] fired.
    pub fn poll(
        &mut self,
        timeout: Option<Duration>,
        out: &mut Vec<Readiness>,
    ) -> io::Result<bool> {
        let timeout_ms = match timeout {
            None => -1,
            // round up so a 100µs timeout still sleeps rather than spins
            Some(t) => i32::try_from(t.as_millis().max(1)).unwrap_or(i32::MAX),
        };
        let n = self.epoll.wait(&mut self.buf, timeout_ms)?;
        let mut woken = false;
        for event in &self.buf[..n] {
            let (mask, token) = (event.events, event.data);
            if token == WAKE_TOKEN {
                self.wake.drain();
                woken = true;
                continue;
            }
            out.push(Readiness {
                token,
                readable: mask & EPOLLIN != 0,
                writable: mask & EPOLLOUT != 0,
                hangup: mask & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
            });
        }
        Ok(woken)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn waker_interrupts_poll_across_threads() {
        let mut reactor = Reactor::new(8).unwrap();
        let waker = reactor.waker();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            waker.wake();
        });
        let mut out = Vec::new();
        let woken = reactor
            .poll(Some(Duration::from_secs(5)), &mut out)
            .unwrap();
        assert!(woken, "the waker must interrupt a long poll");
        assert!(out.is_empty());
        handle.join().unwrap();
    }

    #[test]
    fn edge_triggered_socket_readiness_reports_once_per_transition() {
        let mut reactor = Reactor::new(8).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        reactor.register(server_side.as_raw_fd(), 5).unwrap();

        client.write_all(b"ping").unwrap();
        let mut out = Vec::new();
        reactor
            .poll(Some(Duration::from_secs(2)), &mut out)
            .unwrap();
        let ready = out
            .iter()
            .find(|r| r.token == 5 && r.readable)
            .expect("bytes arrived, readable edge must fire");
        assert!(!ready.hangup);

        // consume to WouldBlock (re-arms the edge), then confirm silence
        let mut sink = [0u8; 64];
        let mut conn = &server_side;
        loop {
            match conn.read(&mut sink) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) => panic!("read failed: {e}"),
            }
        }
        out.clear();
        reactor
            .poll(Some(Duration::from_millis(30)), &mut out)
            .unwrap();
        assert!(
            out.iter().all(|r| r.token != 5 || !r.readable),
            "no new bytes, no new edge: {out:?}"
        );

        // peer close surfaces as a hangup edge
        drop(client);
        out.clear();
        reactor
            .poll(Some(Duration::from_secs(2)), &mut out)
            .unwrap();
        assert!(out.iter().any(|r| r.token == 5 && r.hangup));
    }
}
