//! Per-request distributed-style tracing with tail-based sampling.
//!
//! A [`TraceCollector`] mints [`TraceHandle`]s at the request edge; the
//! handle travels with the request (cloned across the scorer-pool
//! boundary) and accumulates causally-linked spans (`parent` pointers)
//! and point events. When the response is written the trace is
//! *finished* and a keep decision is made:
//!
//! * **Head sampling** — a deterministic hash of the trace id against a
//!   seed keeps 1 in [`TraceConfig::head_every`] traces regardless of
//!   what happened to them, giving an unbiased baseline sample.
//! * **Tail sampling** — any trace carrying a [`TraceFlag`] is *always*
//!   kept: 429 sheds, accept-gate sheds, stale-epoch cache retries,
//!   requests slower than [`TraceConfig::slow_us`], and requests that
//!   were in flight during a promote/rollback/drain. The interesting
//!   1% is never lost to sampling.
//!
//! Kept traces land in a bounded ring (oldest overwritten) and export
//! as JSONL or Chrome `trace_event` JSON (load the latter in
//! `chrome://tracing` / Perfetto). Lifecycle transitions flag every
//! in-flight trace and are appended to them as events, so a trace shows
//! *why* it straddled a swap; drift alarms capture recent kept trace
//! ids as exemplars so an alarm links to concrete requests.
//!
//! Determinism: with a [`ManualClock`](crate::ManualClock) and a fixed
//! seed, the kept-trace set is a pure function of the event stream —
//! independent of thread count or interleaving (each trace's keep
//! decision depends only on its own id and flags).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::clock::{Clock, WallClock};

/// Identifier of one trace, unique within its collector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

impl TraceId {
    /// The raw id.
    pub fn as_u64(&self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Identifier of one span within a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(pub u32);

/// Why a trace is interesting enough to always keep (tail sampling).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFlag {
    /// Rejected by the scorer-pool admission control (HTTP 429).
    Shed429,
    /// Rejected at the accept gate before a connection existed (503).
    ShedAcceptGate,
    /// In flight while a model promote committed.
    InFlightSwap,
    /// In flight while a rollback committed.
    InFlightRollback,
    /// In flight while the edge was draining.
    InFlightDrain,
    /// Verdict-cache entry existed but was minted under an older model
    /// epoch or store generation (a stale-epoch retry).
    StaleEpoch,
    /// Duration at or above [`TraceConfig::slow_us`] (the p99 SLO edge).
    Slow,
}

impl TraceFlag {
    const ALL: [TraceFlag; 7] = [
        TraceFlag::Shed429,
        TraceFlag::ShedAcceptGate,
        TraceFlag::InFlightSwap,
        TraceFlag::InFlightRollback,
        TraceFlag::InFlightDrain,
        TraceFlag::StaleEpoch,
        TraceFlag::Slow,
    ];

    fn bit(self) -> u32 {
        match self {
            TraceFlag::Shed429 => 1 << 0,
            TraceFlag::ShedAcceptGate => 1 << 1,
            TraceFlag::InFlightSwap => 1 << 2,
            TraceFlag::InFlightRollback => 1 << 3,
            TraceFlag::InFlightDrain => 1 << 4,
            TraceFlag::StaleEpoch => 1 << 5,
            TraceFlag::Slow => 1 << 6,
        }
    }

    /// Stable wire name for this flag.
    pub fn name(self) -> &'static str {
        match self {
            TraceFlag::Shed429 => "shed_429",
            TraceFlag::ShedAcceptGate => "shed_accept_gate",
            TraceFlag::InFlightSwap => "in_flight_swap",
            TraceFlag::InFlightRollback => "in_flight_rollback",
            TraceFlag::InFlightDrain => "in_flight_drain",
            TraceFlag::StaleEpoch => "stale_epoch",
            TraceFlag::Slow => "slow",
        }
    }
}

fn flag_names(bits: u32) -> Vec<String> {
    TraceFlag::ALL
        .iter()
        .filter(|f| bits & f.bit() != 0)
        .map(|f| f.name().to_owned())
        .collect()
}

/// Lifecycle transitions the collector broadcasts onto in-flight traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleEvent {
    /// A model promote committed.
    Promote,
    /// A rollback committed.
    Rollback,
    /// The edge began draining in-flight work.
    DrainBegin,
    /// The edge resumed normal intake.
    DrainEnd,
    /// A drift detector crossed its alarm threshold.
    DriftAlarm,
}

impl LifecycleEvent {
    /// Stable wire name for this event.
    pub fn name(self) -> &'static str {
        match self {
            LifecycleEvent::Promote => "lifecycle/promote",
            LifecycleEvent::Rollback => "lifecycle/rollback",
            LifecycleEvent::DrainBegin => "lifecycle/drain_begin",
            LifecycleEvent::DrainEnd => "lifecycle/drain_end",
            LifecycleEvent::DriftAlarm => "lifecycle/drift_alarm",
        }
    }

    fn flag(self) -> Option<TraceFlag> {
        match self {
            LifecycleEvent::Promote => Some(TraceFlag::InFlightSwap),
            LifecycleEvent::Rollback => Some(TraceFlag::InFlightRollback),
            LifecycleEvent::DrainBegin => Some(TraceFlag::InFlightDrain),
            LifecycleEvent::DrainEnd | LifecycleEvent::DriftAlarm => None,
        }
    }
}

/// Collector tuning knobs.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Completed-trace ring capacity (oldest kept traces are
    /// overwritten beyond this).
    pub capacity: usize,
    /// Head sampling rate: keep 1 in `head_every` traces by id hash.
    /// `0` disables head sampling (tail-only); `1` keeps everything.
    pub head_every: u64,
    /// Seed mixed into the head-sampling hash, so two collectors can
    /// keep disjoint baselines.
    pub seed: u64,
    /// Tail-keep any trace whose total duration reaches this many
    /// microseconds (set it to the latency SLO's p99 bound).
    pub slow_us: u64,
    /// Per-trace span + event budget; recording beyond it is dropped
    /// (the trace notes the truncation) so one pathological request
    /// cannot balloon memory.
    pub max_items: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            capacity: 256,
            head_every: 64,
            seed: 0x5eed_f00d,
            slow_us: 10_000,
            max_items: 64,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
/// One completed, closed span inside a [`CompletedTrace`].
pub struct CompletedSpan {
    /// Span id, unique within the trace.
    pub id: u32,
    /// Parent span id (`None` for roots) — the causal link.
    pub parent: Option<u32>,
    /// Span name, e.g. `edge/request` or `serve/score`.
    pub name: String,
    /// Start timestamp (collector-clock microseconds).
    pub start_us: u64,
    /// End timestamp (collector-clock microseconds).
    pub end_us: u64,
}

/// A point event attached to a trace.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct TraceEvent {
    /// Timestamp (collector-clock microseconds).
    pub ts_us: u64,
    /// Event name, e.g. `cache_miss`.
    pub name: String,
    /// Free-form detail (may be empty).
    pub detail: String,
}

/// A finished, kept trace as exported.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct CompletedTrace {
    /// Trace id.
    pub id: u64,
    /// Trace kind, e.g. `edge` or `classify`.
    pub kind: String,
    /// Start timestamp (collector-clock microseconds).
    pub started_us: u64,
    /// Total duration in microseconds.
    pub duration_us: u64,
    /// Terminal outcome, e.g. `200`, `429`, `overloaded`.
    pub outcome: String,
    /// Whether the unbiased head sample kept this trace (tail flags may
    /// *also* have kept it).
    pub head_sampled: bool,
    /// Tail-sampling flag names that were set (see [`TraceFlag`]).
    pub flags: Vec<String>,
    /// Spans, in creation order, with parent links.
    pub spans: Vec<CompletedSpan>,
    /// Point events, in recording order.
    pub events: Vec<TraceEvent>,
}

impl CompletedTrace {
    /// Whether the named flag was set on this trace.
    pub fn has_flag(&self, flag: TraceFlag) -> bool {
        self.flags.iter().any(|f| f == flag.name())
    }

    /// The span with the given name, if present.
    pub fn span(&self, name: &str) -> Option<&CompletedSpan> {
        self.spans.iter().find(|s| s.name == name)
    }
}

/// A drift (or other) alarm with exemplar trace ids attached.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct AlarmRecord {
    /// Timestamp (collector-clock microseconds).
    pub ts_us: u64,
    /// Alarm name, e.g. `psi_drift`.
    pub name: String,
    /// Free-form detail (e.g. the worst lane and its PSI).
    pub detail: String,
    /// Recently kept trace ids, newest first — concrete requests that
    /// crossed the detector around alarm time.
    pub exemplar_trace_ids: Vec<u64>,
}

/// Counters describing collector activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceStats {
    /// Traces minted.
    pub started: u64,
    /// Traces finished.
    pub finished: u64,
    /// Finished traces kept (head or tail).
    pub kept: u64,
    /// Kept traces that the head sample selected.
    pub head_kept: u64,
    /// Kept traces that only tail flags selected.
    pub tail_kept: u64,
}

#[derive(Debug)]
struct SpanRec {
    id: u32,
    parent: Option<u32>,
    name: &'static str,
    start_us: u64,
    end_us: Option<u64>,
}

#[derive(Debug, Default)]
struct ActiveBody {
    spans: Vec<SpanRec>,
    events: Vec<(u64, &'static str, String)>,
    next_span: u32,
    truncated: bool,
}

/// A trace being recorded. Shared between the edge and pool workers via
/// [`TraceHandle`] clones.
pub struct ActiveTrace {
    id: u64,
    kind: &'static str,
    started_us: u64,
    head_sampled: bool,
    flags: AtomicU32,
    finished: AtomicBool,
    body: Mutex<ActiveBody>,
}

struct Shared {
    clock: Arc<dyn Clock>,
    config: TraceConfig,
    next_id: AtomicU64,
    slots: Box<[Mutex<Option<CompletedTrace>>]>,
    cursor: AtomicU64,
    active: Mutex<Vec<Weak<ActiveTrace>>>,
    recent_kept: Mutex<VecDeque<u64>>,
    alarms: Mutex<Vec<AlarmRecord>>,
    started: AtomicU64,
    finished: AtomicU64,
    kept: AtomicU64,
    head_kept: AtomicU64,
    tail_kept: AtomicU64,
}

/// The tail-sampling trace collector. Cheap to clone (all clones share
/// state).
#[derive(Clone)]
pub struct TraceCollector {
    shared: Arc<Shared>,
}

impl TraceCollector {
    /// A collector on real time.
    pub fn new(config: TraceConfig) -> Self {
        Self::with_clock(config, Arc::new(WallClock::new()))
    }

    /// A collector on an injected clock (deterministic in tests).
    pub fn with_clock(config: TraceConfig, clock: Arc<dyn Clock>) -> Self {
        let capacity = config.capacity.max(1);
        let slots = (0..capacity).map(|_| Mutex::new(None)).collect();
        Self {
            shared: Arc::new(Shared {
                clock,
                config,
                next_id: AtomicU64::new(1),
                slots,
                cursor: AtomicU64::new(0),
                active: Mutex::new(Vec::new()),
                recent_kept: Mutex::new(VecDeque::new()),
                alarms: Mutex::new(Vec::new()),
                started: AtomicU64::new(0),
                finished: AtomicU64::new(0),
                kept: AtomicU64::new(0),
                head_kept: AtomicU64::new(0),
                tail_kept: AtomicU64::new(0),
            }),
        }
    }

    /// The clock this collector stamps with.
    pub fn clock(&self) -> Arc<dyn Clock> {
        Arc::clone(&self.shared.clock)
    }

    /// Current collector time in microseconds.
    pub fn now_micros(&self) -> u64 {
        self.shared.clock.now_micros()
    }

    /// Mint a new trace of the given kind and return its handle.
    pub fn begin(&self, kind: &'static str) -> TraceHandle {
        let s = &self.shared;
        let id = s.next_id.fetch_add(1, Ordering::Relaxed);
        s.started.fetch_add(1, Ordering::Relaxed);
        let head_sampled = match s.config.head_every {
            0 => false,
            n => splitmix64(id ^ s.config.seed).is_multiple_of(n),
        };
        let trace = Arc::new(ActiveTrace {
            id,
            kind,
            started_us: s.clock.now_micros(),
            head_sampled,
            flags: AtomicU32::new(0),
            finished: AtomicBool::new(false),
            body: Mutex::new(ActiveBody::default()),
        });
        {
            let mut active = s.active.lock();
            if active.len() >= 64 && active.len().is_multiple_of(64) {
                active.retain(|w| w.strong_count() > 0);
            }
            active.push(Arc::downgrade(&trace));
        }
        TraceHandle {
            trace,
            collector: Arc::clone(&self.shared),
        }
    }

    /// Broadcast a lifecycle transition: flags every in-flight trace
    /// (per [`LifecycleEvent`] semantics) and appends the event to each
    /// so the exported trace shows what it straddled.
    pub fn lifecycle_event(&self, event: LifecycleEvent, detail: &str) {
        let ts = self.shared.clock.now_micros();
        let flag = event.flag();
        let mut active = self.shared.active.lock();
        active.retain(|w| w.strong_count() > 0);
        for weak in active.iter() {
            let Some(trace) = weak.upgrade() else {
                continue;
            };
            if trace.finished.load(Ordering::Acquire) {
                continue;
            }
            if let Some(flag) = flag {
                trace.flags.fetch_or(flag.bit(), Ordering::Relaxed);
            }
            let mut body = trace.body.lock();
            if body.spans.len() + body.events.len() < self.shared.config.max_items {
                body.events.push((ts, event.name(), detail.to_owned()));
            }
        }
    }

    /// Record an alarm carrying up to `max_exemplars` recently kept
    /// trace ids (newest first) and return it.
    pub fn alarm(&self, name: &str, detail: &str, max_exemplars: usize) -> AlarmRecord {
        let exemplars: Vec<u64> = {
            let recent = self.shared.recent_kept.lock();
            recent.iter().rev().take(max_exemplars).copied().collect()
        };
        let record = AlarmRecord {
            ts_us: self.shared.clock.now_micros(),
            name: name.to_owned(),
            detail: detail.to_owned(),
            exemplar_trace_ids: exemplars,
        };
        self.shared.alarms.lock().push(record.clone());
        record
    }

    /// All alarms recorded so far, oldest first.
    pub fn alarms(&self) -> Vec<AlarmRecord> {
        self.shared.alarms.lock().clone()
    }

    /// Kept traces currently in the ring, oldest first.
    pub fn snapshot(&self) -> Vec<CompletedTrace> {
        let s = &self.shared;
        let cap = s.slots.len() as u64;
        let cursor = s.cursor.load(Ordering::Acquire);
        let mut out = Vec::new();
        for i in cursor..cursor + cap {
            let slot = s.slots[(i % cap) as usize].lock();
            if let Some(trace) = slot.as_ref() {
                out.push(trace.clone());
            }
        }
        out
    }

    /// Export kept traces as JSONL, one trace object per line, oldest
    /// first.
    pub fn export_jsonl(&self) -> String {
        let mut out = String::new();
        for trace in self.snapshot() {
            out.push_str(&serde_json::to_string(&trace).expect("trace serializes"));
            out.push('\n');
        }
        out
    }

    /// Export kept traces in Chrome `trace_event` format (a JSON array
    /// of `ph:"X"` complete spans and `ph:"i"` instant events; open in
    /// `chrome://tracing` or Perfetto). Each trace renders as one
    /// `tid` row.
    pub fn export_chrome_trace(&self) -> String {
        let mut events = Vec::new();
        for trace in self.snapshot() {
            for span in &trace.spans {
                events.push(serde_json::json!({
                    "name": span.name,
                    "cat": trace.kind,
                    "ph": "X",
                    "ts": span.start_us,
                    "dur": span.end_us.saturating_sub(span.start_us),
                    "pid": 1,
                    "tid": trace.id,
                    "args": {
                        "trace_id": format!("{:016x}", trace.id),
                        "parent": span.parent,
                        "outcome": trace.outcome,
                        "flags": trace.flags,
                    },
                }));
            }
            for event in &trace.events {
                events.push(serde_json::json!({
                    "name": event.name,
                    "ph": "i",
                    "s": "t",
                    "ts": event.ts_us,
                    "pid": 1,
                    "tid": trace.id,
                    "args": { "detail": event.detail },
                }));
            }
        }
        serde_json::to_string(&events).expect("chrome trace serializes")
    }

    /// Activity counters.
    pub fn stats(&self) -> TraceStats {
        let s = &self.shared;
        TraceStats {
            started: s.started.load(Ordering::Relaxed),
            finished: s.finished.load(Ordering::Relaxed),
            kept: s.kept.load(Ordering::Relaxed),
            head_kept: s.head_kept.load(Ordering::Relaxed),
            tail_kept: s.tail_kept.load(Ordering::Relaxed),
        }
    }

    /// Publish activity counters and ring occupancy onto a registry as
    /// `trace_*` gauges (call at scrape time).
    pub fn publish_metrics(&self, registry: &crate::Registry) {
        let stats = self.stats();
        registry.gauge("trace_started").set(stats.started as i64);
        registry.gauge("trace_finished").set(stats.finished as i64);
        registry.gauge("trace_kept").set(stats.kept as i64);
        registry
            .gauge("trace_head_kept")
            .set(stats.head_kept as i64);
        registry
            .gauge("trace_tail_kept")
            .set(stats.tail_kept as i64);
    }

    /// The most recently kept trace ids, newest first.
    pub fn recent_kept_ids(&self, n: usize) -> Vec<u64> {
        let recent = self.shared.recent_kept.lock();
        recent.iter().rev().take(n).copied().collect()
    }
}

/// A cloneable handle onto one in-flight trace.
#[derive(Clone)]
pub struct TraceHandle {
    trace: Arc<ActiveTrace>,
    collector: Arc<Shared>,
}

impl TraceHandle {
    /// This trace's id.
    pub fn id(&self) -> TraceId {
        TraceId(self.trace.id)
    }

    /// Collector-clock "now", for callers that need to stamp retro
    /// spans consistently with the trace's own timestamps.
    pub fn now_micros(&self) -> u64 {
        self.collector.clock.now_micros()
    }

    /// Open a span starting now. Returns its id for `end_span` and for
    /// parenting children.
    pub fn start_span(&self, name: &'static str, parent: Option<SpanId>) -> SpanId {
        let now = self.collector.clock.now_micros();
        self.push_span(name, parent, now, None)
    }

    /// Record an already-closed span with explicit timestamps (for
    /// phases measured before the recording point, e.g. queue wait).
    pub fn span_at(
        &self,
        name: &'static str,
        parent: Option<SpanId>,
        start_us: u64,
        end_us: u64,
    ) -> SpanId {
        self.push_span(name, parent, start_us, Some(end_us.max(start_us)))
    }

    fn push_span(
        &self,
        name: &'static str,
        parent: Option<SpanId>,
        start_us: u64,
        end_us: Option<u64>,
    ) -> SpanId {
        let mut body = self.trace.body.lock();
        let id = body.next_span;
        body.next_span += 1;
        if body.spans.len() + body.events.len() >= self.collector.config.max_items {
            body.truncated = true;
            return SpanId(id);
        }
        body.spans.push(SpanRec {
            id,
            parent: parent.map(|p| p.0),
            name,
            start_us,
            end_us,
        });
        SpanId(id)
    }

    /// Close an open span now. Unknown or already-closed ids are
    /// ignored.
    pub fn end_span(&self, span: SpanId) {
        let now = self.collector.clock.now_micros();
        let mut body = self.trace.body.lock();
        if let Some(rec) = body.spans.iter_mut().find(|s| s.id == span.0) {
            if rec.end_us.is_none() {
                rec.end_us = Some(now.max(rec.start_us));
            }
        }
    }

    /// Attach a point event (timestamped now).
    pub fn event(&self, name: &'static str, detail: impl Into<String>) {
        let now = self.collector.clock.now_micros();
        let mut body = self.trace.body.lock();
        if body.spans.len() + body.events.len() >= self.collector.config.max_items {
            body.truncated = true;
            return;
        }
        body.events.push((now, name, detail.into()));
    }

    /// Set a tail-sampling flag; the trace will always be kept.
    pub fn flag(&self, flag: TraceFlag) {
        self.trace.flags.fetch_or(flag.bit(), Ordering::Relaxed);
    }

    /// Whether the given flag is already set.
    pub fn has_flag(&self, flag: TraceFlag) -> bool {
        self.trace.flags.load(Ordering::Relaxed) & flag.bit() != 0
    }

    /// Finish the trace: close open spans, apply the latency tail rule,
    /// decide keep-or-drop, and (if kept) publish into the ring.
    /// Idempotent — only the first call wins. Returns whether the trace
    /// was kept.
    pub fn finish(&self, outcome: &str) -> bool {
        if self.trace.finished.swap(true, Ordering::AcqRel) {
            return false;
        }
        let s = &self.collector;
        let now = s.clock.now_micros();
        let duration = now.saturating_sub(self.trace.started_us);
        if s.config.slow_us > 0 && duration >= s.config.slow_us {
            self.trace
                .flags
                .fetch_or(TraceFlag::Slow.bit(), Ordering::Relaxed);
        }
        s.finished.fetch_add(1, Ordering::Relaxed);

        let flags = self.trace.flags.load(Ordering::Relaxed);
        let keep = self.trace.head_sampled || flags != 0;
        if !keep {
            return false;
        }
        s.kept.fetch_add(1, Ordering::Relaxed);
        if self.trace.head_sampled {
            s.head_kept.fetch_add(1, Ordering::Relaxed);
        } else {
            s.tail_kept.fetch_add(1, Ordering::Relaxed);
        }

        let mut body = self.trace.body.lock();
        let truncated = body.truncated;
        let spans: Vec<CompletedSpan> = body
            .spans
            .iter()
            .map(|rec| CompletedSpan {
                id: rec.id,
                parent: rec.parent,
                name: rec.name.to_owned(),
                start_us: rec.start_us,
                end_us: rec.end_us.unwrap_or(now),
            })
            .collect();
        let mut events: Vec<TraceEvent> = body
            .events
            .drain(..)
            .map(|(ts_us, name, detail)| TraceEvent {
                ts_us,
                name: name.to_owned(),
                detail,
            })
            .collect();
        body.spans.clear();
        drop(body);
        if truncated {
            events.push(TraceEvent {
                ts_us: now,
                name: "truncated".to_owned(),
                detail: "span/event budget exhausted".to_owned(),
            });
        }

        let completed = CompletedTrace {
            id: self.trace.id,
            kind: self.trace.kind.to_owned(),
            started_us: self.trace.started_us,
            duration_us: duration,
            outcome: outcome.to_owned(),
            head_sampled: self.trace.head_sampled,
            flags: flag_names(flags),
            spans,
            events,
        };

        {
            let mut recent = s.recent_kept.lock();
            if recent.len() >= 64 {
                recent.pop_front();
            }
            recent.push_back(self.trace.id);
        }
        let cap = s.slots.len() as u64;
        let idx = s.cursor.fetch_add(1, Ordering::AcqRel) % cap;
        *s.slots[idx as usize].lock() = Some(completed);
        true
    }

    /// Whether `finish` has already run.
    pub fn is_finished(&self) -> bool {
        self.trace.finished.load(Ordering::Acquire)
    }
}

/// SplitMix64 finalizer — the head-sampling hash. Deterministic and
/// well-mixed so `id % N` biases don't leak into the sample.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    fn collector(config: TraceConfig) -> (TraceCollector, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::at(1_000));
        (
            TraceCollector::with_clock(config, Arc::clone(&clock) as Arc<dyn Clock>),
            clock,
        )
    }

    fn tail_only() -> TraceConfig {
        TraceConfig {
            head_every: 0,
            ..TraceConfig::default()
        }
    }

    #[test]
    fn unflagged_traces_are_dropped_without_head_sampling() {
        let (tc, _) = collector(tail_only());
        let t = tc.begin("edge");
        assert!(!t.finish("200"));
        assert!(tc.snapshot().is_empty());
        let stats = tc.stats();
        assert_eq!((stats.started, stats.finished, stats.kept), (1, 1, 0));
    }

    #[test]
    fn flagged_traces_are_always_kept_with_causal_spans() {
        let (tc, clock) = collector(tail_only());
        let t = tc.begin("edge");
        let root = t.start_span("edge/request", None);
        clock.advance(10);
        let score = t.start_span("serve/score", Some(root));
        t.event("cache_miss", "gen=1");
        clock.advance(20);
        t.end_span(score);
        t.flag(TraceFlag::Shed429);
        clock.advance(5);
        assert!(t.finish("429"));

        let kept = tc.snapshot();
        assert_eq!(kept.len(), 1);
        let trace = &kept[0];
        assert!(trace.has_flag(TraceFlag::Shed429));
        assert!(!trace.head_sampled);
        assert_eq!(trace.duration_us, 35);
        let root = trace.span("edge/request").unwrap();
        let score = trace.span("serve/score").unwrap();
        assert_eq!(score.parent, Some(root.id), "causal link");
        assert!(score.start_us >= root.start_us);
        assert_eq!(score.end_us - score.start_us, 20);
        assert_eq!(
            root.end_us,
            trace.started_us + trace.duration_us,
            "open spans close at finish"
        );
        assert_eq!(trace.events[0].name, "cache_miss");
    }

    #[test]
    fn slow_traces_tail_sample_at_threshold() {
        let (tc, clock) = collector(TraceConfig {
            head_every: 0,
            slow_us: 100,
            ..TraceConfig::default()
        });
        let fast = tc.begin("edge");
        clock.advance(99);
        assert!(!fast.finish("200"));
        let slow = tc.begin("edge");
        clock.advance(100);
        assert!(slow.finish("200"));
        assert!(tc.snapshot()[0].has_flag(TraceFlag::Slow));
    }

    #[test]
    fn head_sampling_is_a_pure_function_of_id_and_seed() {
        let cfg = TraceConfig {
            head_every: 4,
            slow_us: 0,
            ..TraceConfig::default()
        };
        let run = || {
            let (tc, _) = collector(cfg.clone());
            let mut kept = Vec::new();
            for _ in 0..64 {
                let t = tc.begin("edge");
                if t.finish("200") {
                    kept.push(t.id().as_u64());
                }
            }
            kept
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed + same stream = same kept set");
        assert!(
            !a.is_empty() && a.len() < 64,
            "sampling, not all-or-nothing"
        );
    }

    #[test]
    fn finish_is_idempotent_and_first_call_wins() {
        let (tc, _) = collector(tail_only());
        let t = tc.begin("edge");
        let t2 = t.clone();
        t.flag(TraceFlag::StaleEpoch);
        assert!(t.finish("200"));
        assert!(!t2.finish("500"), "second finish is a no-op");
        assert_eq!(tc.snapshot().len(), 1);
        assert_eq!(tc.snapshot()[0].outcome, "200");
    }

    #[test]
    fn ring_overwrites_oldest() {
        let (tc, _) = collector(TraceConfig {
            capacity: 2,
            head_every: 1,
            slow_us: 0,
            ..TraceConfig::default()
        });
        for _ in 0..5 {
            tc.begin("edge").finish("200");
        }
        let kept = tc.snapshot();
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].id + 1, kept[1].id, "oldest first");
        assert_eq!(kept[1].id, 5);
    }

    #[test]
    fn lifecycle_events_flag_in_flight_traces_only() {
        let (tc, _) = collector(tail_only());
        let before = tc.begin("edge");
        before.finish("200");
        let in_flight = tc.begin("edge");
        tc.lifecycle_event(LifecycleEvent::Promote, "v2");
        let after = tc.begin("edge");
        assert!(in_flight.finish("200"));
        assert!(!after.finish("200"), "started after the event — unflagged");

        let kept = tc.snapshot();
        assert_eq!(kept.len(), 1);
        assert!(kept[0].has_flag(TraceFlag::InFlightSwap));
        assert_eq!(kept[0].events[0].name, "lifecycle/promote");
        assert_eq!(kept[0].events[0].detail, "v2");
    }

    #[test]
    fn alarms_capture_recent_kept_exemplars() {
        let (tc, _) = collector(tail_only());
        let ids: Vec<u64> = (0..3)
            .map(|_| {
                let t = tc.begin("edge");
                t.flag(TraceFlag::Shed429);
                t.finish("429");
                t.id().as_u64()
            })
            .collect();
        let alarm = tc.alarm("psi_drift", "lane=posts psi=0.31", 2);
        assert_eq!(alarm.exemplar_trace_ids, vec![ids[2], ids[1]]);
        assert_eq!(tc.alarms().len(), 1);
    }

    #[test]
    fn jsonl_roundtrips_and_chrome_export_parses() {
        let (tc, clock) = collector(tail_only());
        let t = tc.begin("edge");
        let root = t.start_span("edge/request", None);
        clock.advance(7);
        t.end_span(root);
        t.flag(TraceFlag::InFlightDrain);
        t.finish("200");

        let jsonl = tc.export_jsonl();
        let parsed: CompletedTrace =
            serde_json::from_str(jsonl.lines().next().unwrap()).expect("line parses");
        assert_eq!(parsed.id, 1);
        assert_eq!(parsed.spans[0].name, "edge/request");

        let chrome: Vec<serde_json::Value> =
            serde_json::from_str(&tc.export_chrome_trace()).expect("chrome json parses");
        let first = &chrome[0];
        assert_eq!(first.get_field("ph").and_then(|v| v.as_str()), Some("X"));
        assert_eq!(first.get_field("dur").and_then(|v| v.as_u64()), Some(7));
        assert_eq!(first.get_field("tid").and_then(|v| v.as_u64()), Some(1));
    }

    #[test]
    fn span_budget_truncates_and_marks() {
        let (tc, _) = collector(TraceConfig {
            head_every: 1,
            max_items: 2,
            slow_us: 0,
            ..TraceConfig::default()
        });
        let t = tc.begin("edge");
        for _ in 0..5 {
            t.start_span("edge/request", None);
        }
        t.finish("200");
        let kept = tc.snapshot();
        assert_eq!(kept[0].spans.len(), 2);
        assert_eq!(kept[0].events.last().unwrap().name, "truncated");
    }
}
