//! Injectable time source for exporters and the trace collector.
//!
//! Everything in this crate that needs a timestamp asks a [`Clock`]
//! instead of reading wall time directly. Production code hands in a
//! [`WallClock`]; tests (and, later, the virtual-clock soak harness of
//! ROADMAP item 5) hand in a [`ManualClock`] so exported bytes are
//! fully deterministic — same inputs, same output, byte for byte.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic microsecond clock.
///
/// Implementations must be monotonic (never go backwards) but the epoch
/// is theirs to choose; consumers only compare and subtract timestamps
/// taken from the *same* clock.
pub trait Clock: Send + Sync {
    /// Current time in microseconds since this clock's epoch.
    fn now_micros(&self) -> u64;
}

/// Real time, measured as microseconds since the clock was created.
///
/// Built on [`Instant`], so it is monotonic and immune to wall-clock
/// adjustments. Two `WallClock`s have different epochs — share one
/// handle rather than constructing per call site.
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A clock whose epoch is "now".
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now_micros(&self) -> u64 {
        self.origin.elapsed().as_micros().min(u64::MAX as u128) as u64
    }
}

/// A clock that only moves when told to — the deterministic test double.
#[derive(Debug, Default)]
pub struct ManualClock {
    micros: AtomicU64,
}

impl ManualClock {
    /// A manual clock starting at `micros`.
    pub fn at(micros: u64) -> Self {
        Self {
            micros: AtomicU64::new(micros),
        }
    }

    /// Jump to an absolute time. Saturates monotonically: moving
    /// backwards is ignored rather than honoured.
    pub fn set(&self, micros: u64) {
        self.micros.fetch_max(micros, Ordering::Relaxed);
    }

    /// Advance by `delta` microseconds.
    pub fn advance(&self, delta: u64) {
        self.micros.fetch_add(delta, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_micros(&self) -> u64 {
        self.micros.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic() {
        let c = WallClock::new();
        let a = c.now_micros();
        let b = c.now_micros();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_moves_only_forward_on_set() {
        let c = ManualClock::at(100);
        assert_eq!(c.now_micros(), 100);
        c.advance(50);
        assert_eq!(c.now_micros(), 150);
        c.set(120); // backwards — ignored
        assert_eq!(c.now_micros(), 150);
        c.set(500);
        assert_eq!(c.now_micros(), 500);
    }
}
