//! Scoped span timers aggregated into a per-stage profile table.
//!
//! A [`Span`] is an RAII guard: creating it pushes a segment onto a
//! thread-local path stack and starts a clock, dropping it records the
//! elapsed time against the full `outer/inner` path in a [`Profiler`].
//! Aggregation keeps only count/total/min/max per path, so memory stays
//! bounded no matter how hot the instrumented loop is.
//!
//! Two switches keep the overhead honest:
//!
//! * the `instrument` cargo feature (default on) — with it disabled every
//!   span compiles to an inert zero-sized guard;
//! * a runtime toggle, initialised from the [`ENV_TOGGLE`] environment
//!   variable and overridable with [`set_spans_enabled`] — while off, a
//!   span creation is a single relaxed atomic load.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

#[cfg(feature = "instrument")]
use std::cell::RefCell;
#[cfg(feature = "instrument")]
use std::time::Instant;

/// Environment variable consulted (once, lazily) for the runtime toggle.
/// Set it to `1`, `true`, or `on` to enable span recording.
pub const ENV_TOGGLE: &str = "FRAPPE_OBS";

const STATE_UNSET: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static SPAN_STATE: AtomicU8 = AtomicU8::new(STATE_UNSET);

/// Whether spans currently record. Compiled out (always `false`) without
/// the `instrument` feature.
pub fn spans_enabled() -> bool {
    if !cfg!(feature = "instrument") {
        return false;
    }
    match SPAN_STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => {
            let on = std::env::var(ENV_TOGGLE)
                .map(|v| matches!(v.to_ascii_lowercase().as_str(), "1" | "true" | "on"))
                .unwrap_or(false);
            SPAN_STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
            on
        }
    }
}

/// Override the runtime toggle (wins over the environment variable).
pub fn set_spans_enabled(on: bool) {
    SPAN_STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

#[cfg(feature = "instrument")]
thread_local! {
    /// Segments of the currently open spans on this thread, outermost first.
    static SPAN_PATH: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Aggregated timings for one span path.
#[derive(Debug, Clone, Copy)]
struct StageStats {
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

impl StageStats {
    fn record(&mut self, elapsed_ns: u64) {
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(elapsed_ns);
        self.min_ns = self.min_ns.min(elapsed_ns);
        self.max_ns = self.max_ns.max(elapsed_ns);
    }
}

/// Thread-safe sink for span timings.
#[derive(Default)]
pub struct Profiler {
    stages: Mutex<BTreeMap<String, StageStats>>,
}

impl Profiler {
    /// An empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide profiler that [`span`] records into.
    pub fn global() -> &'static Profiler {
        static GLOBAL: OnceLock<Profiler> = OnceLock::new();
        GLOBAL.get_or_init(Profiler::new)
    }

    /// Open a span against this profiler. Records on drop if spans are
    /// enabled; otherwise the guard is inert.
    pub fn span<'p>(&'p self, name: &'static str) -> Span<'p> {
        #[cfg(feature = "instrument")]
        {
            if spans_enabled() {
                let path = SPAN_PATH.with(|stack| {
                    let mut stack = stack.borrow_mut();
                    stack.push(name);
                    stack.join("/")
                });
                return Span {
                    active: Some(ActiveSpan {
                        profiler: self,
                        path,
                        start: Instant::now(),
                    }),
                };
            }
            Span { active: None }
        }
        #[cfg(not(feature = "instrument"))]
        {
            let _ = name;
            Span {
                _profiler: std::marker::PhantomData,
            }
        }
    }

    /// Record one timing directly (what a [`Span`] does on drop).
    pub fn record(&self, path: &str, elapsed_ns: u64) {
        let mut stages = self.stages.lock();
        match stages.get_mut(path) {
            Some(stats) => stats.record(elapsed_ns),
            None => {
                stages.insert(
                    path.to_owned(),
                    StageStats {
                        count: 1,
                        total_ns: elapsed_ns,
                        min_ns: elapsed_ns,
                        max_ns: elapsed_ns,
                    },
                );
            }
        }
    }

    /// Discard all aggregated timings.
    pub fn reset(&self) {
        self.stages.lock().clear();
    }

    /// Copy the per-stage table, sorted by path.
    pub fn snapshot(&self) -> ProfileSnapshot {
        let stages = self.stages.lock();
        ProfileSnapshot {
            stages: stages
                .iter()
                .map(|(path, s)| StageRow {
                    path: path.clone(),
                    count: s.count,
                    total_ns: s.total_ns,
                    mean_ns: s.total_ns.checked_div(s.count).unwrap_or(0),
                    min_ns: s.min_ns,
                    max_ns: s.max_ns,
                })
                .collect(),
        }
    }
}

/// Open a span against the global profiler.
///
/// Bind the result to a named variable (`let _span = obs::span(..)`), not
/// `_`, which would drop it immediately and record a zero-length stage.
#[must_use = "a span records on drop; binding to _ drops it immediately"]
pub fn span(name: &'static str) -> Span<'static> {
    Profiler::global().span(name)
}

#[cfg(feature = "instrument")]
struct ActiveSpan<'p> {
    profiler: &'p Profiler,
    path: String,
    start: Instant,
}

/// RAII timing guard returned by [`span`] / [`Profiler::span`].
#[must_use = "a span records on drop; binding to _ drops it immediately"]
pub struct Span<'p> {
    #[cfg(feature = "instrument")]
    active: Option<ActiveSpan<'p>>,
    #[cfg(not(feature = "instrument"))]
    _profiler: std::marker::PhantomData<&'p Profiler>,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        #[cfg(feature = "instrument")]
        if let Some(active) = self.active.take() {
            let elapsed_ns = active.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            active.profiler.record(&active.path, elapsed_ns);
            SPAN_PATH.with(|stack| {
                stack.borrow_mut().pop();
            });
        }
    }
}

/// One row of the per-stage profile table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageRow {
    /// Slash-joined span path, e.g. `scenario/day/sweep`.
    pub path: String,
    /// Number of completed spans on this path.
    pub count: u64,
    /// Total wall time across all spans, in nanoseconds.
    pub total_ns: u64,
    /// `total_ns / count`.
    pub mean_ns: u64,
    /// Fastest single span.
    pub min_ns: u64,
    /// Slowest single span.
    pub max_ns: u64,
}

/// The aggregated profile table, sorted by span path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileSnapshot {
    /// One row per distinct span path.
    pub stages: Vec<StageRow>,
}

impl ProfileSnapshot {
    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Render as an aligned text table (path, count, total, mean,
    /// min, max).
    pub fn render(&self) -> String {
        if self.stages.is_empty() {
            return "(no spans recorded — set FRAPPE_OBS=1 or pass --profile)\n".to_owned();
        }
        let header = ["stage", "count", "total", "mean", "min", "max"];
        let rows: Vec<[String; 6]> = self
            .stages
            .iter()
            .map(|s| {
                [
                    s.path.clone(),
                    s.count.to_string(),
                    fmt_ns(s.total_ns),
                    fmt_ns(s.mean_ns),
                    fmt_ns(s.min_ns),
                    fmt_ns(s.max_ns),
                ]
            })
            .collect();
        let mut widths = [0usize; 6];
        for (i, h) in header.iter().enumerate() {
            widths[i] = h.len();
        }
        for row in &rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: [&str; 6], widths: &[usize; 6]| {
            // first column left-aligned, numbers right-aligned
            out.push_str(&format!("{:<w$}", cells[0], w = widths[0]));
            for i in 1..6 {
                out.push_str(&format!("  {:>w$}", cells[i], w = widths[i]));
            }
            out.push('\n');
        };
        emit(
            &mut out,
            [
                header[0], header[1], header[2], header[3], header[4], header[5],
            ],
            &widths,
        );
        for row in &rows {
            emit(
                &mut out,
                [&row[0], &row[1], &row[2], &row[3], &row[4], &row[5]],
                &widths,
            );
        }
        out
    }
}

/// Human-scale duration: picks ns/µs/ms/s to keep the mantissa short.
fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The runtime toggle is process-global; tests that flip it must not
    /// overlap.
    #[cfg(feature = "instrument")]
    static TOGGLE_GUARD: Mutex<()> = Mutex::new(());

    #[cfg(feature = "instrument")]
    #[test]
    fn nested_spans_build_slash_paths() {
        let _guard = TOGGLE_GUARD.lock();
        set_spans_enabled(true);
        let p = Profiler::new();
        {
            let _outer = p.span("outer");
            let _inner = p.span("inner");
        }
        {
            let _solo = p.span("solo");
        }
        let snap = p.snapshot();
        let paths: Vec<&str> = snap.stages.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(paths, vec!["outer", "outer/inner", "solo"]);
        for row in &snap.stages {
            assert_eq!(row.count, 1);
            assert!(row.min_ns <= row.max_ns);
        }
        set_spans_enabled(false);
    }

    #[cfg(feature = "instrument")]
    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = TOGGLE_GUARD.lock();
        set_spans_enabled(false);
        let p = Profiler::new();
        {
            let _s = p.span("quiet");
        }
        assert!(p.snapshot().is_empty());
    }

    #[test]
    fn record_aggregates_count_total_min_max() {
        let p = Profiler::new();
        p.record("stage", 10);
        p.record("stage", 30);
        p.record("stage", 20);
        let snap = p.snapshot();
        assert_eq!(snap.stages.len(), 1);
        let row = &snap.stages[0];
        assert_eq!(
            (row.count, row.total_ns, row.mean_ns, row.min_ns, row.max_ns),
            (3, 60, 20, 10, 30)
        );
        p.reset();
        assert!(p.snapshot().is_empty());
    }

    #[test]
    fn render_is_aligned_and_complete() {
        let p = Profiler::new();
        p.record("a/b", 1_500);
        p.record("a", 2_000_000);
        let table = p.snapshot().render();
        assert!(table.contains("stage"));
        assert!(table.contains("a/b"));
        assert!(table.contains("1.5µs"));
        assert!(table.contains("2.0ms"));
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(1_500), "1.5µs");
        assert_eq!(fmt_ns(2_500_000), "2.5ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }
}
