//! Classification audit log: structured, explainable verdict records.
//!
//! The paper's "top distinguishing features" table (§5.3) is a static
//! artifact of model inspection; the audit log makes it live. For a
//! linear SVM the decision value decomposes exactly as
//! `f(x) = Σⱼ wⱼ·xⱼ + bias`, so every verdict can carry the per-feature
//! terms that produced it. Non-linear kernels (the paper's default RBF
//! among them) do not decompose this way — producers emit records only
//! when the model is linear.

use std::collections::VecDeque;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Which pipeline produced a verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AuditSource {
    /// Offline batch classification (`FrappeModel::predict` and friends).
    Batch,
    /// The online serving layer's score path.
    Online,
}

/// One feature's term in a linear decision function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureContribution {
    /// Canonical feature name. This crate stores whatever the producer
    /// passes; in this workspace producers take it from the feature
    /// catalog (`frappe::catalog`), so names and record order match the
    /// encoder's lane order exactly.
    pub feature: String,
    /// Learned weight for this feature.
    pub weight: f64,
    /// The scaled feature value the weight was applied to.
    pub value: f64,
    /// `weight * value`.
    pub contribution: f64,
}

/// A fully attributed verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditRecord {
    /// Numeric app identifier.
    pub app: u64,
    /// Batch or online origin.
    pub source: AuditSource,
    /// The decision value the verdict reported.
    pub decision_value: f64,
    /// Whether the verdict flagged the app malicious.
    pub malicious: bool,
    /// Kernel-independent offset (`-rho` for an SVM).
    pub bias: f64,
    /// Per-feature terms, in the model's feature order.
    pub contributions: Vec<FeatureContribution>,
    /// Feature-store generation the score was computed against
    /// (online verdicts only).
    pub generation: Option<u64>,
    /// Version of the model that produced the verdict (online verdicts
    /// only) — keeps audit trails attributable across hot swaps.
    #[serde(default)]
    pub model_version: Option<u64>,
}

impl AuditRecord {
    /// `bias + Σ contributions` — reconstructs the decision value.
    pub fn contribution_sum(&self) -> f64 {
        self.bias
            + self
                .contributions
                .iter()
                .map(|c| c.contribution)
                .sum::<f64>()
    }

    /// Whether the contributions explain the reported decision value to
    /// within `tol` (absolute, after scaling by the value's magnitude).
    pub fn is_consistent(&self, tol: f64) -> bool {
        let scale = self.decision_value.abs().max(1.0);
        (self.contribution_sum() - self.decision_value).abs() <= tol * scale
    }

    /// Contributions sorted by descending `|contribution|`, strongest
    /// evidence first.
    pub fn top_contributions(&self) -> Vec<&FeatureContribution> {
        let mut sorted: Vec<&FeatureContribution> = self.contributions.iter().collect();
        sorted.sort_by(|a, b| {
            b.contribution
                .abs()
                .partial_cmp(&a.contribution.abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        sorted
    }
}

/// Bounded, thread-safe sink for [`AuditRecord`]s.
///
/// Keeps the most recent `capacity` records; older ones are dropped so an
/// always-on service cannot grow without bound.
pub struct AuditLog {
    records: Mutex<VecDeque<AuditRecord>>,
    capacity: usize,
}

impl AuditLog {
    /// A log retaining at most `capacity` records (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            records: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
        }
    }

    /// Append a record, evicting the oldest if at capacity.
    pub fn record(&self, record: AuditRecord) {
        let mut records = self.records.lock();
        if records.len() == self.capacity {
            records.pop_front();
        }
        records.push_back(record);
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.records.lock().is_empty()
    }

    /// Copy of the retained records, oldest first.
    pub fn snapshot(&self) -> Vec<AuditRecord> {
        self.records.lock().iter().cloned().collect()
    }

    /// Remove and return all retained records, oldest first.
    pub fn drain(&self) -> Vec<AuditRecord> {
        self.records.lock().drain(..).collect()
    }

    /// Render the retained records as JSONL, one record per line.
    pub fn to_jsonl(&self) -> String {
        let records = self.records.lock();
        let mut out = String::new();
        for r in records.iter() {
            out.push_str(&serde_json::to_string(r).expect("audit record serializes"));
            out.push('\n');
        }
        out
    }

    /// Render as JSONL with a `ts_micros` field on every line, stamped
    /// once from the injected clock (no raw wall-time read — output is
    /// byte-deterministic under a [`ManualClock`](crate::ManualClock)).
    pub fn to_jsonl_stamped(&self, clock: &dyn crate::Clock) -> String {
        use std::fmt::Write as _;
        let ts_micros = clock.now_micros();
        let records = self.records.lock();
        let mut out = String::new();
        for record in records.iter() {
            let line = serde_json::to_string(record).expect("audit record serializes");
            // Splice the timestamp in as the first field of each object.
            let rest = line.strip_prefix('{').unwrap_or(&line);
            let _ = writeln!(out, "{{\"ts_micros\":{ts_micros},{rest}");
        }
        out
    }
}

impl Default for AuditLog {
    /// A log retaining 1024 records.
    fn default() -> Self {
        Self::new(1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(app: u64, dv: f64) -> AuditRecord {
        AuditRecord {
            app,
            source: AuditSource::Batch,
            decision_value: dv,
            malicious: dv > 0.0,
            bias: 0.25,
            contributions: vec![
                FeatureContribution {
                    feature: "category".into(),
                    weight: 0.5,
                    value: 1.0,
                    contribution: 0.5,
                },
                FeatureContribution {
                    feature: "wot_score".into(),
                    weight: -2.0,
                    value: 0.5,
                    contribution: -1.0,
                },
            ],
            generation: None,
            model_version: None,
        }
    }

    #[test]
    fn contribution_sum_reconstructs_decision() {
        let r = record(7, -0.25);
        assert!((r.contribution_sum() - (-0.25)).abs() < 1e-12);
        assert!(r.is_consistent(1e-9));
        let mut bad = r.clone();
        bad.decision_value = 3.0;
        assert!(!bad.is_consistent(1e-9));
    }

    #[test]
    fn top_contributions_sorted_by_magnitude() {
        let r = record(7, -0.25);
        let top = r.top_contributions();
        assert_eq!(top[0].feature, "wot_score");
        assert_eq!(top[1].feature, "category");
    }

    #[test]
    fn log_is_a_ring() {
        let log = AuditLog::new(2);
        for app in 0..5 {
            log.record(record(app, 0.1));
        }
        let kept = log.snapshot();
        assert_eq!(kept.len(), 2);
        assert_eq!((kept[0].app, kept[1].app), (3, 4));
        assert_eq!(log.drain().len(), 2);
        assert!(log.is_empty());
    }

    #[test]
    fn stamped_jsonl_is_deterministic_under_a_manual_clock() {
        let log = AuditLog::default();
        log.record(record(1, 0.5));
        let clock = crate::ManualClock::at(42);
        let out = log.to_jsonl_stamped(&clock);
        assert_eq!(out, log.to_jsonl_stamped(&clock));
        let parsed: serde_json::Value = serde_json::from_str(out.lines().next().unwrap()).unwrap();
        assert_eq!(
            parsed.get_field("ts_micros").and_then(|v| v.as_u64()),
            Some(42)
        );
        assert_eq!(parsed.get_field("app").and_then(|v| v.as_u64()), Some(1));
    }

    #[test]
    fn jsonl_roundtrips() {
        let log = AuditLog::default();
        log.record(record(42, 1.5));
        let jsonl = log.to_jsonl();
        let line = jsonl.lines().next().expect("one line");
        let parsed: AuditRecord = serde_json::from_str(line).expect("parses back");
        assert_eq!(parsed.app, 42);
        assert_eq!(parsed.source, AuditSource::Batch);
        assert_eq!(parsed.contributions.len(), 2);
    }
}
