//! Primitive metric instruments: counters, gauges, and fixed-bucket
//! histograms.
//!
//! Every instrument is a plain bundle of atomics updated with `Relaxed`
//! ordering, so recording on a hot path is a handful of uncontended
//! atomic RMW operations — no locks, no allocation. Snapshots are only
//! approximately consistent across instruments, which is the usual (and
//! acceptable) trade for monitoring data.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter starting at zero.
    pub const fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
        }
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A value that can move in both directions (queue depths, pool sizes).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge starting at zero.
    pub const fn new() -> Self {
        Self {
            value: AtomicI64::new(0),
        }
    }

    /// Overwrite the current value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Fixed-bucket histogram over `u64` observations (typically microseconds).
///
/// `bounds` are the inclusive upper edges of the finite buckets; one extra
/// overflow bucket catches everything above the last bound. Bucket layout is
/// fixed at construction so recording never allocates.
#[derive(Debug)]
pub struct Histogram {
    bounds: Box<[u64]>,
    buckets: Box<[AtomicU64]>,
    // Per-bucket exemplar slots: the most recent (value, trace id)
    // observed into the bucket via `observe_with_exemplar`. An id of 0
    // means "no exemplar yet".
    exemplar_values: Box<[AtomicU64]>,
    exemplar_ids: Box<[AtomicU64]>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// Build a histogram from strictly ascending finite bucket bounds.
    ///
    /// # Panics
    /// If `bounds` is empty or not strictly ascending.
    pub fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        let exemplar_values = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        let exemplar_ids = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Self {
            bounds: bounds.into(),
            buckets,
            exemplar_values,
            exemplar_ids,
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// The finite bucket bounds this histogram was built with.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Record one observation.
    pub fn observe(&self, value: u64) {
        self.bucket_for(value);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one observation and attach `trace_id` as the bucket's
    /// exemplar (latest writer wins; an id of 0 records no exemplar).
    /// Lets a scraped histogram answer "show me a real request that
    /// landed in this latency bucket".
    pub fn observe_with_exemplar(&self, value: u64, trace_id: u64) {
        let idx = self.bucket_for(value);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        if trace_id != 0 {
            self.exemplar_values[idx].store(value, Ordering::Relaxed);
            self.exemplar_ids[idx].store(trace_id, Ordering::Relaxed);
        }
    }

    fn bucket_for(&self, value: u64) -> usize {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        idx
    }

    /// Record a duration in whole microseconds.
    pub fn observe_duration_micros(&self, elapsed: Duration) {
        self.observe(elapsed.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let exemplars = self
            .exemplar_ids
            .iter()
            .zip(self.exemplar_values.iter())
            .map(|(id, value)| {
                let trace_id = id.load(Ordering::Relaxed);
                (trace_id != 0).then(|| ExemplarSnapshot {
                    value: value.load(Ordering::Relaxed),
                    trace_id,
                })
            })
            .collect();
        HistogramSnapshot {
            bounds: self.bounds.to_vec(),
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            exemplars,
            sum: self.sum.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

/// One bucket's exemplar: a real observation and the trace that made it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExemplarSnapshot {
    /// The observed value.
    pub value: u64,
    /// The trace id attached to the observation.
    pub trace_id: u64,
}

/// Serializable copy of a [`Histogram`]'s state.
///
/// `counts` has one more entry than `bounds`: the final slot is the
/// overflow bucket for observations above the last finite bound.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Inclusive upper edges of the finite buckets.
    pub bounds: Vec<u64>,
    /// Per-bucket observation counts (last entry = overflow bucket).
    pub counts: Vec<u64>,
    /// Per-bucket exemplars, aligned with `counts` (`None` for buckets
    /// that never saw an exemplar-carrying observation).
    pub exemplars: Vec<Option<ExemplarSnapshot>>,
    /// Sum of all observed values.
    pub sum: u64,
    /// Total number of observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Mean observed value, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing quantile `q` (clamped to
    /// `[0, 1]`).
    ///
    /// Observations that land in the unbounded overflow bucket are
    /// reported as the last *finite* bound — the histogram cannot resolve
    /// beyond its top edge, so it answers with the tightest bound it can
    /// defend instead of extrapolating or refusing. Returns `None` only
    /// when the histogram is empty.
    pub fn quantile_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let i = i.min(self.bounds.len() - 1);
                return Some(self.bounds[i]);
            }
        }
        self.bounds.last().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);

        let g = Gauge::new();
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn histogram_buckets_observations() {
        let h = Histogram::new(&[10, 100, 1_000]);
        for v in [1, 10, 11, 100, 5_000] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.counts, vec![2, 2, 0, 1]);
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 5_122);
        assert!((s.mean() - 1_024.4).abs() < 1e-9);
    }

    #[test]
    fn quantiles_walk_cumulative_counts() {
        let h = Histogram::new(&[10, 100, 1_000]);
        for v in [1, 2, 3, 50, 60, 70, 80, 500, 600, 700] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.quantile_bound(0.0), Some(10));
        assert_eq!(s.quantile_bound(0.3), Some(10));
        assert_eq!(s.quantile_bound(0.5), Some(100));
        assert_eq!(s.quantile_bound(0.9), Some(1_000));
    }

    #[test]
    fn overflow_quantile_reports_last_finite_bound() {
        // regression: quantiles landing in the +Inf bucket used to be
        // unanswerable; they must clamp to the top finite edge instead.
        let h = Histogram::new(&[10, 100]);
        h.observe(5);
        h.observe(99_999);
        let s = h.snapshot();
        assert_eq!(s.quantile_bound(1.0), Some(100));
        assert_eq!(s.quantile_bound(0.5), Some(10));
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let s = Histogram::new(&[10]).snapshot();
        assert_eq!(s.quantile_bound(0.5), None);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_bounds_rejected() {
        let _ = Histogram::new(&[10, 10]);
    }

    #[test]
    fn exemplars_track_latest_per_bucket() {
        let h = Histogram::new(&[10, 100]);
        h.observe(5); // no exemplar
        assert!(h.snapshot().exemplars.iter().all(Option::is_none));

        h.observe_with_exemplar(7, 0x11);
        h.observe_with_exemplar(9, 0x22); // same bucket, latest wins
        h.observe_with_exemplar(5_000, 0x33); // overflow bucket
        let s = h.snapshot();
        assert_eq!(
            s.exemplars[0],
            Some(ExemplarSnapshot {
                value: 9,
                trace_id: 0x22
            })
        );
        assert_eq!(s.exemplars[1], None);
        assert_eq!(
            s.exemplars[2],
            Some(ExemplarSnapshot {
                value: 5_000,
                trace_id: 0x33
            })
        );
        assert_eq!(s.count, 4);
        let roundtrip: HistogramSnapshot =
            serde_json::from_str(&serde_json::to_string(&s).unwrap()).unwrap();
        assert_eq!(roundtrip, s);
    }
}
