//! Sliding-window SLO accounting: burn rates and error-budget gauges.
//!
//! Lifetime counters answer "how many ever"; an on-call needs "how fast
//! am I spending my error budget *right now*". An [`SloWindow`] keeps
//! one slot per second over a rolling window, each slot holding request
//! / bad-request / slow-request counts and a latency sum. Slots are
//! lazily recycled as the injected [`Clock`] advances, so recording is
//! one short per-slot lock and no background thread exists.
//!
//! Definitions (all integer math, reported in ppm / milli units):
//!
//! * **bad ratio** = `bad / requests` — a request is *bad* when the
//!   caller says so (the edge counts 429 sheds and 5xx).
//! * **slow ratio** = `slow / requests` with `slow` meaning latency ≥
//!   [`SloConfig::latency_slo_us`].
//! * **burn rate** = `observed ratio / budget ratio`. Burn 1.0 (1000
//!   milli) spends exactly the budget; >1 is how many times faster than
//!   sustainable the budget is burning (the Google SRE workbook's
//!   multiwindow alert quantity).
//! * **budget remaining** = `1 − consumed/allowed` over this window,
//!   clamped to `[0, 1]`, in ppm.
//!
//! Publish to a [`Registry`] with a `window` label (e.g. `1m`, `5m`) so
//! one family carries every window: `slo_burn_rate_milli{window="1m"}`.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::clock::Clock;
use crate::registry::Registry;

/// SLO targets for one window.
#[derive(Debug, Clone)]
pub struct SloConfig {
    /// Window width in seconds (one accounting slot per second).
    pub window_secs: u64,
    /// Allowed bad-request fraction, in parts per million
    /// (`1_000` = 99.9% availability target).
    pub bad_budget_ppm: u64,
    /// Latency at or above this many microseconds counts as slow.
    pub latency_slo_us: u64,
    /// Allowed slow-request fraction, in parts per million.
    pub slow_budget_ppm: u64,
}

impl Default for SloConfig {
    fn default() -> Self {
        Self {
            window_secs: 60,
            bad_budget_ppm: 1_000,
            latency_slo_us: 10_000,
            slow_budget_ppm: 10_000,
        }
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct Slot {
    epoch_sec: u64,
    requests: u64,
    bad: u64,
    slow: u64,
    latency_sum_us: u64,
}

/// One rolling window of per-second SLO accounting.
pub struct SloWindow {
    config: SloConfig,
    clock: Arc<dyn Clock>,
    slots: Vec<Mutex<Slot>>,
}

/// Point-in-time aggregate over an [`SloWindow`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SloReport {
    /// Window width in seconds.
    pub window_secs: u64,
    /// Requests observed inside the window.
    pub requests: u64,
    /// Bad requests inside the window.
    pub bad: u64,
    /// Slow requests inside the window.
    pub slow: u64,
    /// Sum of latencies inside the window (microseconds).
    pub latency_sum_us: u64,
    /// `bad / requests` in ppm (0 when idle).
    pub bad_ratio_ppm: u64,
    /// `slow / requests` in ppm (0 when idle).
    pub slow_ratio_ppm: u64,
    /// Availability burn rate ×1000 (1000 = burning exactly at budget).
    pub bad_burn_rate_milli: u64,
    /// Latency burn rate ×1000.
    pub slow_burn_rate_milli: u64,
    /// Error budget remaining this window, ppm of budget, clamped.
    pub budget_remaining_ppm: u64,
}

impl SloWindow {
    /// A window on the given clock.
    pub fn new(config: SloConfig, clock: Arc<dyn Clock>) -> Self {
        let secs = config.window_secs.max(1) as usize;
        Self {
            config,
            clock,
            slots: (0..secs).map(|_| Mutex::new(Slot::default())).collect(),
        }
    }

    /// Record one finished request.
    pub fn record(&self, latency_us: u64, bad: bool) {
        let sec = self.clock.now_micros() / 1_000_000;
        let idx = (sec % self.slots.len() as u64) as usize;
        let mut slot = self.slots[idx].lock();
        if slot.epoch_sec != sec {
            *slot = Slot {
                epoch_sec: sec,
                ..Slot::default()
            };
        }
        slot.requests += 1;
        slot.latency_sum_us += latency_us;
        if bad {
            slot.bad += 1;
        }
        if latency_us >= self.config.latency_slo_us {
            slot.slow += 1;
        }
    }

    /// Aggregate the slots still inside the window.
    pub fn report(&self) -> SloReport {
        let now_sec = self.clock.now_micros() / 1_000_000;
        let width = self.slots.len() as u64;
        let oldest = now_sec.saturating_sub(width.saturating_sub(1));
        let mut requests = 0u64;
        let mut bad = 0u64;
        let mut slow = 0u64;
        let mut latency_sum_us = 0u64;
        for slot in &self.slots {
            let slot = slot.lock();
            if slot.epoch_sec >= oldest && slot.epoch_sec <= now_sec {
                requests += slot.requests;
                bad += slot.bad;
                slow += slot.slow;
                latency_sum_us += slot.latency_sum_us;
            }
        }
        let ratio_ppm = |n: u64| {
            n.saturating_mul(1_000_000)
                .checked_div(requests)
                .unwrap_or(0)
        };
        let bad_ratio_ppm = ratio_ppm(bad);
        let slow_ratio_ppm = ratio_ppm(slow);
        let burn_milli = |ratio_ppm: u64, budget_ppm: u64| {
            match ratio_ppm.saturating_mul(1_000).checked_div(budget_ppm) {
                Some(burn) => burn,
                // zero budget: any violation burns infinitely fast
                None if ratio_ppm == 0 => 0,
                None => u64::MAX,
            }
        };
        let bad_burn_rate_milli = burn_milli(bad_ratio_ppm, self.config.bad_budget_ppm);
        // Budget remaining: the window allows `budget_ppm * requests /
        // 1e6` bad requests; report the unconsumed fraction of that.
        let budget_remaining_ppm = {
            let allowed_ppm_requests = self.config.bad_budget_ppm.saturating_mul(requests);
            let consumed_ppm_requests = bad.saturating_mul(1_000_000);
            if allowed_ppm_requests == 0 {
                if bad == 0 {
                    1_000_000
                } else {
                    0
                }
            } else if consumed_ppm_requests >= allowed_ppm_requests {
                0
            } else {
                ((allowed_ppm_requests - consumed_ppm_requests) as u128 * 1_000_000
                    / allowed_ppm_requests as u128) as u64
            }
        };
        SloReport {
            window_secs: width,
            requests,
            bad,
            slow,
            latency_sum_us,
            bad_ratio_ppm,
            slow_ratio_ppm,
            bad_burn_rate_milli,
            slow_burn_rate_milli: burn_milli(slow_ratio_ppm, self.config.slow_budget_ppm),
            budget_remaining_ppm,
        }
    }

    /// Publish this window's report as `slo_*` gauges labelled
    /// `{window="<label>"}` (call at scrape time).
    pub fn publish(&self, registry: &Registry, label: &str) {
        let r = self.report();
        let labels: &[(&str, &str)] = &[("window", label)];
        let clamp = |v: u64| v.min(i64::MAX as u64) as i64;
        registry
            .gauge_with("slo_requests_window", labels)
            .set(clamp(r.requests));
        registry
            .gauge_with("slo_bad_window", labels)
            .set(clamp(r.bad));
        registry
            .gauge_with("slo_slow_window", labels)
            .set(clamp(r.slow));
        registry
            .gauge_with("slo_burn_rate_milli", labels)
            .set(clamp(r.bad_burn_rate_milli));
        registry
            .gauge_with("slo_latency_burn_rate_milli", labels)
            .set(clamp(r.slow_burn_rate_milli));
        registry
            .gauge_with("slo_budget_remaining_ppm", labels)
            .set(clamp(r.budget_remaining_ppm));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    fn window(cfg: SloConfig) -> (SloWindow, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::at(0));
        (
            SloWindow::new(cfg, Arc::clone(&clock) as Arc<dyn Clock>),
            clock,
        )
    }

    #[test]
    fn burn_rate_is_observed_over_budget() {
        let (w, clock) = window(SloConfig {
            window_secs: 10,
            bad_budget_ppm: 10_000, // 1%
            latency_slo_us: 1_000,
            slow_budget_ppm: 100_000, // 10%
        });
        for i in 0..100 {
            // 2 bad out of 100 = 2% = 2x budget; 20 slow = 20% = 2x.
            w.record(if i < 20 { 1_000 } else { 10 }, i < 2);
            clock.advance(10_000); // 100 requests over 1 second
        }
        let r = w.report();
        assert_eq!(r.requests, 100);
        assert_eq!(r.bad, 2);
        assert_eq!(r.slow, 20);
        assert_eq!(r.bad_ratio_ppm, 20_000);
        assert_eq!(r.bad_burn_rate_milli, 2_000);
        assert_eq!(r.slow_burn_rate_milli, 2_000);
        assert_eq!(
            r.budget_remaining_ppm, 0,
            "2x burn exhausts the window budget"
        );
    }

    #[test]
    fn old_slots_age_out_as_the_clock_advances() {
        let (w, clock) = window(SloConfig {
            window_secs: 5,
            ..SloConfig::default()
        });
        w.record(10, true);
        assert_eq!(w.report().bad, 1);
        clock.advance(4_000_000);
        assert_eq!(w.report().bad, 1, "still inside the 5s window");
        clock.advance(2_000_000);
        let r = w.report();
        assert_eq!(r.requests, 0, "aged out");
        assert_eq!(
            r.budget_remaining_ppm, 1_000_000,
            "idle window = full budget"
        );
        assert_eq!(r.bad_burn_rate_milli, 0);
    }

    #[test]
    fn budget_remaining_scales_linearly_with_consumption() {
        let (w, _clock) = window(SloConfig {
            window_secs: 60,
            bad_budget_ppm: 100_000, // 10%: 1000 requests allow 100 bad
            ..SloConfig::default()
        });
        for i in 0..1_000 {
            w.record(10, i < 25); // consumed a quarter of the budget
        }
        let r = w.report();
        assert_eq!(r.budget_remaining_ppm, 750_000);
        assert_eq!(r.bad_burn_rate_milli, 250);
    }

    #[test]
    fn publish_writes_labelled_gauges() {
        let (w, _clock) = window(SloConfig::default());
        w.record(10, false);
        let registry = Registry::new();
        w.publish(&registry, "1m");
        assert_eq!(
            registry
                .gauge_with("slo_requests_window", &[("window", "1m")])
                .get(),
            1
        );
        assert_eq!(
            registry
                .gauge_with("slo_budget_remaining_ppm", &[("window", "1m")])
                .get(),
            1_000_000
        );
    }
}
