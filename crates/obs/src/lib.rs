//! # frappe-obs — workspace observability
//!
//! The paper is a measurement study: §4–§6 are tables of counts, rates,
//! and per-feature evidence. This crate gives the reproduction's pipeline
//! (crawler → pagekeeper → feature extraction → SVM → serve) the same
//! accounting discipline at runtime, in three layers:
//!
//! * [`metrics`] + [`registry`] — atomic counters, gauges, and
//!   fixed-bucket histograms behind named `Arc` handles; registration
//!   takes a short lock once, recording is lock-free and allocation-free.
//!   Snapshots export as Prometheus text or JSONL.
//! * [`mod@span`] — RAII scoped timers with `outer/inner` path nesting,
//!   aggregated into a bounded per-stage profile table. Gated twice: the
//!   `instrument` cargo feature compiles spans out entirely, and a
//!   runtime toggle (env var [`ENV_TOGGLE`], or [`set_spans_enabled`])
//!   reduces a disabled span to one relaxed atomic load.
//! * [`audit`] — structured verdict records carrying per-feature
//!   contributions (`weight × value`) that sum, with the bias, back to
//!   the decision value. Linear kernels only; producers skip records for
//!   kernels that do not decompose.
//! * [`trace`] — per-request traces with causally-linked spans, minted
//!   at the edge and finished at response write. Deterministic head
//!   sampling plus always-keep tail sampling (429s, sheds, stale-epoch
//!   retries, p99+ latency, requests straddling a promote/rollback/
//!   drain) into a bounded ring, exported as JSONL or Chrome
//!   `trace_event` JSON.
//! * [`slo`] — rolling per-second windows turning request outcomes into
//!   burn-rate and error-budget-remaining gauges (`slo_*`).
//! * [`clock`] — the injectable time source everything above stamps
//!   with, so exports are byte-deterministic under a [`ManualClock`].
//!
//! Consumers share the process-wide [`Registry::global`] and
//! [`Profiler::global`], or create private instances where isolation
//! matters (each `frappe-serve` service owns its registry so concurrent
//! services — and tests — never share counters).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod clock;
pub mod metrics;
pub mod registry;
pub mod slo;
pub mod span;
pub mod trace;

pub use audit::{AuditLog, AuditRecord, AuditSource, FeatureContribution};
pub use clock::{Clock, ManualClock, WallClock};
pub use metrics::{Counter, ExemplarSnapshot, Gauge, Histogram, HistogramSnapshot};
pub use registry::{escape_label_value, MetricSnapshot, MetricValue, Registry, RegistrySnapshot};
pub use slo::{SloConfig, SloReport, SloWindow};
pub use span::{
    set_spans_enabled, span, spans_enabled, ProfileSnapshot, Profiler, Span, StageRow, ENV_TOGGLE,
};
pub use trace::{
    AlarmRecord, CompletedSpan, CompletedTrace, LifecycleEvent, SpanId, TraceCollector,
    TraceConfig, TraceEvent, TraceFlag, TraceHandle, TraceId, TraceStats,
};
