//! Named metric registry with Prometheus text and JSONL exporters.
//!
//! A [`Registry`] hands out `Arc` handles to instruments keyed by name.
//! Callers register once (taking a short lock) and then record through
//! the handle with no registry involvement, so the hot path stays
//! lock-free. One process-wide registry is available via
//! [`Registry::global`]; subsystems that need isolated counting (e.g. one
//! serving instance per test) create their own with [`Registry::new`].

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};

#[derive(Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A collection of named instruments.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide registry shared by all instrumented crates.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Get or create the counter registered under `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different instrument kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut metrics = self.metrics.lock();
        let metric = metrics
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())));
        match metric {
            Metric::Counter(c) => Arc::clone(c),
            other => panic!("metric {name:?} is a {}, not a counter", other.kind()),
        }
    }

    /// Get or create the gauge registered under `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different instrument kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut metrics = self.metrics.lock();
        let metric = metrics
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())));
        match metric {
            Metric::Gauge(g) => Arc::clone(g),
            other => panic!("metric {name:?} is a {}, not a gauge", other.kind()),
        }
    }

    /// Get or create the histogram registered under `name` with the given
    /// finite bucket bounds.
    ///
    /// # Panics
    /// If `name` is already registered as a different instrument kind, or
    /// as a histogram with different bounds.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        let mut metrics = self.metrics.lock();
        let metric = metrics
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new(bounds))));
        match metric {
            Metric::Histogram(h) => {
                assert!(
                    h.bounds() == bounds,
                    "metric {name:?} already registered with different bounds"
                );
                Arc::clone(h)
            }
            other => panic!("metric {name:?} is a {}, not a histogram", other.kind()),
        }
    }

    /// Point-in-time copy of every registered instrument, sorted by name.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let metrics = self.metrics.lock();
        RegistrySnapshot {
            metrics: metrics
                .iter()
                .map(|(name, metric)| MetricSnapshot {
                    name: name.clone(),
                    value: match metric {
                        Metric::Counter(c) => MetricValue::Counter(c.get()),
                        Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                        Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                    },
                })
                .collect(),
        }
    }
}

/// One instrument's state at snapshot time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricSnapshot {
    /// Registered metric name.
    pub name: String,
    /// Kind-tagged value.
    pub value: MetricValue,
}

/// The value side of a [`MetricSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MetricValue {
    /// Monotonic count.
    Counter(u64),
    /// Instantaneous level.
    Gauge(i64),
    /// Bucketed distribution.
    Histogram(HistogramSnapshot),
}

/// All registered instruments at one point in time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegistrySnapshot {
    /// Per-instrument snapshots, sorted by name.
    pub metrics: Vec<MetricSnapshot>,
}

impl RegistrySnapshot {
    /// Render in the Prometheus text exposition format (one `# TYPE`
    /// header per metric; histograms expand to cumulative `_bucket`
    /// series plus `_sum` and `_count`).
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        for m in &self.metrics {
            let name = sanitize_metric_name(&m.name);
            match &m.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "# TYPE {name} counter\n{name} {v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "# TYPE {name} gauge\n{name} {v}");
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {name} histogram");
                    let mut cumulative = 0u64;
                    for (i, &c) in h.counts.iter().enumerate() {
                        cumulative += c;
                        match h.bounds.get(i) {
                            Some(b) => {
                                let _ = writeln!(out, "{name}_bucket{{le=\"{b}\"}} {cumulative}");
                            }
                            None => {
                                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
                            }
                        }
                    }
                    let _ = writeln!(out, "{name}_sum {}\n{name}_count {}", h.sum, h.count);
                }
            }
        }
        out
    }

    /// Render as JSONL: one JSON object per metric per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for m in &self.metrics {
            let line = serde_json::to_string(m).expect("metric snapshot serializes");
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

/// Map a registry name onto the Prometheus identifier charset
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
fn sanitize_metric_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_none_or(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_same_instrument() {
        let r = Registry::new();
        let a = r.counter("requests");
        let b = r.counter("requests");
        a.inc();
        b.add(2);
        assert_eq!(r.counter("requests").get(), 3);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("x");
        let _ = r.gauge("x");
    }

    #[test]
    fn prometheus_text_has_cumulative_buckets() {
        let r = Registry::new();
        r.counter("hits").add(3);
        r.gauge("depth").set(-2);
        let h = r.histogram("lat", &[10, 100]);
        h.observe(5);
        h.observe(50);
        h.observe(5_000);
        let text = r.snapshot().to_prometheus_text();
        assert!(text.contains("# TYPE hits counter\nhits 3"));
        assert!(text.contains("# TYPE depth gauge\ndepth -2"));
        assert!(text.contains("lat_bucket{le=\"10\"} 1"));
        assert!(text.contains("lat_bucket{le=\"100\"} 2"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("lat_sum 5055"));
        assert!(text.contains("lat_count 3"));
    }

    #[test]
    fn jsonl_is_one_parsable_object_per_line() {
        let r = Registry::new();
        r.counter("a").inc();
        r.gauge("b").set(4);
        r.histogram("c", &[1]).observe(2);
        let jsonl = r.snapshot().to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in lines {
            let parsed: MetricSnapshot = serde_json::from_str(line).expect("each line parses back");
            assert!(!parsed.name.is_empty());
        }
    }

    #[test]
    fn sanitizes_awkward_names() {
        assert_eq!(sanitize_metric_name("serve/score.p99"), "serve_score_p99");
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
    }
}
