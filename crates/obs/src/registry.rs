//! Named metric registry with Prometheus text and JSONL exporters.
//!
//! A [`Registry`] hands out `Arc` handles to instruments keyed by name
//! plus an optional label set. Callers register once (taking a short
//! lock) and then record through the handle with no registry
//! involvement, so the hot path stays lock-free. One process-wide
//! registry is available via [`Registry::global`]; subsystems that need
//! isolated counting (e.g. one serving instance per test) create their
//! own with [`Registry::new`].
//!
//! Label values are escaped per the Prometheus text exposition rules
//! (`\` → `\\`, `"` → `\"`, newline → `\n`) — the encoding is pinned
//! byte-exactly by a test below. The JSONL exporter can stamp every
//! line with a timestamp from an injected [`Clock`], never from a raw
//! wall-time read, so exports are byte-deterministic under a
//! [`ManualClock`](crate::ManualClock).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::clock::Clock;
use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};

#[derive(Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

type MetricKey = (String, Vec<(String, String)>);

fn key(name: &str, labels: &[(&str, &str)]) -> MetricKey {
    (
        name.to_owned(),
        labels
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect(),
    )
}

/// A collection of named instruments.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<MetricKey, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide registry shared by all instrumented crates.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Get or create the counter registered under `name` (no labels).
    ///
    /// # Panics
    /// If `name` is already registered as a different instrument kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, &[])
    }

    /// Get or create the counter registered under `name` with the given
    /// label set. Each distinct label set is its own instrument in the
    /// same family.
    ///
    /// # Panics
    /// If the same name + labels is registered as a different kind.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let mut metrics = self.metrics.lock();
        let metric = metrics
            .entry(key(name, labels))
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())));
        match metric {
            Metric::Counter(c) => Arc::clone(c),
            other => panic!("metric {name:?} is a {}, not a counter", other.kind()),
        }
    }

    /// Get or create the gauge registered under `name` (no labels).
    ///
    /// # Panics
    /// If `name` is already registered as a different instrument kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[])
    }

    /// Get or create the gauge registered under `name` with the given
    /// label set.
    ///
    /// # Panics
    /// If the same name + labels is registered as a different kind.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let mut metrics = self.metrics.lock();
        let metric = metrics
            .entry(key(name, labels))
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())));
        match metric {
            Metric::Gauge(g) => Arc::clone(g),
            other => panic!("metric {name:?} is a {}, not a gauge", other.kind()),
        }
    }

    /// Get or create the histogram registered under `name` (no labels)
    /// with the given finite bucket bounds.
    ///
    /// # Panics
    /// If `name` is already registered as a different instrument kind, or
    /// as a histogram with different bounds.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        self.histogram_with(name, &[], bounds)
    }

    /// Get or create the histogram registered under `name` with the
    /// given label set and finite bucket bounds.
    ///
    /// # Panics
    /// If the same name + labels is registered as a different kind, or
    /// as a histogram with different bounds.
    pub fn histogram_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        bounds: &[u64],
    ) -> Arc<Histogram> {
        let mut metrics = self.metrics.lock();
        let metric = metrics
            .entry(key(name, labels))
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new(bounds))));
        match metric {
            Metric::Histogram(h) => {
                assert!(
                    h.bounds() == bounds,
                    "metric {name:?} already registered with different bounds"
                );
                Arc::clone(h)
            }
            other => panic!("metric {name:?} is a {}, not a histogram", other.kind()),
        }
    }

    /// Point-in-time copy of every registered instrument, sorted by
    /// name then label set.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let metrics = self.metrics.lock();
        RegistrySnapshot {
            metrics: metrics
                .iter()
                .map(|((name, labels), metric)| MetricSnapshot {
                    name: name.clone(),
                    labels: labels.clone(),
                    value: match metric {
                        Metric::Counter(c) => MetricValue::Counter(c.get()),
                        Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                        Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                    },
                })
                .collect(),
        }
    }
}

/// One instrument's state at snapshot time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricSnapshot {
    /// Registered metric name.
    pub name: String,
    /// Label pairs (empty for unlabelled instruments).
    pub labels: Vec<(String, String)>,
    /// Kind-tagged value.
    pub value: MetricValue,
}

/// The value side of a [`MetricSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MetricValue {
    /// Monotonic count.
    Counter(u64),
    /// Instantaneous level.
    Gauge(i64),
    /// Bucketed distribution.
    Histogram(HistogramSnapshot),
}

/// All registered instruments at one point in time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegistrySnapshot {
    /// Per-instrument snapshots, sorted by name then labels.
    pub metrics: Vec<MetricSnapshot>,
}

impl RegistrySnapshot {
    /// Render in the Prometheus text exposition format (one `# TYPE`
    /// header per metric family; histograms expand to cumulative
    /// `_bucket` series plus `_sum` and `_count`; bucket exemplars
    /// render in the OpenMetrics `# {trace_id="…"} value` form).
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        let mut last_family: Option<&str> = None;
        for m in &self.metrics {
            let name = sanitize_metric_name(&m.name);
            let labels = render_labels(&m.labels);
            if last_family != Some(m.name.as_str()) {
                let kind = match &m.value {
                    MetricValue::Counter(_) => "counter",
                    MetricValue::Gauge(_) => "gauge",
                    MetricValue::Histogram(_) => "histogram",
                };
                let _ = writeln!(out, "# TYPE {name} {kind}");
                last_family = Some(m.name.as_str());
            }
            match &m.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{name}{labels} {v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{name}{labels} {v}");
                }
                MetricValue::Histogram(h) => {
                    let mut cumulative = 0u64;
                    for (i, &c) in h.counts.iter().enumerate() {
                        cumulative += c;
                        let le = match h.bounds.get(i) {
                            Some(b) => b.to_string(),
                            None => "+Inf".to_owned(),
                        };
                        let bucket_labels = render_bucket_labels(&m.labels, &le);
                        let _ = write!(out, "{name}_bucket{bucket_labels} {cumulative}");
                        if let Some(Some(ex)) = h.exemplars.get(i) {
                            let _ = write!(
                                out,
                                " # {{trace_id=\"{:016x}\"}} {}",
                                ex.trace_id, ex.value
                            );
                        }
                        out.push('\n');
                    }
                    let _ = writeln!(out, "{name}_sum{labels} {}", h.sum);
                    let _ = writeln!(out, "{name}_count{labels} {}", h.count);
                }
            }
        }
        out
    }

    /// Render as JSONL: one JSON object per metric per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for m in &self.metrics {
            let line = serde_json::to_string(m).expect("metric snapshot serializes");
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// Render as JSONL with a `ts_micros` field on every line, stamped
    /// once from the injected clock. No wall time is read here — hand
    /// in a [`ManualClock`](crate::ManualClock) and the output is
    /// byte-deterministic.
    pub fn to_jsonl_stamped(&self, clock: &dyn Clock) -> String {
        let ts_micros = clock.now_micros();
        let mut out = String::new();
        for m in &self.metrics {
            let line = serde_json::to_string(m).expect("metric snapshot serializes");
            // Splice the timestamp in as the first field of each object.
            let rest = line.strip_prefix('{').unwrap_or(&line);
            let _ = writeln!(out, "{{\"ts_micros\":{ts_micros},{rest}");
        }
        out
    }
}

/// Render `{k="v",…}` with escaped values, or nothing when unlabelled.
fn render_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{}=\"{}\"",
            sanitize_metric_name(k),
            escape_label_value(v)
        );
    }
    out.push('}');
    out
}

/// Bucket labels: the instrument's own labels plus the `le` bound.
fn render_bucket_labels(labels: &[(String, String)], le: &str) -> String {
    let mut all: Vec<(String, String)> = labels.to_vec();
    all.push(("le".to_owned(), le.to_owned()));
    render_labels(&all)
}

/// Escape a label value per the Prometheus text format: backslash,
/// double-quote, and newline get backslash escapes; everything else
/// passes through.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Map a registry name onto the Prometheus identifier charset
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
fn sanitize_metric_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_none_or(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    #[test]
    fn get_or_create_returns_same_instrument() {
        let r = Registry::new();
        let a = r.counter("requests");
        let b = r.counter("requests");
        a.inc();
        b.add(2);
        assert_eq!(r.counter("requests").get(), 3);
    }

    #[test]
    fn label_sets_are_distinct_instruments_in_one_family() {
        let r = Registry::new();
        r.counter_with("hits", &[("route", "/a")]).inc();
        r.counter_with("hits", &[("route", "/b")]).add(2);
        assert_eq!(r.counter_with("hits", &[("route", "/a")]).get(), 1);
        assert_eq!(r.counter_with("hits", &[("route", "/b")]).get(), 2);
        let text = r.snapshot().to_prometheus_text();
        assert_eq!(
            text.matches("# TYPE hits counter").count(),
            1,
            "one TYPE header per family"
        );
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("x");
        let _ = r.gauge("x");
    }

    #[test]
    fn prometheus_text_has_cumulative_buckets() {
        let r = Registry::new();
        r.counter("hits").add(3);
        r.gauge("depth").set(-2);
        let h = r.histogram("lat", &[10, 100]);
        h.observe(5);
        h.observe(50);
        h.observe(5_000);
        let text = r.snapshot().to_prometheus_text();
        assert!(text.contains("# TYPE hits counter\nhits 3"));
        assert!(text.contains("# TYPE depth gauge\ndepth -2"));
        assert!(text.contains("lat_bucket{le=\"10\"} 1"));
        assert!(text.contains("lat_bucket{le=\"100\"} 2"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("lat_sum 5055"));
        assert!(text.contains("lat_count 3"));
    }

    #[test]
    fn label_value_escaping_is_pinned_byte_exact() {
        let r = Registry::new();
        r.counter_with("odd", &[("path", "a\\b\"c\nd")]).add(7);
        r.gauge_with("level", &[("zone", "eu-west"), ("tier", "\"hot\"")])
            .set(3);
        let h = r.histogram_with("lat", &[("op", "score\\")], &[10]);
        h.observe(4);
        h.observe_with_exemplar(99, 0xabc);
        assert_eq!(
            r.snapshot().to_prometheus_text(),
            "# TYPE lat histogram\n\
             lat_bucket{op=\"score\\\\\",le=\"10\"} 1\n\
             lat_bucket{op=\"score\\\\\",le=\"+Inf\"} 2 # {trace_id=\"0000000000000abc\"} 99\n\
             lat_sum{op=\"score\\\\\"} 103\n\
             lat_count{op=\"score\\\\\"} 2\n\
             # TYPE level gauge\n\
             level{zone=\"eu-west\",tier=\"\\\"hot\\\"\"} 3\n\
             # TYPE odd counter\n\
             odd{path=\"a\\\\b\\\"c\\nd\"} 7\n"
        );
    }

    #[test]
    fn jsonl_is_one_parsable_object_per_line() {
        let r = Registry::new();
        r.counter("a").inc();
        r.gauge("b").set(4);
        r.histogram("c", &[1]).observe(2);
        let jsonl = r.snapshot().to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in lines {
            let parsed: MetricSnapshot = serde_json::from_str(line).expect("each line parses back");
            assert!(!parsed.name.is_empty());
        }
    }

    #[test]
    fn stamped_jsonl_is_byte_deterministic_under_a_manual_clock() {
        let r = Registry::new();
        r.counter("a").inc();
        let clock = ManualClock::at(1_234_567);
        let first = r.snapshot().to_jsonl_stamped(&clock);
        let second = r.snapshot().to_jsonl_stamped(&clock);
        assert_eq!(first, second);
        assert_eq!(
            first,
            "{\"ts_micros\":1234567,\"name\":\"a\",\"labels\":[],\"value\":{\"Counter\":1}}\n"
        );
    }

    #[test]
    fn sanitizes_awkward_names() {
        assert_eq!(sanitize_metric_name("serve/score.p99"), "serve_score_p99");
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
    }
}
