//! Run one built-in gauntlet scenario and print its canonical report.
//!
//! ```text
//! cargo run -p frappe-gauntlet --release --example run_scenario -- summary_filling
//! ```

use frappe_gauntlet::{builtin_scenarios, run_spec};

fn main() {
    let want = std::env::args().nth(1).unwrap_or_default();
    let spec = builtin_scenarios()
        .into_iter()
        .find(|s| s.name == want)
        .unwrap_or_else(|| {
            let names: Vec<String> = builtin_scenarios().into_iter().map(|s| s.name).collect();
            eprintln!("usage: run_scenario <{}>", names.join("|"));
            std::process::exit(2);
        });
    let report = run_spec(&spec);
    for r in &report.rounds {
        eprintln!(
            "round {:>2}: live {:>3} flagged {:>3} det {:.3} fp {:.3} psi {:.3} drifted[{}] retrain={} shadow={} promoted={:?}",
            r.round,
            r.attacker_live,
            r.attacker_flagged,
            r.detection_rate,
            r.fp_rate,
            r.max_psi,
            r.drifted_lanes.join(","),
            r.retrained,
            r.shadow_riding,
            r.promoted_version,
        );
        for hold in &r.gate_holds {
            eprintln!("          gate held: {hold}");
        }
    }
    eprintln!(
        "first_drift={:?} promoted_round={:?} edges={} passed={} {:?}",
        report.first_drift_round,
        report.promoted_round,
        report.appnet_edges.len(),
        report.outcome.passed,
        report.outcome.failures
    );
    println!("{}", report.to_canonical_json());
}
