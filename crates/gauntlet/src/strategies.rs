//! The five built-in adaptive attackers.
//!
//! Each strategy escalates on one public signal only — the fraction of
//! its live apps flagged last round — mirroring how real operators
//! probe a deployed detector: ship, watch enforcement, adapt, reship.
//! All randomness is a private `SmallRng` seeded from the spec, and app
//! ids come from an engine-assigned range, so a strategy's move
//! sequence is a pure function of `(spec, feedback history)`.

use osn_types::ids::AppId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use synth_workload::names::POPULAR_BENIGN_NAMES;
use synth_workload::EvasionKnobs;

use crate::spec::Attack;
use crate::strategy::{AppAction, AppSpec, Feedback, RoundPlan, Strategy};
use crate::traffic::splitmix64;

/// Escalation trigger: keep adapting while enforcement still bites —
/// any round where more than a tenth of the live cohort got flagged.
const ESCALATE_ABOVE: f64 = 0.1;

/// Linear interpolation between the paper's baseline rate and an
/// evasion ceiling, driven by the strategy's escalation level.
fn lerp(base: f64, ceiling: f64, level: f64) -> f64 {
    base + (ceiling - base) * level.clamp(0.0, 1.0)
}

/// Sequential app-id allocator over the engine-assigned attacker range.
struct IdAlloc {
    next: u64,
}

impl IdAlloc {
    fn next(&mut self) -> AppId {
        let app = AppId(self.next);
        self.next += 1;
        app
    }
}

/// Builds the live [`Strategy`] for a spec's attack phase, with its RNG
/// derived from the scenario seed and app ids allocated from
/// `first_app_id` upward.
pub fn strategy_for(attack: &Attack, seed: u64, first_app_id: u64) -> Box<dyn Strategy> {
    let rng = SmallRng::seed_from_u64(splitmix64(seed ^ 0x574A_7E61));
    let ids = IdAlloc { next: first_app_id };
    match *attack {
        Attack::SummaryFilling {
            cohort,
            wave,
            step,
            knobs,
        } => Box::new(SummaryFilling {
            rng,
            ids,
            cohort,
            wave,
            step,
            knobs,
            level: 0.0,
            live: Vec::new(),
        }),
        Attack::NameMimicry {
            cohort,
            start_distance,
        } => Box::new(NameMimicry {
            rng,
            ids,
            cohort,
            distance: start_distance,
            live: Vec::new(),
        }),
        Attack::PiggybackRing {
            promoters,
            promotees,
            fanout,
        } => Box::new(PiggybackRing {
            rng,
            ids,
            promoters: promoters as usize,
            promotees: promotees as usize,
            fanout,
            fronts: Vec::new(),
            scams: Vec::new(),
            spawned: 0,
        }),
        Attack::FakeLikeInflation {
            cohort,
            scam_posts,
            filler_step,
            max_filler,
        } => Box::new(FakeLikeInflation {
            ids,
            cohort,
            scam_posts,
            filler_step,
            max_filler,
            filler: 0,
            live: Vec::new(),
        }),
        Attack::InstallChurn { wave } => Box::new(InstallChurn {
            rng,
            ids,
            wave,
            previous_wave: Vec::new(),
            waves_spawned: 0,
        }),
    }
}

// ---------------------------------------------------------------------------
// 1. Summary filling (§7) — the full-loop scenario
// ---------------------------------------------------------------------------

/// Starts at paper-rate empty summaries; every flagged round it raises
/// its fill level one `step` toward the [`EvasionKnobs`] ceilings,
/// re-crawling every live app and shipping a fresh wave at the new
/// rates. Escalation also cleans up the operation's infrastructure —
/// dedicated client IDs instead of pooled ones, a rated redirect domain
/// instead of a throwaway — because §7's forecast is that hackers fake
/// *whatever* the classifier keys on. What it cannot fake is its
/// business: the scam posts (external links, one-permission installs)
/// keep flowing, which is exactly what a retrained model re-learns.
struct SummaryFilling {
    rng: SmallRng,
    ids: IdAlloc,
    cohort: u32,
    wave: u32,
    step: f64,
    knobs: EvasionKnobs,
    level: f64,
    live: Vec<AppId>,
}

impl SummaryFilling {
    fn spec_at_level(&mut self, app: AppId) -> AppSpec {
        let k = &self.knobs;
        let level = self.level;
        AppSpec {
            name: format!("Spin The Wheel {}", app.0),
            fill_description: self
                .rng
                .gen_bool(lerp(0.014, k.description_fill_rate, level)),
            fill_company: self.rng.gen_bool(lerp(0.04, k.company_fill_rate, level)),
            fill_category: self.rng.gen_bool(lerp(0.06, k.category_fill_rate, level)),
            fill_profile_feed: self
                .rng
                .gen_bool(lerp(0.03, k.profile_feed_fill_rate, level)),
            permission_count: 1,
            client_id_mismatch: self.rng.gen_bool(lerp(0.78, 0.10, level)),
            wot_score: self
                .rng
                .gen_bool(0.7 * level)
                .then(|| f64::from(self.rng.gen_range(60..90u32))),
            crawled: true,
        }
    }
}

impl Strategy for SummaryFilling {
    fn name(&self) -> &'static str {
        "summary_filling"
    }

    fn plan_round(&mut self, feedback: &Feedback) -> RoundPlan {
        let mut plan = RoundPlan::default();
        if feedback.round == 1 {
            for _ in 0..self.cohort {
                let app = self.ids.next();
                let spec = self.spec_at_level(app);
                self.live.push(app);
                plan.actions.push(AppAction::Register { app, spec });
            }
        } else {
            if feedback.flagged_fraction() > ESCALATE_ABOVE {
                self.level = (self.level + self.step).min(1.0);
            }
            // Edit every live app's profile up to the current level, and
            // ship a fresh wave at it.
            for app in self.live.clone() {
                let spec = self.spec_at_level(app);
                plan.actions.push(AppAction::Recrawl { app, spec });
            }
            for _ in 0..self.wave {
                let app = self.ids.next();
                let spec = self.spec_at_level(app);
                self.live.push(app);
                plan.actions.push(AppAction::Register { app, spec });
            }
        }
        for &app in &self.live {
            plan.actions.push(AppAction::PostBurst {
                app,
                scam_posts: 2,
                filler_posts: 0,
            });
        }
        plan
    }
}

// ---------------------------------------------------------------------------
// 2. Name mimicry (§4.2.1)
// ---------------------------------------------------------------------------

/// Names its scam apps within edit distance `distance` of the paper's
/// popular benign apps; when mostly flagged, abandons the flagged apps
/// and re-registers *closer* to the targets, down to exact copies —
/// probing whether the defender's name-collision list starts burning
/// the legitimate originals.
struct NameMimicry {
    rng: SmallRng,
    ids: IdAlloc,
    cohort: u32,
    distance: usize,
    live: Vec<AppId>,
}

impl NameMimicry {
    fn mimic_name(&mut self, target_index: usize) -> String {
        let target = POPULAR_BENIGN_NAMES[target_index % POPULAR_BENIGN_NAMES.len()];
        let mut chars: Vec<char> = target.chars().collect();
        for _ in 0..self.distance {
            if chars.len() > 4 && self.rng.gen_bool(0.5) {
                let i = self.rng.gen_range(1..chars.len());
                chars.remove(i); // 'FarmVile'-style deletion
            } else {
                let i = self.rng.gen_range(0..chars.len());
                chars[i] = char::from(b'a' + self.rng.gen_range(0..26u8));
            }
        }
        chars.into_iter().collect()
    }

    fn register(&mut self, target_index: usize, plan: &mut RoundPlan) {
        let app = self.ids.next();
        let name = self.mimic_name(target_index);
        self.live.push(app);
        plan.actions.push(AppAction::Register {
            app,
            spec: AppSpec::paper_scam(name),
        });
    }
}

impl Strategy for NameMimicry {
    fn name(&self) -> &'static str {
        "name_mimicry"
    }

    fn plan_round(&mut self, feedback: &Feedback) -> RoundPlan {
        let mut plan = RoundPlan::default();
        if feedback.round == 1 {
            for i in 0..self.cohort {
                self.register(i as usize, &mut plan);
            }
        } else {
            if feedback.flagged_fraction() > ESCALATE_ABOVE && self.distance > 0 {
                self.distance -= 1;
            }
            // Abandon what got burned, replace it nearer the targets.
            for (i, app) in feedback.flagged_apps().into_iter().enumerate() {
                self.live.retain(|&a| a != app);
                plan.actions.push(AppAction::Retire { app });
                self.register(i, &mut plan);
            }
        }
        for &app in &self.live {
            plan.actions.push(AppAction::PostBurst {
                app,
                scam_posts: 2,
                filler_posts: 0,
            });
        }
        plan
    }
}

// ---------------------------------------------------------------------------
// 3. Piggyback / collusion ring (Figs. 13–16)
// ---------------------------------------------------------------------------

/// Clean-looking front apps promote scam promotees via canvas links
/// (the AppNet edges); any member that gets flagged is rotated out and
/// replaced, keeping the ring alive behind fresh identities.
struct PiggybackRing {
    rng: SmallRng,
    ids: IdAlloc,
    promoters: usize,
    promotees: usize,
    fanout: u32,
    fronts: Vec<AppId>,
    scams: Vec<AppId>,
    spawned: u64,
}

impl PiggybackRing {
    fn spawn_front(&mut self, plan: &mut RoundPlan) {
        let app = self.ids.next();
        self.spawned += 1;
        self.fronts.push(app);
        plan.actions.push(AppAction::Register {
            app,
            spec: AppSpec::clean_front(format!("Daily Horoscope Digest {}", self.spawned)),
        });
    }

    fn spawn_scam(&mut self, plan: &mut RoundPlan) {
        let app = self.ids.next();
        self.spawned += 1;
        self.scams.push(app);
        plan.actions.push(AppAction::Register {
            app,
            spec: AppSpec::paper_scam(format!("Secret Admirers Revealed {}", self.spawned)),
        });
    }
}

impl Strategy for PiggybackRing {
    fn name(&self) -> &'static str {
        "piggyback_ring"
    }

    fn plan_round(&mut self, feedback: &Feedback) -> RoundPlan {
        let mut plan = RoundPlan::default();
        if feedback.round == 1 {
            for _ in 0..self.promoters {
                self.spawn_front(&mut plan);
            }
            for _ in 0..self.promotees {
                self.spawn_scam(&mut plan);
            }
        } else {
            // Rotate every flagged member out, preserving the ring shape.
            for app in feedback.flagged_apps() {
                plan.actions.push(AppAction::Retire { app });
                if self.fronts.contains(&app) {
                    self.fronts.retain(|&a| a != app);
                    self.spawn_front(&mut plan);
                } else {
                    self.scams.retain(|&a| a != app);
                    self.spawn_scam(&mut plan);
                }
            }
        }
        // Promotion edges: each front pushes `fanout` distinct promotees.
        for fi in 0..self.fronts.len() {
            let promoter = self.fronts[fi];
            for k in 0..self.fanout as usize {
                let pick =
                    (fi * self.fanout as usize + k + self.rng.gen_range(0..self.scams.len()))
                        % self.scams.len();
                plan.actions.push(AppAction::PromotePeer {
                    promoter,
                    target: self.scams[pick],
                });
            }
        }
        for &app in &self.scams {
            plan.actions.push(AppAction::PostBurst {
                app,
                scam_posts: 2,
                filler_posts: 0,
            });
        }
        plan
    }
}

// ---------------------------------------------------------------------------
// 4. Fake-like inflation
// ---------------------------------------------------------------------------

/// Buries its scam links in engagement-bait filler posts (no links),
/// dragging the external-link ratio toward benign; escalates the filler
/// volume whenever most of the cohort is flagged.
struct FakeLikeInflation {
    ids: IdAlloc,
    cohort: u32,
    scam_posts: u32,
    filler_step: u32,
    max_filler: u32,
    filler: u32,
    live: Vec<AppId>,
}

impl Strategy for FakeLikeInflation {
    fn name(&self) -> &'static str {
        "fake_like_inflation"
    }

    fn plan_round(&mut self, feedback: &Feedback) -> RoundPlan {
        let mut plan = RoundPlan::default();
        if feedback.round == 1 {
            for _ in 0..self.cohort {
                let app = self.ids.next();
                self.live.push(app);
                plan.actions.push(AppAction::Register {
                    app,
                    spec: AppSpec::paper_scam(format!("Lucky Like Magnet {}", app.0)),
                });
            }
        } else if feedback.flagged_fraction() > ESCALATE_ABOVE {
            self.filler = (self.filler + self.filler_step).min(self.max_filler);
        }
        for &app in &self.live {
            plan.actions.push(AppAction::PostBurst {
                app,
                scam_posts: self.scam_posts,
                filler_posts: self.filler,
            });
        }
        plan
    }
}

// ---------------------------------------------------------------------------
// 5. Install/uninstall churn (installer farms)
// ---------------------------------------------------------------------------

/// Installer-farm waves: every round the previous wave is deleted
/// wholesale and a fresh one registered, gone again before any crawl
/// can observe it — the on-demand lanes of every churn app stay
/// missing, and only registration names and install-bait posts ever
/// reach the defender.
struct InstallChurn {
    rng: SmallRng,
    ids: IdAlloc,
    wave: u32,
    previous_wave: Vec<AppId>,
    waves_spawned: u64,
}

impl Strategy for InstallChurn {
    fn name(&self) -> &'static str {
        "install_churn"
    }

    fn plan_round(&mut self, _feedback: &Feedback) -> RoundPlan {
        let mut plan = RoundPlan::default();
        for app in self.previous_wave.drain(..) {
            plan.actions.push(AppAction::Retire { app });
        }
        self.waves_spawned += 1;
        for _ in 0..self.wave {
            let app = self.ids.next();
            // A handful of recycled farm names: once the defender
            // verifies one wave, later waves collide on the name list.
            let name = format!("Install Bonus Booster {}", self.rng.gen_range(0..4u32) + 1);
            self.previous_wave.push(app);
            plan.actions.push(AppAction::Register {
                app,
                spec: AppSpec {
                    crawled: false,
                    ..AppSpec::paper_scam(name)
                },
            });
            plan.actions.push(AppAction::PostBurst {
                app,
                scam_posts: 2,
                filler_posts: 0,
            });
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn feedback(round: u32, apps: &[(u64, bool)]) -> Feedback {
        Feedback {
            round,
            flagged: apps.iter().map(|&(a, f)| (AppId(a), f)).collect(),
        }
    }

    #[test]
    fn strategies_are_deterministic() {
        let attack = Attack::SummaryFilling {
            cohort: 8,
            wave: 4,
            step: 0.5,
            knobs: EvasionKnobs::paper_forecast(),
        };
        let run = || {
            let mut s = strategy_for(&attack, 99, 5000);
            let mut plans = Vec::new();
            plans.push(s.plan_round(&feedback(1, &[])));
            plans.push(s.plan_round(&feedback(2, &[(5000, true), (5001, true), (5002, false)])));
            plans.push(s.plan_round(&feedback(3, &[(5000, true), (5001, false)])));
            plans
        };
        let a: Vec<Vec<AppAction>> = run().into_iter().map(|p| p.actions).collect();
        let b: Vec<Vec<AppAction>> = run().into_iter().map(|p| p.actions).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn summary_filling_escalates_only_when_flagged() {
        let attack = Attack::SummaryFilling {
            cohort: 4,
            wave: 0,
            step: 1.0,
            knobs: EvasionKnobs::paper_forecast(),
        };
        let mut s = strategy_for(&attack, 3, 9000);
        s.plan_round(&feedback(1, &[]));
        // Nothing flagged: a quiet attacker does not change its rates —
        // the recrawl specs stay at paper-level fill.
        let quiet = s.plan_round(&feedback(2, &[(9000, false), (9001, false)]));
        let filled = |plan: &RoundPlan| {
            plan.actions
                .iter()
                .filter(|a| {
                    matches!(a, AppAction::Recrawl { spec, .. } | AppAction::Register { spec, .. }
                        if spec.fill_description && spec.fill_company && spec.fill_category)
                })
                .count()
        };
        assert_eq!(filled(&quiet), 0);
        // Fully flagged: level jumps to the ceiling and most recrawls fill in.
        let burned = s.plan_round(&feedback(3, &[(9000, true), (9001, true)]));
        assert!(filled(&burned) >= 1, "escalated plan must fill summaries");
    }

    #[test]
    fn mimicry_closes_the_distance_to_exact_copies() {
        let attack = Attack::NameMimicry {
            cohort: 6,
            start_distance: 2,
        };
        let mut s = strategy_for(&attack, 11, 7000);
        let first = s.plan_round(&feedback(1, &[]));
        let names = |plan: &RoundPlan| -> Vec<String> {
            plan.actions
                .iter()
                .filter_map(|a| match a {
                    AppAction::Register { spec, .. } => Some(spec.name.clone()),
                    _ => None,
                })
                .collect()
        };
        for name in names(&first) {
            assert!(
                !POPULAR_BENIGN_NAMES.contains(&name.as_str()),
                "distance 2 should not be an exact copy: {name}"
            );
        }
        // Two full-flag rounds → distance 0 → replacements are exact copies.
        let all: BTreeMap<u64, bool> = (7000..7006).map(|a| (a, true)).collect();
        let fb = |round| {
            feedback(
                round,
                &all.iter().map(|(&a, &f)| (a, f)).collect::<Vec<_>>(),
            )
        };
        s.plan_round(&fb(2));
        let exact = s.plan_round(&fb(3));
        assert!(
            names(&exact)
                .iter()
                .all(|n| POPULAR_BENIGN_NAMES.contains(&n.as_str())),
            "distance 0 must be exact copies, got {:?}",
            names(&exact)
        );
    }

    #[test]
    fn churn_retires_every_previous_wave() {
        let mut s = strategy_for(&Attack::InstallChurn { wave: 5 }, 1, 4000);
        let first = s.plan_round(&feedback(1, &[]));
        assert!(!first
            .actions
            .iter()
            .any(|a| matches!(a, AppAction::Retire { .. })));
        let second = s.plan_round(&feedback(2, &[]));
        let retired: Vec<AppId> = second
            .actions
            .iter()
            .filter_map(|a| match a {
                AppAction::Retire { app } => Some(*app),
                _ => None,
            })
            .collect();
        assert_eq!(retired, (4000..4005).map(AppId).collect::<Vec<_>>());
    }
}
