//! Deterministic traffic expansion: plans and populations → events.
//!
//! Everything here is a pure function of `(seed, round, index)`, fanned
//! out over the ordered [`frappe_jobs::JobPool`] — `pool.run` returns
//! exactly `(0..n).map(f).collect()` whatever the thread count, so the
//! event stream a round ingests is byte-identical at `FRAPPE_JOBS=1`
//! and `=8`. That property is what lets a whole gauntlet run promise a
//! byte-identical [`crate::ScenarioReport`].

use frappe::OnDemandFeatures;
use frappe_jobs::JobPool;
use frappe_serve::ServeEvent;
use osn_types::ids::AppId;
use osn_types::url::Url;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::strategy::{AppAction, AppSpec};

/// SplitMix64 — the standard seed-derivation step, so per-item RNGs are
/// decorrelated without any shared state.
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the RNG for item `index` of stream `stream` in round `round`.
fn item_rng(seed: u64, stream: u64, round: u32, index: usize) -> SmallRng {
    let z = splitmix64(seed ^ stream.rotate_left(17) ^ ((round as u64) << 32) ^ index as u64);
    SmallRng::seed_from_u64(z)
}

/// An external scam link (never on facebook.com; counts toward the
/// external-link ratio).
fn scam_link(rng: &mut SmallRng) -> Url {
    let host = rng.gen_range(0..5u32);
    Url::parse(&format!("http://prize{host}.gift-mania.net/claim")).expect("static scam url")
}

/// An internal canvas link to `target`'s page (never external) — the
/// AppNet promotion edge as the platform sees it.
fn canvas_link(target: AppId) -> Url {
    Url::parse(&format!("http://apps.facebook.com/app{}", target.0)).expect("static canvas url")
}

/// The on-demand feature lanes a crawl of `spec` yields.
fn crawl_features(spec: &AppSpec) -> OnDemandFeatures {
    OnDemandFeatures {
        has_category: Some(spec.fill_category),
        has_company: Some(spec.fill_company),
        has_description: Some(spec.fill_description),
        has_profile_posts: Some(spec.fill_profile_feed),
        permission_count: Some(spec.permission_count),
        client_id_mismatch: Some(spec.client_id_mismatch),
        redirect_wot_score: spec.wot_score,
    }
}

/// Expands one attacker action into its serving events. Pure in
/// `(seed, round, index, action)`.
fn expand_action(seed: u64, round: u32, index: usize, action: &AppAction) -> Vec<ServeEvent> {
    let mut rng = item_rng(seed, 0xA77A_C4E5, round, index);
    match action {
        AppAction::Register { app, spec } => {
            let mut events = vec![ServeEvent::Registered {
                app: *app,
                name: spec.name.clone(),
            }];
            if spec.crawled {
                events.push(ServeEvent::OnDemand {
                    app: *app,
                    features: crawl_features(spec),
                });
            }
            events
        }
        AppAction::Recrawl { app, spec } => vec![ServeEvent::OnDemand {
            app: *app,
            features: crawl_features(spec),
        }],
        AppAction::PostBurst {
            app,
            scam_posts,
            filler_posts,
        } => {
            let mut events = Vec::with_capacity((scam_posts + filler_posts) as usize);
            for _ in 0..*scam_posts {
                events.push(ServeEvent::Post {
                    app: *app,
                    link: Some(scam_link(&mut rng)),
                });
            }
            for _ in 0..*filler_posts {
                events.push(ServeEvent::Post {
                    app: *app,
                    link: None,
                });
            }
            events
        }
        AppAction::PromotePeer { promoter, target } => vec![ServeEvent::Post {
            app: *promoter,
            link: Some(canvas_link(*target)),
        }],
        AppAction::Retire { app } => vec![ServeEvent::Deleted { app: *app }],
    }
}

/// Expands a whole round plan over the pool, in plan order.
pub fn expand_actions(
    pool: &JobPool,
    seed: u64,
    round: u32,
    actions: &[AppAction],
) -> Vec<ServeEvent> {
    pool.run(actions.len(), |i| {
        expand_action(seed, round, i, &actions[i])
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Paper-rate benign app profile for bootstrap app `i` (ids are
/// `1..=benign_apps`), plus its bootstrap posts. Rates are the
/// `ScenarioConfig` paper rates: 93% description, 81% company, 90%
/// category, 85% profile feed, 62% single-permission, mostly honest
/// client IDs and rated redirect domains.
fn benign_bootstrap(seed: u64, i: usize) -> Vec<ServeEvent> {
    let mut rng = item_rng(seed, 0xBE91_69AE, 0, i);
    let app = AppId(1 + i as u64);
    let features = OnDemandFeatures {
        has_description: Some(rng.gen_bool(0.93)),
        has_company: Some(rng.gen_bool(0.81)),
        has_category: Some(rng.gen_bool(0.90)),
        has_profile_posts: Some(rng.gen_bool(0.85)),
        permission_count: Some(if rng.gen_bool(0.62) {
            1
        } else {
            rng.gen_range(2..7)
        }),
        client_id_mismatch: Some(rng.gen_bool(0.02)),
        redirect_wot_score: rng
            .gen_bool(0.70)
            .then(|| f64::from(rng.gen_range(60..95u32))),
    };
    let mut events = vec![
        ServeEvent::Registered {
            app,
            name: synth_workload::names::benign_name(i),
        },
        ServeEvent::OnDemand { app, features },
    ];
    // 20% of benign apps ever post external links (paper: "80% of
    // benign apps do not post any external links"), and even linkers
    // mix them into a larger stream — a benign external-link *ratio*
    // stays low, where a scam app's approaches 1.
    let linker = rng.gen_bool(0.20);
    for _ in 0..rng.gen_range(2..6u32) {
        let external = linker && rng.gen_bool(0.25);
        events.push(ServeEvent::Post {
            app,
            link: external.then(|| scam_link(&mut rng)).or_else(|| {
                rng.gen_bool(0.5).then(|| canvas_link(app)) // internal share
            }),
        });
    }
    events
}

/// Fraction of training-malicious apps that reuse a name from the
/// known-malicious campaign pool. Deliberately small: if every training
/// scam app collided, the name-collision lane would be perfectly
/// correlated with the label and the SVM would learn nothing else —
/// and any fresh-named attacker would walk straight through.
const TRAINING_NAME_REUSE: f64 = 0.15;

/// Paper-rate malicious training app `i` (ids follow the benign range):
/// the §4 scam profile the incumbent model learns. A
/// [`TRAINING_NAME_REUSE`] fraction reuse campaign-pool names (and so
/// collide with the known-malicious list); the rest run under fresh
/// one-off names.
fn training_malicious_bootstrap(seed: u64, benign_apps: usize, i: usize) -> Vec<ServeEvent> {
    let mut rng = item_rng(seed, 0x3A11_C10D, 0, i);
    let app = AppId(1 + (benign_apps + i) as u64);
    let features = OnDemandFeatures {
        has_description: Some(rng.gen_bool(0.014)),
        has_company: Some(rng.gen_bool(0.04)),
        has_category: Some(rng.gen_bool(0.06)),
        has_profile_posts: Some(rng.gen_bool(0.03)),
        permission_count: Some(if rng.gen_bool(0.97) { 1 } else { 2 }),
        client_id_mismatch: Some(rng.gen_bool(0.78)),
        redirect_wot_score: rng
            .gen_bool(0.20)
            .then(|| f64::from(rng.gen_range(0..6u32))),
    };
    let name = if rng.gen_bool(TRAINING_NAME_REUSE) {
        synth_workload::names::malicious_base_name(i).to_string()
    } else {
        format!("Gift Card Blast {}", 1 + i)
    };
    let mut events = vec![
        ServeEvent::Registered { app, name },
        ServeEvent::OnDemand { app, features },
    ];
    for _ in 0..rng.gen_range(2..5u32) {
        let external = rng.gen_bool(0.90);
        events.push(ServeEvent::Post {
            app,
            link: external.then(|| scam_link(&mut rng)),
        });
    }
    events
}

/// The known-malicious name list the defender starts with: the paper's
/// campaign base-name pool (deduplicated by the caller's
/// `KnownMaliciousNames::from_names`). Only a `TRAINING_NAME_REUSE`
/// fraction of the training population actually collides with it.
pub fn known_name_pool(training_malicious: usize) -> impl Iterator<Item = String> {
    (0..training_malicious).map(|i| synth_workload::names::malicious_base_name(i).to_string())
}

/// The full bootstrap event stream: `benign_apps` benign apps followed
/// by `training_malicious` paper-rate scam apps, fanned out over the
/// pool.
pub fn bootstrap_events(
    pool: &JobPool,
    seed: u64,
    benign_apps: usize,
    training_malicious: usize,
) -> Vec<ServeEvent> {
    pool.run(benign_apps + training_malicious, |i| {
        if i < benign_apps {
            benign_bootstrap(seed, i)
        } else {
            training_malicious_bootstrap(seed, benign_apps, i - benign_apps)
        }
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Benign background chatter for one round: a seeded ~10% slice of the
/// benign population posts a little (mostly link-free or internal), so
/// the defender's window always carries live benign mass too.
pub fn benign_background(
    pool: &JobPool,
    seed: u64,
    round: u32,
    benign_apps: usize,
) -> Vec<ServeEvent> {
    pool.run(benign_apps, |i| {
        let mut rng = item_rng(seed, 0xB4C6_6D00, round, i);
        if !rng.gen_bool(0.10) {
            return Vec::new();
        }
        let app = AppId(1 + i as u64);
        (0..rng.gen_range(1..3u32))
            .map(|_| ServeEvent::Post {
                app,
                link: rng.gen_bool(0.05).then(|| canvas_link(app)),
            })
            .collect()
    })
    .into_iter()
    .flatten()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_is_pool_size_invariant() {
        let actions: Vec<AppAction> = (0..40)
            .map(|i| AppAction::PostBurst {
                app: AppId(1000 + i),
                scam_posts: 2,
                filler_posts: 1,
            })
            .collect();
        let a = expand_actions(&JobPool::with_threads(1), 7, 3, &actions);
        let b = expand_actions(&JobPool::with_threads(8), 7, 3, &actions);
        assert_eq!(a, b);
        assert_eq!(a.len(), 40 * 3);
    }

    #[test]
    fn bootstrap_is_pool_size_invariant_and_covers_all_apps() {
        let a = bootstrap_events(&JobPool::with_threads(1), 9, 50, 20);
        let b = bootstrap_events(&JobPool::with_threads(4), 9, 50, 20);
        assert_eq!(a, b);
        let registered: std::collections::BTreeSet<u64> = a
            .iter()
            .filter_map(|e| match e {
                ServeEvent::Registered { app, .. } => Some(app.0),
                _ => None,
            })
            .collect();
        assert_eq!(registered.len(), 70);
        assert_eq!(registered.iter().next(), Some(&1));
        assert_eq!(registered.iter().last(), Some(&70));
    }

    #[test]
    fn canvas_links_are_internal_scam_links_are_not() {
        assert!(canvas_link(AppId(5)).is_facebook());
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!scam_link(&mut rng).is_facebook());
    }
}
