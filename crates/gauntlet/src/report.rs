//! Structured run output and the then-clause judge.
//!
//! A [`ScenarioReport`] is the complete, serializable record of one
//! gauntlet run: the spec it executed, one [`RoundRecord`] per round,
//! the cross-round landmarks (first drift round, promotion round, the
//! AppNet promotion edges), and the [`Outcome`] of evaluating the
//! spec's then-clause. Nothing in it depends on wall-clock time or
//! thread count, so [`ScenarioReport::to_canonical_json`] is
//! byte-identical for the same spec at any `FRAPPE_JOBS` setting — the
//! determinism contract `tests/gauntlet.rs` pins.

use serde::{Deserialize, Serialize};

use crate::spec::ScenarioSpec;

/// What the defender and attacker did in one round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundRecord {
    /// Round number (1-based).
    pub round: u32,
    /// Attacker apps live during this round's sweep.
    pub attacker_live: usize,
    /// Of those, how many the served model flagged.
    pub attacker_flagged: usize,
    /// `attacker_flagged / attacker_live` (1.0 when nothing was live).
    pub detection_rate: f64,
    /// Benign apps scored this round (the FP denominator).
    pub benign_scored: usize,
    /// Benign apps wrongly flagged.
    pub false_positives: usize,
    /// `false_positives / benign_scored`.
    pub fp_rate: f64,
    /// `1 − detection_rate` over live attacker apps.
    pub fn_rate: f64,
    /// Worst per-lane PSI of this round's window against the serving
    /// model's training baseline.
    pub max_psi: f64,
    /// Catalog keys of the lanes over threshold this round.
    pub drifted_lanes: Vec<String>,
    /// Whether the drift alarm fired this round.
    pub drift_fired: bool,
    /// Whether the defender retrained (and began shadowing) this round.
    pub retrained: bool,
    /// Whether a candidate shadow was riding at end of round.
    pub shadow_riding: bool,
    /// Why the promotion gate held this round (empty when it promoted
    /// or no shadow was riding).
    pub gate_holds: Vec<String>,
    /// Version promoted this round, if the gate passed.
    pub promoted_version: Option<u64>,
    /// Serving events ingested this round (attacker + benign chatter).
    pub events_ingested: usize,
    /// Attacker names newly added to the known-malicious list this
    /// round (the verified-flagging feedback channel).
    pub names_flagged: usize,
}

/// The then-clause verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Outcome {
    /// Whether every declared criterion held.
    pub passed: bool,
    /// One line per violated criterion (empty when passed).
    pub failures: Vec<String>,
}

/// The complete record of one gauntlet run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// Scenario name (from the spec).
    pub scenario: String,
    /// Master seed the run used.
    pub seed: u64,
    /// The spec that was executed, echoed verbatim.
    pub spec: ScenarioSpec,
    /// One record per round, in order.
    pub rounds: Vec<RoundRecord>,
    /// First round the drift alarm fired, if ever.
    pub first_drift_round: Option<u32>,
    /// Round a candidate was promoted, if ever.
    pub promoted_round: Option<u32>,
    /// Every AppNet promotion edge `(promoter, target)` the attacker
    /// created, in creation order.
    pub appnet_edges: Vec<(u64, u64)>,
    /// The then-clause verdict.
    pub outcome: Outcome,
}

impl ScenarioReport {
    /// Canonical JSON: pretty-printed with serde's stable field order.
    /// Byte-identical for byte-identical runs — the artifact the
    /// determinism tests compare.
    pub fn to_canonical_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report is serializable")
    }

    /// Peak `max_psi` across all rounds.
    pub fn peak_psi(&self) -> f64 {
        self.rounds.iter().map(|r| r.max_psi).fold(0.0, f64::max)
    }

    /// Evaluates `spec.then` against the recorded rounds, producing the
    /// pass/fail [`Outcome`]. Called by the engine after the last
    /// round; exposed so external tooling can re-judge a saved report.
    pub fn judge(&self, spec: &ScenarioSpec) -> Outcome {
        let mut failures = Vec::new();
        let then = &spec.then;
        if let Some(within) = then.drift_within_rounds {
            match self.first_drift_round {
                Some(r) if r <= within => {}
                got => failures.push(format!(
                    "drift must fire within {within} rounds, first fired: {got:?}"
                )),
            }
        }
        if let Some(margin) = then.min_drift_margin {
            let need = margin * spec.given.psi_threshold;
            let peak = self.peak_psi();
            if peak < need {
                failures.push(format!(
                    "peak PSI {peak:.3} below {margin}x threshold ({need:.3})"
                ));
            }
        }
        if then.require_promotion && self.promoted_round.is_none() {
            failures.push("no candidate was promoted".to_string());
        }
        if let Some(last) = self.rounds.last() {
            if let Some(max_fp) = then.max_final_fp_rate {
                if last.fp_rate > max_fp {
                    failures.push(format!(
                        "final FP rate {:.4} over bound {max_fp}",
                        last.fp_rate
                    ));
                }
            }
            if let Some(min_det) = then.min_final_detection {
                if last.detection_rate < min_det {
                    failures.push(format!(
                        "final detection {:.4} under bound {min_det}",
                        last.detection_rate
                    ));
                }
            }
            if let Some(max_fn) = then.max_final_fn_rate {
                if last.fn_rate > max_fn {
                    failures.push(format!(
                        "final FN rate {:.4} over bound {max_fn}",
                        last.fn_rate
                    ));
                }
            }
        } else {
            failures.push("no rounds were recorded".to_string());
        }
        Outcome {
            passed: failures.is_empty(),
            failures,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Attack, Given, ScenarioSpec, Then, When};

    fn round(round: u32, detection: f64, fp: f64, psi: f64, drifted: bool) -> RoundRecord {
        RoundRecord {
            round,
            attacker_live: 20,
            attacker_flagged: (detection * 20.0) as usize,
            detection_rate: detection,
            benign_scored: 100,
            false_positives: (fp * 100.0) as usize,
            fp_rate: fp,
            fn_rate: 1.0 - detection,
            max_psi: psi,
            drifted_lanes: if drifted {
                vec!["description".into()]
            } else {
                Vec::new()
            },
            drift_fired: drifted,
            retrained: false,
            shadow_riding: false,
            gate_holds: Vec::new(),
            promoted_version: None,
            events_ingested: 0,
            names_flagged: 0,
        }
    }

    fn report(spec: &ScenarioSpec) -> ScenarioReport {
        ScenarioReport {
            scenario: spec.name.clone(),
            seed: spec.given.seed,
            spec: spec.clone(),
            rounds: vec![
                round(1, 0.9, 0.01, 0.05, false),
                round(2, 0.4, 0.01, 0.75, true),
                round(3, 0.85, 0.02, 0.10, false),
            ],
            first_drift_round: Some(2),
            promoted_round: Some(3),
            appnet_edges: Vec::new(),
            outcome: Outcome {
                passed: true,
                failures: Vec::new(),
            },
        }
    }

    fn spec(then: Then) -> ScenarioSpec {
        ScenarioSpec {
            name: "judge-test".into(),
            given: Given::baseline(1),
            when: When {
                rounds: 3,
                attack: Attack::InstallChurn { wave: 4 },
            },
            then,
        }
    }

    #[test]
    fn judge_passes_when_all_criteria_hold() {
        let spec = spec(Then {
            drift_within_rounds: Some(2),
            min_drift_margin: Some(3.0),
            require_promotion: true,
            max_final_fp_rate: Some(0.05),
            min_final_detection: Some(0.8),
            max_final_fn_rate: Some(0.2),
        });
        let outcome = report(&spec).judge(&spec);
        assert!(outcome.passed, "failures: {:?}", outcome.failures);
    }

    #[test]
    fn judge_reports_each_violated_criterion() {
        let spec = spec(Then {
            drift_within_rounds: Some(1),
            min_drift_margin: Some(5.0),
            require_promotion: true,
            max_final_fp_rate: Some(0.001),
            min_final_detection: Some(0.99),
            max_final_fn_rate: Some(0.001),
        });
        let mut rep = report(&spec);
        rep.promoted_round = None;
        let outcome = rep.judge(&spec);
        assert!(!outcome.passed);
        assert_eq!(outcome.failures.len(), 6, "{:?}", outcome.failures);
    }

    #[test]
    fn canonical_json_round_trips() {
        let spec = spec(Then::none());
        let rep = report(&spec);
        let back: ScenarioReport = serde_json::from_str(&rep.to_canonical_json()).unwrap();
        assert_eq!(rep, back);
    }
}
