//! Declarative scenario specs: given / when / then.
//!
//! A [`ScenarioSpec`] is the cucumber-style contract a gauntlet run
//! executes: **given** a defended deployment (world sizes, drift
//! thresholds, promotion gate, defender policy), **when** an adaptive
//! attack runs for N rounds, **then** a set of declared criteria must
//! hold. Specs are plain serde structs — they round-trip through JSON
//! byte-identically, so a scenario can live in a file, a test, or a
//! bench and mean exactly the same thing. The built-in five are in
//! [`crate::scenarios`].

use frappe_lifecycle::PromotionGate;
use serde::{Deserialize, Serialize};
use synth_workload::EvasionKnobs;

/// The defended world an attack runs against, and the defender's
/// standing policy. Everything is explicit so a spec fully determines
/// the run: same spec → same bootstrap population, same incumbent
/// model, same defender reactions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Given {
    /// Master seed; every derived RNG (bootstrap population, attacker
    /// strategy, per-round traffic) is seeded from it.
    pub seed: u64,
    /// Benign apps in the bootstrap population (the FP denominator).
    pub benign_apps: usize,
    /// Paper-style malicious apps the incumbent is trained on. Their
    /// names seed the known-malicious collision list; they are retired
    /// (enforced) before round 1 and never scored again.
    pub training_malicious: usize,
    /// PSI threshold of the drift detector (0.2 = industry standard).
    pub psi_threshold: f64,
    /// Minimum drift-window samples before any lane may fire.
    pub drift_min_samples: u64,
    /// Promotion gate a retrained candidate must clear on live traffic.
    pub gate: PromotionGate,
    /// Whether the defender retrains (and begins shadowing the
    /// candidate) when drift fires. `false` models a frozen defender —
    /// useful for asserting pure detection criteria.
    pub retrain_on_drift: bool,
    /// Whether the defender grows the known-malicious name list with
    /// the names of apps it flagged *and* ground truth confirmed (the
    /// MyPageKeeper verification step). This is the feedback channel
    /// name-mimicry attackers probe.
    pub flag_verified_names: bool,
}

impl Given {
    /// Baseline defended world for the built-in scenarios: a small but
    /// statistically meaningful population, default drift thresholds,
    /// and a gate loosened only where adversarial retrains demand it —
    /// a candidate retrained *because* the incumbent went blind will
    /// legitimately disagree with it on the whole attack cohort, and
    /// trading a few points of false-positive headroom for closing a
    /// near-total false-negative hole is the right call.
    pub fn baseline(seed: u64) -> Self {
        Given {
            seed,
            benign_apps: 240,
            training_malicious: 80,
            psi_threshold: 0.2,
            drift_min_samples: 100,
            gate: PromotionGate {
                min_scored: 150,
                max_disagreement_rate: 0.40,
                max_false_positive_increase: 0.035,
                max_false_negative_increase: 0.05,
            },
            retrain_on_drift: true,
            flag_verified_names: true,
        }
    }
}

/// The attack phase: which strategy runs, with its knobs, for how many
/// rounds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct When {
    /// Number of attacker/defender rounds.
    pub rounds: u32,
    /// The adaptive strategy and its knobs.
    pub attack: Attack,
}

/// The built-in attacker strategies, each a serde-friendly knob set.
/// [`crate::strategies::strategy_for`] turns one into a live
/// [`crate::Strategy`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Attack {
    /// §7 summary filling: a scam cohort that starts at paper-style
    /// empty summaries and, when flagged, escalates its fill rates
    /// toward the [`EvasionKnobs`] ceilings (recrawling existing apps
    /// and registering fresh waves at the new rates).
    SummaryFilling {
        /// Initial cohort size (round 1).
        cohort: u32,
        /// Fresh apps registered per subsequent round.
        wave: u32,
        /// Escalation step (fraction of the ceiling) applied each time
        /// more than half the live cohort got flagged.
        step: f64,
        /// The fill-rate ceilings the strategy escalates toward — the
        /// same knobs `synth::drift::drifting_config` uses.
        knobs: EvasionKnobs,
    },
    /// §4.2.1 name mimicry: apps named within Damerau–Levenshtein
    /// distance `start_distance` of popular benign names; each time the
    /// cohort is mostly flagged, the attacker abandons flagged apps and
    /// re-registers nearer the targets, down to exact copies.
    NameMimicry {
        /// Live mimic apps maintained each round.
        cohort: u32,
        /// Starting edit distance (use
        /// [`EvasionKnobs::mimicry_max_edit_distance`]).
        start_distance: usize,
    },
    /// Figs. 13–16 piggyback/collusion ring: clean-looking promoter
    /// apps post links to scam promotees (the AppNet edges), and the
    /// attacker rotates out any ring member that gets flagged.
    PiggybackRing {
        /// Front apps that only promote (never post scams).
        promoters: u32,
        /// Scam apps the promoters point at.
        promotees: u32,
        /// Promotion posts per promoter per round.
        fanout: u32,
    },
    /// Fake-like inflation: scam apps dilute their external-link ratio
    /// with engagement-bait filler posts (no links), escalating the
    /// filler volume when flagged.
    FakeLikeInflation {
        /// Cohort size.
        cohort: u32,
        /// Scam (external-link) posts per app per round.
        scam_posts: u32,
        /// Filler posts added per escalation.
        filler_step: u32,
        /// Ceiling on filler posts per app per round.
        max_filler: u32,
    },
    /// Install/uninstall churn: installer-farm waves register, post
    /// install bait, and are deleted before any crawl can observe them
    /// — every wave's on-demand lanes stay missing, and the next wave
    /// replaces it wholesale.
    InstallChurn {
        /// Apps per wave (one wave per round).
        wave: u32,
    },
}

/// Declared pass criteria, evaluated over the finished
/// [`crate::ScenarioReport`]. Every field is optional: a scenario
/// asserts exactly what it claims, nothing more.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Then {
    /// Drift must fire within this many rounds of round 1.
    pub drift_within_rounds: Option<u32>,
    /// The peak `max_psi` across rounds must reach at least this
    /// multiple of `psi_threshold` (margin assertions like "
    /// >3× threshold", via the per-lane PSI map).
    pub min_drift_margin: Option<f64>,
    /// A retrained candidate must pass the shadow gate and be promoted
    /// before the run ends.
    pub require_promotion: bool,
    /// Final-round false-positive rate over the benign population must
    /// not exceed this.
    pub max_final_fp_rate: Option<f64>,
    /// Final-round detection rate over live attacker apps must reach
    /// at least this.
    pub min_final_detection: Option<f64>,
    /// Final-round false-negative rate (1 − detection) must not exceed
    /// this.
    pub max_final_fn_rate: Option<f64>,
}

impl Then {
    /// No criteria (useful as a starting point for `..` updates).
    pub fn none() -> Self {
        Then {
            drift_within_rounds: None,
            min_drift_margin: None,
            require_promotion: false,
            max_final_fp_rate: None,
            min_final_detection: None,
            max_final_fn_rate: None,
        }
    }
}

/// One complete scenario: given / when / then.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Stable scenario name (report key, bench row).
    pub name: String,
    /// The defended world and defender policy.
    pub given: Given,
    /// The attack phase.
    pub when: When,
    /// The declared pass criteria.
    pub then: Then,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_roundtrip_through_serde() {
        for spec in crate::scenarios::builtin_scenarios() {
            let json = serde_json::to_string_pretty(&spec).unwrap();
            let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(spec, back, "{} must round-trip", spec.name);
        }
    }

    #[test]
    fn baseline_given_is_internally_consistent() {
        let g = Given::baseline(7);
        assert!(g.benign_apps + g.training_malicious >= g.drift_min_samples as usize);
        assert!((g.gate.min_scored as usize) < g.benign_apps);
    }
}
