//! The round engine: one attacker against one defended deployment.
//!
//! [`run_spec_on`] stands up the full serving + lifecycle stack from a
//! spec's given-clause, lets the attack's [`Strategy`](crate::Strategy)
//! play `when.rounds` rounds against it, and judges the then-clause
//! over the recorded [`ScenarioReport`]. One round is:
//!
//! ```text
//! feedback (last round's verdicts on the attacker's own apps)
//!   → strategy.plan_round → expand to events (ordered pool fan-out)
//!   → ingest → labelled classification sweep (sorted app order)
//!   → verified name flagging → check_drift
//!   → [drifted?] retrain on tracked rows → begin_shadow
//!   → try_promote → [promoted?] drift baseline ← candidate's rows
//!   → window reset against the serving model's training baseline
//! ```
//!
//! Determinism: the only parallelism is `frappe_jobs` ordered fan-out
//! (traffic expansion, retraining CV folds), both bit-identical at any
//! pool size; every iteration the engine does itself is over sorted
//! ids or plan order; and the report carries no wall-clock or thread
//! state. Same spec → byte-identical canonical JSON at `FRAPPE_JOBS=1`
//! and `=8`.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use frappe::features::aggregation::KnownMaliciousNames;
use frappe::AppFeatures;
use frappe_jobs::JobPool;
use frappe_lifecycle::{
    retrain_on, DriftConfig, DriftDetector, LifecycleManager, ModelRegistry, PromotionOutcome,
    RetrainConfig,
};
use frappe_serve::{FeatureStore, FrappeService, ServeConfig, ServeEvent};
use osn_types::ids::AppId;
use url_services::Shortener;

use crate::report::{Outcome, RoundRecord, ScenarioReport};
use crate::spec::ScenarioSpec;
use crate::strategies::strategy_for;
use crate::strategy::{AppAction, Feedback};
use crate::traffic;

/// Runs `spec` with a pool sized by the `FRAPPE_JOBS` environment
/// variable (see [`JobPool::from_env`]).
pub fn run_spec(spec: &ScenarioSpec) -> ScenarioReport {
    run_spec_on(&JobPool::from_env(), spec)
}

/// Runs `spec` on an explicit pool. The returned report's canonical
/// JSON is byte-identical for any pool size.
pub fn run_spec_on(pool: &JobPool, spec: &ScenarioSpec) -> ScenarioReport {
    let g = &spec.given;
    let shortener = Shortener::bitly();

    // --- Given: bootstrap population, incumbent model, defended stack.
    let bootstrap = traffic::bootstrap_events(pool, g.seed, g.benign_apps, g.training_malicious);
    let known = KnownMaliciousNames::from_names(traffic::known_name_pool(g.training_malicious));
    // Assemble the incumbent's training batch through the same
    // incremental store the service uses (the tests/lifecycle.rs idiom).
    let store = FeatureStore::new(4);
    for event in &bootstrap {
        store.apply(event, &shortener);
    }
    let mut samples: Vec<AppFeatures> = Vec::new();
    let mut labels: Vec<bool> = Vec::new();
    for app in store.tracked_apps() {
        let snap = store.snapshot(app, &known).expect("tracked app has state");
        samples.push(snap.features);
        labels.push(app.0 > g.benign_apps as u64);
    }
    let incumbent = retrain_on(
        pool,
        &samples,
        &labels,
        &RetrainConfig {
            seed: g.seed,
            ..RetrainConfig::default()
        },
    );
    let registry = ModelRegistry::new(incumbent.model.clone(), incumbent.source(None));
    let service = Arc::new(FrappeService::with_shared_model(
        registry.handle(),
        known,
        shortener,
        ServeConfig::default(),
    ));
    for event in &bootstrap {
        service.ingest(event);
    }
    // The training-time malicious apps are enforced (deleted) before
    // round 1: the incumbent learned from them, but only the attacker's
    // own apps are ever swept again.
    for i in 0..g.training_malicious {
        let app = AppId(1 + (g.benign_apps + i) as u64);
        service.ingest(&ServeEvent::Deleted { app });
    }
    let manager = LifecycleManager::new(
        Arc::clone(&service),
        registry,
        g.gate,
        DriftDetector::new(DriftConfig {
            psi_threshold: g.psi_threshold,
            min_samples: g.drift_min_samples,
        }),
    );
    manager.refit_drift_baseline(&samples);

    // --- When: the adaptive rounds.
    let first_attacker_id = (g.benign_apps + g.training_malicious + 1) as u64;
    let mut strategy = strategy_for(&spec.when.attack, g.seed, first_attacker_id);
    let benign: Vec<AppId> = (1..=g.benign_apps as u64).map(AppId).collect();
    let mut live: BTreeSet<AppId> = BTreeSet::new();
    let mut names: BTreeMap<AppId, String> = BTreeMap::new();
    let mut prev_verdicts: BTreeMap<AppId, bool> = BTreeMap::new();
    // Rows the serving model was trained on — the drift baseline. The
    // window is re-zeroed against it every round, so each round's PSI
    // reads "this round's population vs. the incumbent's training
    // population".
    let mut baseline_rows = samples;
    let mut candidate_rows: Option<Vec<AppFeatures>> = None;

    let mut rounds: Vec<RoundRecord> = Vec::new();
    let mut first_drift_round: Option<u32> = None;
    let mut promoted_round: Option<u32> = None;
    let mut appnet_edges: Vec<(u64, u64)> = Vec::new();

    for round in 1..=spec.when.rounds {
        // 1. The attacker observes its verdicts and plans.
        let feedback = Feedback {
            round,
            flagged: std::mem::take(&mut prev_verdicts),
        };
        let plan = strategy.plan_round(&feedback);
        for action in &plan.actions {
            match action {
                AppAction::Register { app, spec } => {
                    live.insert(*app);
                    names.insert(*app, spec.name.clone());
                }
                AppAction::Retire { app } => {
                    live.remove(app);
                }
                AppAction::PromotePeer { promoter, target } => {
                    appnet_edges.push((promoter.0, target.0));
                }
                AppAction::Recrawl { .. } | AppAction::PostBurst { .. } => {}
            }
        }

        // 2. Plan + benign background chatter become serving events.
        let mut events = traffic::expand_actions(pool, g.seed, round, &plan.actions);
        events.extend(traffic::benign_background(
            pool,
            g.seed,
            round,
            g.benign_apps,
        ));
        for event in &events {
            service.ingest(event);
        }

        // 3. Labelled classification sweep, sorted order: benign
        // population first, then the attacker's live apps. Every query
        // feeds the drift window and (when riding) the shadow.
        let mut false_positives = 0usize;
        for &app in &benign {
            let verdict = manager
                .classify_labelled(app, Some(false))
                .expect("bootstrap apps stay tracked");
            if verdict.malicious {
                false_positives += 1;
            }
        }
        let mut attacker_flagged = 0usize;
        let mut names_flagged = 0usize;
        for &app in &live {
            let verdict = manager
                .classify_labelled(app, Some(true))
                .expect("registered attacker apps are tracked");
            prev_verdicts.insert(app, verdict.malicious);
            if verdict.malicious {
                attacker_flagged += 1;
                // Verified flagging (the MyPageKeeper step): the name
                // joins the known-malicious list only when ground truth
                // agrees with the verdict.
                if g.flag_verified_names {
                    if let Some(name) = names.get(&app) {
                        if service.flag_name(name) {
                            names_flagged += 1;
                        }
                    }
                }
            }
        }

        // 4. Drift check, and the defender's reaction to it.
        let drift = manager.check_drift();
        let drift_fired = drift.is_drifted();
        if drift_fired && first_drift_round.is_none() {
            first_drift_round = Some(round);
        }
        let mut retrained = false;
        if drift_fired && g.retrain_on_drift && manager.shadow_report().is_none() {
            // The retraining batch is the population actually being
            // served — the benign apps plus the attacker's live apps,
            // with PageKeeper-vantage ground-truth labels. (Tombstoned
            // apps are excluded: rows that can never be queried again
            // would only skew the candidate and its drift baseline.)
            let mut batch: Vec<AppFeatures> = Vec::new();
            let mut batch_labels: Vec<bool> = Vec::new();
            for &app in benign.iter().chain(live.iter()) {
                if let Some(features) = service.features(app) {
                    batch.push(features);
                    batch_labels.push(app.0 > g.benign_apps as u64);
                }
            }
            let outcome = retrain_on(
                pool,
                &batch,
                &batch_labels,
                &RetrainConfig {
                    seed: g.seed ^ u64::from(round),
                    ..RetrainConfig::default()
                },
            );
            let parent = manager.registry().active_version();
            manager.begin_shadow(
                Arc::new(outcome.model.clone()),
                outcome.source(Some(parent)),
            );
            candidate_rows = Some(batch);
            retrained = true;
        }
        let mut promoted_version = None;
        let mut gate_holds = Vec::new();
        match manager.try_promote() {
            PromotionOutcome::Promoted(version) => {
                promoted_version = Some(version);
                promoted_round = Some(round);
                if let Some(rows) = candidate_rows.take() {
                    // The candidate now serves: its training rows are
                    // the new normal the window is judged against.
                    baseline_rows = rows;
                }
            }
            PromotionOutcome::Held(holds) => gate_holds = holds,
            PromotionOutcome::NoShadow => {}
        }
        let shadow_riding = manager.shadow_report().is_some();

        // 5. Record the round and re-zero the window for the next one.
        let attacker_live = live.len();
        let detection_rate = if attacker_live == 0 {
            1.0
        } else {
            attacker_flagged as f64 / attacker_live as f64
        };
        rounds.push(RoundRecord {
            round,
            attacker_live,
            attacker_flagged,
            detection_rate,
            benign_scored: benign.len(),
            false_positives,
            fp_rate: false_positives as f64 / benign.len().max(1) as f64,
            fn_rate: 1.0 - detection_rate,
            max_psi: drift.max_psi(),
            drifted_lanes: drift.drifted.iter().map(|k| (*k).to_string()).collect(),
            drift_fired,
            retrained,
            shadow_riding,
            gate_holds,
            promoted_version,
            events_ingested: events.len(),
            names_flagged,
        });
        manager.refit_drift_baseline(&baseline_rows);
    }

    // --- Then: judge the record against the declared criteria.
    let mut report = ScenarioReport {
        scenario: spec.name.clone(),
        seed: g.seed,
        spec: spec.clone(),
        rounds,
        first_drift_round,
        promoted_round,
        appnet_edges,
        outcome: Outcome {
            passed: false,
            failures: Vec::new(),
        },
    };
    report.outcome = report.judge(spec);
    report
}
