//! The five built-in scenarios.
//!
//! Each constructor returns a tuned [`ScenarioSpec`] that passes
//! deterministically (pinned by `tests/gauntlet.rs`), and each claims
//! only what its attack actually demonstrates — a frozen-defender
//! scenario asserts pure detection bounds, the escalation scenarios
//! assert the full drift → retrain → promote loop.

use synth_workload::EvasionKnobs;

use crate::spec::{Attack, Given, ScenarioSpec, Then, When};

/// §7 summary-filling escalation — the full-loop scenario. The cohort
/// starts at paper-rate empty summaries; every flagged round it raises
/// its fill rates toward the [`EvasionKnobs`] ceilings, blinding the
/// incumbent. The then-clause demands the whole defense: drift fires,
/// a retrained candidate is promoted through the shadow gate, and
/// final-round FP/FN land back within bounds.
pub fn summary_filling() -> ScenarioSpec {
    ScenarioSpec {
        name: "summary_filling".to_string(),
        given: Given::baseline(42),
        when: When {
            rounds: 8,
            attack: Attack::SummaryFilling {
                cohort: 48,
                wave: 16,
                step: 0.5,
                knobs: EvasionKnobs::paper_forecast(),
            },
        },
        then: Then {
            drift_within_rounds: Some(6),
            require_promotion: true,
            max_final_fp_rate: Some(0.05),
            max_final_fn_rate: Some(0.35),
            ..Then::none()
        },
    }
}

/// §4.2.1 name-mimicry escalation against a frozen defender. Mimics
/// close the edit distance to popular benign names down to exact
/// copies; verified flagging then puts those very names on the
/// known-malicious list. The claim: detection stays high on the scam
/// profiles *and* the name-collision feedback does not burn the benign
/// originals past the FP bound.
pub fn name_mimicry() -> ScenarioSpec {
    ScenarioSpec {
        name: "name_mimicry".to_string(),
        given: Given {
            retrain_on_drift: false,
            ..Given::baseline(43)
        },
        when: When {
            rounds: 6,
            attack: Attack::NameMimicry {
                cohort: 30,
                start_distance: EvasionKnobs::paper_forecast().mimicry_max_edit_distance,
            },
        },
        then: Then {
            min_final_detection: Some(0.8),
            max_final_fp_rate: Some(0.05),
            ..Then::none()
        },
    }
}

/// Figs. 13–16 piggyback/collusion ring. Clean-looking fronts promote
/// scam promotees over canvas links (the AppNet edges in the report)
/// and the ring rotates out whatever gets flagged. The claim: the scam
/// half of the ring keeps getting caught despite the rotation, without
/// collateral FPs.
pub fn piggyback_ring() -> ScenarioSpec {
    ScenarioSpec {
        name: "piggyback_ring".to_string(),
        given: Given {
            retrain_on_drift: false,
            ..Given::baseline(44)
        },
        when: When {
            rounds: 6,
            attack: Attack::PiggybackRing {
                promoters: 8,
                promotees: 24,
                fanout: 3,
            },
        },
        then: Then {
            min_final_detection: Some(0.55),
            max_final_fp_rate: Some(0.05),
            ..Then::none()
        },
    }
}

/// Fake-like inflation: scam apps bury their links in engagement-bait
/// filler until their external-link ratio looks benign. The ratio lane
/// the incumbent's baseline expects scam mass in empties out, drift
/// fires, and a retrained candidate must be promoted with detection
/// held high.
pub fn fake_like_inflation() -> ScenarioSpec {
    ScenarioSpec {
        name: "fake_like_inflation".to_string(),
        given: Given::baseline(45),
        when: When {
            rounds: 8,
            attack: Attack::FakeLikeInflation {
                cohort: 36,
                scam_posts: 2,
                filler_step: 6,
                max_filler: 18,
            },
        },
        then: Then {
            drift_within_rounds: Some(6),
            require_promotion: true,
            min_final_detection: Some(0.7),
            max_final_fp_rate: Some(0.05),
            ..Then::none()
        },
    }
}

/// Install/uninstall churn with installer farms. Every wave is deleted
/// before a crawl can observe it, so the on-demand lanes of the whole
/// attack population read *missing* — exactly what the PSI missing
/// bins exist for. The claim: drift fires immediately and hard (the
/// ">3x threshold" margin assertion rides on the per-lane PSI map),
/// with no benign collateral.
pub fn install_churn() -> ScenarioSpec {
    ScenarioSpec {
        name: "install_churn".to_string(),
        given: Given {
            retrain_on_drift: false,
            ..Given::baseline(46)
        },
        when: When {
            rounds: 5,
            attack: Attack::InstallChurn { wave: 40 },
        },
        then: Then {
            drift_within_rounds: Some(2),
            min_drift_margin: Some(3.0),
            max_final_fp_rate: Some(0.05),
            ..Then::none()
        },
    }
}

/// All built-in scenarios, in a stable order.
pub fn builtin_scenarios() -> Vec<ScenarioSpec> {
    vec![
        summary_filling(),
        name_mimicry(),
        piggyback_ring(),
        fake_like_inflation(),
        install_churn(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_have_unique_names_and_distinct_seeds() {
        let specs = builtin_scenarios();
        assert_eq!(specs.len(), 5);
        let names: std::collections::BTreeSet<&str> =
            specs.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names.len(), specs.len());
        let seeds: std::collections::BTreeSet<u64> = specs.iter().map(|s| s.given.seed).collect();
        assert_eq!(seeds.len(), specs.len());
    }

    #[test]
    fn every_builtin_declares_at_least_one_criterion() {
        for spec in builtin_scenarios() {
            let t = &spec.then;
            assert!(
                t.drift_within_rounds.is_some()
                    || t.min_drift_margin.is_some()
                    || t.require_promotion
                    || t.max_final_fp_rate.is_some()
                    || t.min_final_detection.is_some()
                    || t.max_final_fn_rate.is_some(),
                "{} asserts nothing",
                spec.name
            );
        }
    }
}
