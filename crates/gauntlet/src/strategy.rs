//! The attacker's side of the loop: feedback in, a round plan out.
//!
//! A [`Strategy`] sees exactly what a real attacker sees — **which of
//! its own apps the defender flagged**, observed through the public
//! classify path (no model internals, no feature weights, no drift
//! state) — and answers with a [`RoundPlan`]: register apps, edit their
//! crawled profiles, post, promote a sibling, or abandon ship. The
//! engine turns the plan into [`frappe_serve::ServeEvent`]s (see
//! [`crate::traffic`]) and the defender answers back through the next
//! round's verdicts.

use std::collections::BTreeMap;

use osn_types::ids::AppId;

/// What the attacker observed after the previous round: one verdict per
/// app it still operates. Empty before round 1 — the first plan is made
/// blind.
#[derive(Debug, Clone, Default)]
pub struct Feedback {
    /// Round about to be planned (1-based).
    pub round: u32,
    /// `app → was it flagged malicious` for every app the attacker had
    /// live during the previous round's sweep.
    pub flagged: BTreeMap<AppId, bool>,
}

impl Feedback {
    /// Fraction of the attacker's live apps that got flagged (0 when
    /// nothing was live).
    pub fn flagged_fraction(&self) -> f64 {
        if self.flagged.is_empty() {
            return 0.0;
        }
        self.flagged.values().filter(|&&f| f).count() as f64 / self.flagged.len() as f64
    }

    /// The apps flagged last round, in id order.
    pub fn flagged_apps(&self) -> Vec<AppId> {
        self.flagged
            .iter()
            .filter(|(_, &f)| f)
            .map(|(&a, _)| a)
            .collect()
    }
}

/// Everything the platform would learn about an app from a crawl, as
/// the attacker configures it. The traffic layer turns this into the
/// `OnDemand` feature lanes.
#[derive(Debug, Clone, PartialEq)]
pub struct AppSpec {
    /// Display name (collisions are the mimicry attack surface).
    pub name: String,
    /// Summary fields the attacker chose to fill in.
    pub fill_description: bool,
    /// See `fill_description`.
    pub fill_company: bool,
    /// See `fill_description`.
    pub fill_category: bool,
    /// Whether the app's profile feed has posts.
    pub fill_profile_feed: bool,
    /// Requested permission count (scam apps overwhelmingly ask for 1).
    pub permission_count: u32,
    /// Whether the install URL installs a sibling app (client-ID pools).
    pub client_id_mismatch: bool,
    /// WOT reputation of the redirect domain, when the domain is rated.
    pub wot_score: Option<f64>,
    /// Whether the app sticks around long enough to be crawled at all.
    /// Installer-farm churn apps set this `false`: their on-demand
    /// lanes stay unobserved forever.
    pub crawled: bool,
}

impl AppSpec {
    /// A paper-rate scam app (§4's malicious profile): empty summary,
    /// one permission, client-ID pools, unrated or near-zero WOT.
    pub fn paper_scam(name: String) -> Self {
        AppSpec {
            name,
            fill_description: false,
            fill_company: false,
            fill_category: false,
            fill_profile_feed: false,
            permission_count: 1,
            client_id_mismatch: true,
            wot_score: None,
            crawled: true,
        }
    }

    /// A benign-looking front app (ring promoters): filled summary,
    /// several permissions, honest client ID, decent reputation.
    pub fn clean_front(name: String) -> Self {
        AppSpec {
            name,
            fill_description: true,
            fill_company: true,
            fill_category: true,
            fill_profile_feed: true,
            permission_count: 3,
            client_id_mismatch: false,
            wot_score: Some(72.0),
            crawled: true,
        }
    }
}

/// One attacker move. The engine applies moves in plan order; each
/// expands to serving events through [`crate::traffic`].
#[derive(Debug, Clone, PartialEq)]
pub enum AppAction {
    /// Register a fresh app (and, when `spec.crawled`, let the platform
    /// crawl it).
    Register {
        /// The new app's id (allocated by the strategy from its
        /// engine-assigned range).
        app: AppId,
        /// Its configured profile.
        spec: AppSpec,
    },
    /// Re-configure an existing app's profile; the next crawl replaces
    /// its on-demand lanes wholesale (this is how summary-filling
    /// escalation reaches *existing* apps).
    Recrawl {
        /// The app being edited.
        app: AppId,
        /// Its new profile.
        spec: AppSpec,
    },
    /// Post a burst: `scam_posts` external-link scams plus
    /// `filler_posts` engagement-bait posts with no link (the
    /// fake-like-inflation dilution lever).
    PostBurst {
        /// The posting app.
        app: AppId,
        /// External-link scam posts.
        scam_posts: u32,
        /// No-link filler posts.
        filler_posts: u32,
    },
    /// A promotion post: `promoter` posts an internal
    /// apps.facebook.com link to `target`'s canvas page — one AppNet
    /// edge (Figs. 13–16).
    PromotePeer {
        /// The posting front app.
        promoter: AppId,
        /// The promoted sibling.
        target: AppId,
    },
    /// Abandon an app (the platform sees a deletion; aggregation
    /// evidence tombstones, on-demand lanes become unobserved).
    Retire {
        /// The abandoned app.
        app: AppId,
    },
}

/// The attacker's moves for one round.
#[derive(Debug, Clone, Default)]
pub struct RoundPlan {
    /// Moves, applied in order.
    pub actions: Vec<AppAction>,
}

/// An adaptive attacker. Implementations own their RNG (seeded from the
/// spec) and their app-id allocator (a range the engine hands out), so
/// `plan_round` is a pure function of construction parameters and the
/// feedback sequence — which is what makes whole runs replayable.
pub trait Strategy {
    /// Stable strategy name (report field).
    fn name(&self) -> &'static str;

    /// Plan the next round given last round's verdicts on the
    /// attacker's own apps.
    fn plan_round(&mut self, feedback: &Feedback) -> RoundPlan;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flagged_fraction_counts_only_true_verdicts() {
        let mut fb = Feedback {
            round: 2,
            flagged: BTreeMap::new(),
        };
        assert_eq!(fb.flagged_fraction(), 0.0);
        fb.flagged.insert(AppId(1), true);
        fb.flagged.insert(AppId(2), false);
        fb.flagged.insert(AppId(3), true);
        assert!((fb.flagged_fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(fb.flagged_apps(), vec![AppId(1), AppId(3)]);
    }
}
