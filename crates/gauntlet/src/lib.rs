//! # frappe-gauntlet — the adaptive adversarial scenario engine
//!
//! §7 of the paper forecasts what happens *after* FRAppE ships: hackers
//! observe enforcement and adapt — they fill in the summary fields the
//! classifier keys on, mimic popular benign names, promote each other
//! through collusion rings, and churn through installer farms. The rest
//! of this workspace builds the defended deployment (serving, drift,
//! shadow-gated retraining); this crate builds the *attacker*, and runs
//! the two against each other in a seeded, deterministic loop.
//!
//! A run executes a declarative [`ScenarioSpec`] — cucumber-style
//! given / when / then:
//!
//! * **given** ([`Given`]) a defended world: bootstrap population
//!   sizes, drift thresholds, the [`frappe_lifecycle::PromotionGate`],
//!   and the defender's standing policy (retrain on drift? grow the
//!   known-malicious name list from verified verdicts?);
//! * **when** ([`When`]) an adaptive [`Attack`] plays R rounds. Each
//!   round the [`Strategy`] sees exactly what a real attacker sees —
//!   which of its own apps got flagged, via the public classify path —
//!   and answers with a [`RoundPlan`] of registrations, profile edits,
//!   post bursts, peer promotions, and abandonments, which the traffic
//!   layer expands into serving events over the ordered
//!   [`frappe_jobs::JobPool`] fan-out;
//! * **then** ([`Then`]) declared criteria are judged over the
//!   structured [`ScenarioReport`]: drift fired within R rounds, the
//!   shadow gate held or promoted, final FP/FN within bounds, PSI
//!   margins like "3x threshold" via the per-lane map.
//!
//! Determinism is the contract that makes any of this assertable: same
//! seed → byte-identical [`ScenarioReport::to_canonical_json`] at
//! `FRAPPE_JOBS=1` and `=8` (pinned in `tests/gauntlet.rs`). The five
//! built-ins ([`builtin_scenarios`]) cover summary-filling escalation,
//! name mimicry, a piggyback ring, fake-like inflation, and
//! install/uninstall churn; `summary_filling` and `fake_like_inflation`
//! demonstrate the full loop — attacker escalates, drift fires, the
//! defender retrains, the shadow gate promotes, and the error rates
//! come back within bounds.
//!
//! ```
//! let report = frappe_gauntlet::run_spec(&frappe_gauntlet::install_churn());
//! assert!(report.outcome.passed, "{:?}", report.outcome.failures);
//! assert_eq!(report.first_drift_round, Some(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod report;
pub mod scenarios;
pub mod spec;
pub mod strategies;
pub mod strategy;
pub mod traffic;

pub use engine::{run_spec, run_spec_on};
pub use report::{Outcome, RoundRecord, ScenarioReport};
pub use scenarios::{
    builtin_scenarios, fake_like_inflation, install_churn, name_mimicry, piggyback_ring,
    summary_filling,
};
pub use spec::{Attack, Given, ScenarioSpec, Then, When};
pub use strategies::strategy_for;
pub use strategy::{AppAction, AppSpec, Feedback, RoundPlan, Strategy};
