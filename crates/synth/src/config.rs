//! Scenario configuration.
//!
//! Every knob defaults to the paper's reported value (rates, fractions,
//! error profiles) or to a 1/10 linear scale of the paper's population
//! (counts). Counts scale; *fractions and external-world absolutes* (click
//! totals, MAU, WOT scores) do not — see DESIGN.md §1 for the argument.

use serde::{Deserialize, Serialize};

/// Full configuration of a synthetic world.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Master seed; every derived RNG is seeded from it.
    pub seed: u64,

    // ------------------------------------------------------------------
    // Population
    // ------------------------------------------------------------------
    /// Simulated users (stand-in for the monitorable window of the real
    /// platform).
    pub users: usize,
    /// Mean number of friends per user (Erdős–Rényi expected degree).
    pub mean_friends: usize,
    /// Fraction of users who installed MyPageKeeper (the paper's 2.2M of a
    /// much larger reachable population).
    pub monitored_fraction: f64,

    // ------------------------------------------------------------------
    // Benign applications (rates from Figs. 5–9, 12)
    // ------------------------------------------------------------------
    /// Number of benign apps that post during the trace.
    pub benign_apps: usize,
    /// P(description configured) for benign apps — paper: 93%.
    pub benign_description_rate: f64,
    /// P(company configured) — Fig. 5, ≈81%.
    pub benign_company_rate: f64,
    /// P(category configured) — Fig. 5, ≈90%.
    pub benign_category_rate: f64,
    /// P(exactly one permission) — paper: 62%.
    pub benign_single_permission_rate: f64,
    /// P(redirect URI on apps.facebook.com) — paper: 80%.
    pub benign_facebook_redirect_rate: f64,
    /// Fraction of benign apps that ever post external links — paper: 20%
    /// ("80% of benign apps do not post any external links").
    pub benign_external_linker_rate: f64,
    /// P(an app's install flow is automatable) for benign apps,
    /// calibrated so |D-Inst benign| / |D-Sample benign| ≈ 36%.
    pub benign_crawlable_rate: f64,
    /// Daily deletion hazard for benign apps (ToS violations etc.;
    /// calibrated so ≈3% of benign apps miss from D-Summary).
    pub benign_daily_deletion_hazard: f64,

    // ------------------------------------------------------------------
    // Malicious applications (rates from Figs. 5–9, §4)
    // ------------------------------------------------------------------
    /// Total malicious apps (13% of all apps at paper scale).
    pub malicious_apps: usize,
    /// Number of colluding campaigns (connected components) — paper: 44.
    pub campaigns: usize,
    /// Fraction of malicious apps that engage in collusion — paper:
    /// 6,331 / ~14,300 ≈ 0.44.
    pub colluding_fraction: f64,
    /// P(description configured) — paper: 1.4%.
    pub malicious_description_rate: f64,
    /// P(company configured) — Fig. 5, ≈4%.
    pub malicious_company_rate: f64,
    /// P(category configured) — Fig. 5, ≈6%.
    pub malicious_category_rate: f64,
    /// P(exactly one permission) — paper: 97%.
    pub malicious_single_permission_rate: f64,
    /// P(client-ID pool is used, i.e. install URL installs a sibling) —
    /// paper: 78%.
    pub malicious_client_id_mismatch_rate: f64,
    /// P(app has any posts in its profile feed) — paper: 3%.
    pub malicious_profile_feed_rate: f64,
    /// P(benign app has posts in its profile feed) — Fig. 9 shows most do.
    pub benign_profile_feed_rate: f64,
    /// P(install flow automatable) for malicious apps, calibrated so
    /// |D-Inst malicious| comes out at the paper's ≈8% of D-Sample.
    pub malicious_crawlable_rate: f64,
    /// Daily deletion hazard once a malicious app starts posting,
    /// calibrated so ≈40% survive to the crawl phase and ≈85% are gone by
    /// validation time.
    pub malicious_daily_deletion_hazard: f64,
    /// Number of distinct hosting domains for malicious redirect URIs
    /// beyond the five the paper names (Table 3's tail).
    pub extra_hosting_domains: usize,
    /// Fraction of campaigns whose app names carry version suffixes.
    pub versioned_campaign_rate: f64,
    /// Number of typosquatting apps (paper's validation found 5
    /// 'FarmVile's).
    pub typosquat_count: usize,
    /// Number of indirection websites (paper: 103; scales).
    pub indirection_sites: usize,
    /// Fraction of indirection sites hosted on the cloud-hosting analog —
    /// paper: one third on amazonaws.com.
    pub indirection_cloud_fraction: f64,
    /// Role mix within colluding apps (Fig. 13): pure promoters 25%.
    pub promoter_fraction: f64,
    /// Dual-role apps 16.2% (the rest are pure promotees).
    pub dual_fraction: f64,
    /// Fraction of campaigns that MyPageKeeper largely misses (their URLs
    /// get a near-zero detection probability). These become the "new"
    /// malicious apps FRAppE discovers in §5.3: paper finds 8,051 new on
    /// top of 6,273 known ⇒ ≈0.55 of malicious mass is stealthy.
    pub stealthy_campaign_fraction: f64,
    /// Detection probability for stealthy campaigns' URLs.
    pub stealthy_detect_prob: f64,

    // ------------------------------------------------------------------
    // Timeline
    // ------------------------------------------------------------------
    /// Monitoring span in days — paper: nine months.
    pub monitoring_days: u32,
    /// Weekly crawl sweeps after monitoring — paper: March–May ≈ 13 weeks.
    pub crawl_weeks: u32,
    /// Additional days simulated after the crawl (enforcement keeps
    /// running) before the §5.3 validation snapshot — paper validated in
    /// October 2012.
    pub validation_extra_days: u32,
    /// Days between MyPageKeeper sweeps.
    pub sweep_interval_days: u32,

    // ------------------------------------------------------------------
    // Behaviour
    // ------------------------------------------------------------------
    /// Mean benign apps installed per user at bootstrap.
    pub benign_installs_per_user: f64,
    /// Expected wall posts per benign app per day, scaled by app
    /// popularity.
    pub benign_daily_post_rate: f64,
    /// Expected posts per active malicious app per day.
    pub malicious_daily_post_rate: f64,
    /// P(an exposed friend clicks the link in a malicious post).
    pub victim_click_prob: f64,
    /// P(an exposed friend installs the pushed app).
    pub victim_install_prob: f64,
    /// P(a victim manually re-shares a scam link) — produces the paper's
    /// 27% of malicious posts with no app attribution.
    pub manual_share_prob: f64,
    /// Expected manual chatter posts per user per day (the 37% of posts
    /// with no app).
    pub manual_chatter_rate: f64,
    /// Fraction of malicious scam links that are shortened — paper: 92% of
    /// shortened URLs were bit.ly; 80% of indirection links shortened.
    pub malicious_shorten_rate: f64,

    // ------------------------------------------------------------------
    // External-world absolutes (NOT scaled)
    // ------------------------------------------------------------------
    /// Fraction of malicious apps that post bit.ly links at all — paper:
    /// 3,805 / 6,273 ≈ 0.61.
    pub bitly_user_rate: f64,
    /// Fig. 3 calibration: P(app click total in the low band).
    pub clicks_low_band_prob: f64,
    /// Fig. 3: click range of the low band (lo, hi).
    pub clicks_low_band: (f64, f64),
    /// Fig. 3: click range of the mid band (40% of apps, 1e5–1e6).
    pub clicks_mid_band: (f64, f64),
    /// Fig. 3: click range of the top band (20% of apps, >1e6).
    pub clicks_top_band: (f64, f64),
    /// Fig. 4: malicious app base-MAU sampling range for the low band
    /// (60% of apps below 1000).
    pub malicious_mau_low: (f64, f64),
    /// Fig. 4: base-MAU range of the high band (40% of apps ≥ 1000; top
    /// median 20,000).
    pub malicious_mau_high: (f64, f64),
    /// Benign app MAU range (log-uniform; FarmVille-class apps at the top).
    pub benign_mau: (f64, f64),

    // ------------------------------------------------------------------
    // MyPageKeeper calibration (§2.2)
    // ------------------------------------------------------------------
    /// P(a truly-malicious URL is flagged) for ordinary campaigns.
    pub mpk_detect_prob: f64,
    /// P(a benign URL is flagged) — paper: 0.005%.
    pub mpk_false_flag_prob: f64,

    // ------------------------------------------------------------------
    // Piggybacking (§6.2)
    // ------------------------------------------------------------------
    /// Number of popular apps abused via prompt_feed. Table 9 shows the
    /// top five; Fig. 16 implies ≈5% of flagged apps are piggybacked, so
    /// the affected set is larger.
    pub piggyback_victims: usize,
    /// Expected piggybacked posts per victim app per day.
    pub piggyback_daily_rate: f64,

    /// Permille chance that the profile feed of a *deleted* app is still
    /// retrievable from an earlier crawl pass. Table 1 shows more
    /// malicious apps with profile feeds (3,227) than with summaries
    /// (2,528) — feed data outlived some deletions in the paper's archive.
    pub feed_tombstone_cache_permille: u32,
}

impl ScenarioConfig {
    /// Paper-shape configuration at 1/10 population scale. This is the
    /// configuration the `repro` experiments run.
    pub fn paper_scale() -> Self {
        ScenarioConfig {
            seed: 0xF4A99E,
            users: 8_000,
            mean_friends: 18,
            monitored_fraction: 0.55,

            benign_apps: 9_600,
            benign_description_rate: 0.93,
            benign_company_rate: 0.81,
            benign_category_rate: 0.90,
            benign_single_permission_rate: 0.62,
            benign_facebook_redirect_rate: 0.80,
            benign_external_linker_rate: 0.20,
            benign_crawlable_rate: 0.37,
            benign_daily_deletion_hazard: 0.00008,

            malicious_apps: 1_430,
            campaigns: 44,
            colluding_fraction: 0.44,
            malicious_description_rate: 0.014,
            malicious_company_rate: 0.04,
            malicious_category_rate: 0.06,
            malicious_single_permission_rate: 0.97,
            malicious_client_id_mismatch_rate: 0.78,
            malicious_profile_feed_rate: 0.03,
            benign_profile_feed_rate: 0.85,
            malicious_crawlable_rate: 0.20,
            malicious_daily_deletion_hazard: 0.0060,
            extra_hosting_domains: 20,
            versioned_campaign_rate: 0.25,
            typosquat_count: 5,
            indirection_sites: 10,
            indirection_cloud_fraction: 0.33,
            promoter_fraction: 0.25,
            dual_fraction: 0.162,
            stealthy_campaign_fraction: 0.55,
            stealthy_detect_prob: 0.02,

            monitoring_days: 270,
            crawl_weeks: 13,
            validation_extra_days: 120,
            sweep_interval_days: 7,

            benign_installs_per_user: 12.0,
            benign_daily_post_rate: 0.05,
            malicious_daily_post_rate: 1.2,
            victim_click_prob: 0.10,
            victim_install_prob: 0.05,
            manual_share_prob: 0.05,
            manual_chatter_rate: 0.15,
            malicious_shorten_rate: 0.80,

            bitly_user_rate: 0.61,
            clicks_low_band_prob: 0.40,
            clicks_low_band: (1e2, 1e5),
            clicks_mid_band: (1e5, 1e6),
            clicks_top_band: (1e6, 1.8e6),
            malicious_mau_low: (1.0, 1e3),
            malicious_mau_high: (1e3, 3e4),
            benign_mau: (50.0, 3e6),

            mpk_detect_prob: 0.95,
            mpk_false_flag_prob: 0.00005,

            piggyback_victims: 35,
            piggyback_daily_rate: 1.0,
            feed_tombstone_cache_permille: 200,
        }
    }

    /// A fast configuration for tests and examples: same rates, much
    /// smaller population and a shorter trace (runs in well under a
    /// second).
    pub fn small() -> Self {
        ScenarioConfig {
            seed: 42,
            users: 600,
            mean_friends: 10,
            benign_apps: 400,
            malicious_apps: 120,
            campaigns: 8,
            indirection_sites: 3,
            extra_hosting_domains: 6,
            monitoring_days: 90,
            crawl_weeks: 4,
            validation_extra_days: 30,
            benign_installs_per_user: 6.0,
            malicious_daily_deletion_hazard: 0.012,
            piggyback_victims: 8,
            // the small world's popular apps post less in absolute terms,
            // so the piggyback trickle must shrink to keep the Fig. 16
            // low-ratio signature
            piggyback_daily_rate: 0.3,
            ..Self::paper_scale()
        }
    }

    /// Number of monitored (MyPageKeeper-subscribed) users.
    pub fn monitored_users(&self) -> usize {
        (self.users as f64 * self.monitored_fraction).round() as usize
    }

    /// Number of colluding malicious apps.
    pub fn colluding_apps(&self) -> usize {
        (self.malicious_apps as f64 * self.colluding_fraction).round() as usize
    }

    /// Validates internal consistency; called by the scenario runner.
    ///
    /// # Panics
    /// Panics on inconsistent settings with a message naming the field.
    pub fn validate(&self) {
        assert!(self.users > 0, "users must be positive");
        assert!(self.benign_apps > 0, "benign_apps must be positive");
        assert!(self.malicious_apps > 0, "malicious_apps must be positive");
        assert!(self.campaigns > 0, "campaigns must be positive");
        assert!(
            self.colluding_apps() >= self.campaigns,
            "need at least one colluding app per campaign"
        );
        assert!(self.monitoring_days > 0, "monitoring_days must be positive");
        assert!(
            self.sweep_interval_days > 0,
            "sweep_interval_days must be positive"
        );
        for (name, p) in [
            ("monitored_fraction", self.monitored_fraction),
            ("benign_description_rate", self.benign_description_rate),
            (
                "malicious_client_id_mismatch_rate",
                self.malicious_client_id_mismatch_rate,
            ),
            ("promoter_fraction", self.promoter_fraction),
            ("dual_fraction", self.dual_fraction),
            (
                "stealthy_campaign_fraction",
                self.stealthy_campaign_fraction,
            ),
            ("mpk_detect_prob", self.mpk_detect_prob),
            ("victim_install_prob", self.victim_install_prob),
        ] {
            assert!(
                (0.0..=1.0).contains(&p),
                "{name} must be a probability, got {p}"
            );
        }
        assert!(
            self.promoter_fraction + self.dual_fraction < 1.0,
            "promoter + dual fractions must leave room for promotees"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_configs_validate() {
        ScenarioConfig::paper_scale().validate();
        ScenarioConfig::small().validate();
    }

    #[test]
    fn paper_scale_matches_headline_ratios() {
        let c = ScenarioConfig::paper_scale();
        // 13% malicious prevalence
        let prevalence = c.malicious_apps as f64 / (c.malicious_apps + c.benign_apps) as f64;
        assert!((prevalence - 0.13).abs() < 0.01, "prevalence {prevalence}");
        assert_eq!(c.campaigns, 44);
        assert!((c.colluding_apps() as f64 / c.malicious_apps as f64 - 0.44).abs() < 0.01);
    }

    #[test]
    fn derived_counts() {
        let c = ScenarioConfig::small();
        assert_eq!(c.monitored_users(), 330);
        assert!(c.colluding_apps() >= c.campaigns);
    }

    #[test]
    #[should_panic(expected = "campaigns")]
    fn zero_campaigns_panics() {
        let mut c = ScenarioConfig::small();
        c.campaigns = 0;
        c.validate();
    }

    #[test]
    fn config_roundtrips_through_serde() {
        let c = ScenarioConfig::paper_scale();
        let json = serde_json::to_string(&c).unwrap();
        let back: ScenarioConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
