//! Benign application generation.
//!
//! Calibrated to the benign columns of Figs. 5–9 and 12: summaries are
//! mostly complete, 62% request a single permission (with a tail reaching
//! dozens), 80% redirect to `apps.facebook.com`, profile feeds carry real
//! user chatter, and only 20% ever post links leaving Facebook.

use fb_platform::app::{AppCategory, AppRegistration};
use fb_platform::platform::Platform;
use osn_types::ids::{AppId, UserId};
use osn_types::permission::{Permission, PermissionSet};
use osn_types::url::{Domain, Scheme, Url};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use url_services::wot::WotRegistry;

use crate::config::ScenarioConfig;
use crate::distributions::bounded_pareto;
use crate::names::benign_name;

/// Extra permissions a benign multi-permission app may request, with
/// selection weights shaped after Fig. 6's benign bars (offline_access,
/// email and user_birthday are the big ones after publish_stream).
const BENIGN_EXTRA_PERMISSIONS: &[(Permission, f64)] = &[
    (Permission::OfflineAccess, 0.60),
    (Permission::Email, 0.50),
    (Permission::UserBirthday, 0.45),
    (Permission::PublishActions, 0.30),
    (Permission::UserLocation, 0.25),
    (Permission::UserPhotos, 0.20),
    (Permission::UserLikes, 0.18),
    (Permission::FriendsBirthday, 0.15),
    (Permission::UserAboutMe, 0.12),
    (Permission::FriendsPhotos, 0.10),
    (Permission::UserHometown, 0.08),
    (Permission::ReadStream, 0.08),
    (Permission::UserActivities, 0.06),
    (Permission::FriendsLikes, 0.06),
    (Permission::UserEvents, 0.05),
    (Permission::CreateEvent, 0.04),
    (Permission::RsvpEvent, 0.03),
    (Permission::UserVideos, 0.03),
    (Permission::ManageNotifications, 0.02),
    (Permission::XmppLogin, 0.01),
];

/// Behavioural spec of one generated benign app.
#[derive(Debug, Clone)]
pub struct BenignApp {
    /// Platform id.
    pub id: AppId,
    /// Relative popularity weight (heavy-tailed); drives install counts,
    /// posting volume and MAU.
    pub popularity: f64,
    /// Whether this app ever posts links outside facebook.com (20%).
    pub external_linker: bool,
    /// The external site an external-linker posts (its own website).
    pub site_url: Option<Url>,
    /// Baseline monthly active users contributed by the world outside the
    /// simulated population.
    pub base_mau: f64,
}

/// Benign chatter templates for wall posts.
pub const BENIGN_POST_TEMPLATES: &[&str] = &[
    "just reached a new level, come play with me",
    "harvested my crops, the farm looks great today",
    "scored big in today's tournament",
    "found a rare item, trading anyone?",
    "daily bonus collected, streak going strong",
    "my pet needs visitors, stop by",
    "finished the weekly challenge with friends",
    "new update looks great, loving the changes",
];

/// Profile-feed chatter users leave on benign apps' pages.
const PROFILE_FEED_TEMPLATES: &[&str] = &[
    "love this app, great job",
    "when is the next update coming?",
    "found a bug after the last release",
    "can you add more levels please",
    "thanks for fixing the crash",
];

/// Registers all benign apps and seeds WOT for their domains.
///
/// `users` is needed to plant profile-feed chatter (real posts by real
/// users, which is what the Graph API's `/feed` endpoint serves).
pub fn generate_benign_apps(
    platform: &mut Platform,
    wot: &mut WotRegistry,
    users: &[UserId],
    config: &ScenarioConfig,
) -> Vec<BenignApp> {
    let mut rng = SmallRng::seed_from_u64(config.seed ^ 0xBE4149);
    wot.set_score(
        &Domain::parse("facebook.com").expect("static domain is valid"),
        94,
    );

    let mut apps = Vec::with_capacity(config.benign_apps);
    for i in 0..config.benign_apps {
        let name = benign_name(i);
        let slug = format!("app{i}");

        // The first few names are the FarmVille-class giants; force them to
        // the top of the popularity distribution.
        let popularity = if i < crate::names::POPULAR_BENIGN_NAMES.len() {
            10_000.0 - i as f64
        } else {
            bounded_pareto(&mut rng, 0.8, 1.0, 5_000.0)
        };

        // --- summary fields (Fig. 5 rates) ---
        let description = rng
            .gen_bool(config.benign_description_rate)
            .then(|| format!("{name}: the best way to enjoy {slug} with friends"));
        let company = rng.gen_bool(config.benign_company_rate).then(|| {
            format!(
                "{} Studios",
                name.split_whitespace().next().unwrap_or("App")
            )
        });
        let category = rng
            .gen_bool(config.benign_category_rate)
            .then(|| *AppCategory::ALL.choose(&mut rng).expect("non-empty"));

        // --- permissions (Figs. 6-7) ---
        let mut permissions = PermissionSet::from_iter([Permission::PublishStream]);
        if !rng.gen_bool(config.benign_single_permission_rate) {
            // Multi-permission app: add a heavy-tailed number of extras.
            let extra_target = bounded_pareto(&mut rng, 1.1, 1.0, 30.0) as usize;
            let mut added = 0;
            for &(perm, w) in BENIGN_EXTRA_PERMISSIONS {
                if added >= extra_target {
                    break;
                }
                if rng.gen_bool(w) {
                    permissions.insert(perm);
                    added += 1;
                }
            }
            if added == 0 {
                permissions.insert(Permission::OfflineAccess);
            }
        }

        // --- redirect URI + WOT (Fig. 8) ---
        let (redirect_uri, site_domain) = if rng.gen_bool(config.benign_facebook_redirect_rate) {
            (
                Url::build(
                    Scheme::Https,
                    Domain::parse("apps.facebook.com").expect("static domain is valid"),
                    &slug,
                ),
                None,
            )
        } else {
            let domain = Domain::parse(&format!("{slug}-games.com")).expect("generated domain");
            // own sites mostly reputable, occasionally unknown to WOT
            if rng.gen_bool(0.85) {
                wot.set_score(&domain, rng.gen_range(55..=98));
            }
            (
                Url::build(Scheme::Https, domain.clone(), "start"),
                Some(domain),
            )
        };

        let registration = AppRegistration {
            name: name.clone(),
            description,
            company,
            category,
            permissions,
            redirect_uri,
            client_id_pool: Vec::new(), // honest apps never mismatch (99%)
            crawlable_install_flow: rng.gen_bool(config.benign_crawlable_rate),
        };
        let id = platform
            .register_app(registration)
            .expect("generated registration is within limits");

        // --- profile feed (Fig. 9: most benign apps accumulate posts) ---
        if rng.gen_bool(config.benign_profile_feed_rate) && !users.is_empty() {
            let n_posts = bounded_pareto(&mut rng, 0.9, 1.0, 300.0) as usize;
            for _ in 0..n_posts.min(40) {
                let author = users[rng.gen_range(0..users.len())];
                let msg = PROFILE_FEED_TEMPLATES
                    .choose(&mut rng)
                    .expect("non-empty templates");
                platform
                    .post_on_app_profile(id, author, msg, None)
                    .expect("app and author exist");
            }
        }

        let external_linker = rng.gen_bool(config.benign_external_linker_rate);
        let site_url = external_linker.then(|| {
            let domain = site_domain
                .unwrap_or_else(|| Domain::parse(&format!("{slug}-blog.com")).expect("generated"));
            Url::build(Scheme::Http, domain, "news")
        });

        let base_mau = popularity / 10_000.0 * config.benign_mau.1
            + rng.gen_range(config.benign_mau.0..config.benign_mau.0 * 10.0);

        apps.push(BenignApp {
            id,
            popularity,
            external_linker,
            site_url,
            base_mau,
        });
    }
    apps
}

/// Bootstrap installs: every user installs a popularity-weighted sample of
/// benign apps.
pub fn bootstrap_installs(
    platform: &mut Platform,
    apps: &[BenignApp],
    users: &[UserId],
    config: &ScenarioConfig,
) {
    let mut rng = SmallRng::seed_from_u64(config.seed ^ 0x1457A11);
    // Popularity-weighted alias-free sampling: cumulative weights + binary
    // search. Popularity is heavy-tailed, so the giants get most installs.
    let mut cumulative = Vec::with_capacity(apps.len());
    let mut acc = 0.0;
    for app in apps {
        acc += app.popularity;
        cumulative.push(acc);
    }
    let total = acc;

    // Every app gets at least one user — the study's D-Total only contains
    // apps that posted, and an app with no installs can never post.
    for app in apps {
        let user = users[rng.gen_range(0..users.len())];
        let _ = platform.grant_install(user, app.id);
    }

    for &user in users {
        let n = rng.gen_range(1..=(config.benign_installs_per_user * 2.0) as usize + 1);
        for _ in 0..n {
            let x = rng.gen_range(0.0..total);
            let idx = cumulative.partition_point(|&c| c < x);
            let app = &apps[idx.min(apps.len() - 1)];
            let _ = platform.grant_install(user, app.id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build() -> (Platform, Vec<BenignApp>, ScenarioConfig, WotRegistry) {
        let config = ScenarioConfig::small();
        let mut platform = Platform::new();
        let users = platform.add_users(50);
        let mut wot = WotRegistry::new();
        let apps = generate_benign_apps(&mut platform, &mut wot, &users, &config);
        (platform, apps, config, wot)
    }

    #[test]
    fn generates_configured_count_with_unique_names() {
        let (platform, apps, config, _) = build();
        assert_eq!(apps.len(), config.benign_apps);
        let names: std::collections::HashSet<&str> = apps
            .iter()
            .map(|a| platform.app(a.id).unwrap().name())
            .collect();
        assert_eq!(names.len(), apps.len(), "benign names must be unique");
    }

    #[test]
    fn summary_rates_roughly_match_config() {
        let (platform, apps, config, _) = build();
        let with_desc = apps
            .iter()
            .filter(|a| {
                platform
                    .app(a.id)
                    .unwrap()
                    .registration
                    .description
                    .is_some()
            })
            .count();
        let rate = with_desc as f64 / apps.len() as f64;
        assert!(
            (rate - config.benign_description_rate).abs() < 0.06,
            "description rate {rate}, configured {}",
            config.benign_description_rate
        );
    }

    #[test]
    fn single_permission_rate_matches_and_all_can_post() {
        let (platform, apps, config, _) = build();
        let mut single = 0;
        for a in &apps {
            let perms = platform.app(a.id).unwrap().permissions();
            assert!(perms.contains(Permission::PublishStream));
            if perms.len() == 1 {
                single += 1;
            }
        }
        let rate = single as f64 / apps.len() as f64;
        assert!(
            (rate - config.benign_single_permission_rate).abs() < 0.08,
            "single-permission rate {rate}"
        );
    }

    #[test]
    fn facebook_redirect_rate_and_wot() {
        let (platform, apps, config, wot) = build();
        let fb = apps
            .iter()
            .filter(|a| {
                platform
                    .app(a.id)
                    .unwrap()
                    .registration
                    .redirect_uri
                    .is_facebook()
            })
            .count();
        let rate = fb as f64 / apps.len() as f64;
        assert!(
            (rate - config.benign_facebook_redirect_rate).abs() < 0.07,
            "facebook redirect rate {rate}"
        );
        assert_eq!(
            wot.score(&Domain::parse("apps.facebook.com").unwrap()),
            Some(94)
        );
    }

    #[test]
    fn bootstrap_installs_favour_popular_apps() {
        let (mut platform, apps, config, _) = build();
        let users: Vec<UserId> = platform.all_users().collect();
        bootstrap_installs(&mut platform, &apps, &users, &config);
        let farmville_installs = platform.app(apps[0].id).unwrap().install_count();
        let median_app = &apps[apps.len() / 2];
        let median_installs = platform.app(median_app.id).unwrap().install_count();
        assert!(
            farmville_installs > median_installs,
            "FarmVille ({farmville_installs}) should out-install the median app ({median_installs})"
        );
        let total: usize = apps
            .iter()
            .map(|a| platform.app(a.id).unwrap().install_count())
            .sum();
        assert!(total > 0);
    }

    #[test]
    fn generation_is_deterministic() {
        let (p1, a1, _, _) = build();
        let (p2, a2, _, _) = build();
        assert_eq!(a1.len(), a2.len());
        for (x, y) in a1.iter().zip(&a2) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.popularity, y.popularity);
            assert_eq!(
                p1.app(x.id).unwrap().registration.description,
                p2.app(y.id).unwrap().registration.description
            );
        }
    }
}
