//! Event replay: a finished [`ScenarioWorld`] re-expressed as the ordered
//! event stream an *online* monitor would have seen while the scenario
//! ran.
//!
//! The batch pipeline looks at the world after the fact; the serving layer
//! (`frappe-serve`) instead consumes events one at a time and keeps
//! incremental state. This module derives that stream from a completed
//! world, in a causally-valid deterministic order:
//!
//! 1. **Registrations** — every app ever registered (including ones later
//!    deleted), in `AppId` order. App ids are assigned at registration
//!    time, so id order respects registration order, and every app
//!    precedes all of its posts.
//! 2. **Monitored posts** — the posts MyPageKeeper's subscriber base
//!    observed, in `PostId` order (post ids are dense and chronological).
//!    These are exactly the posts the batch aggregation features are
//!    computed from, so an incremental consumer that counts them
//!    reproduces `extract_aggregation` bit for bit.
//! 3. **Merged crawls** — one event per app in the extended crawl archive
//!    (`AppId` order), carrying the lane-merged crawl result. The crawl
//!    phase follows the monitoring phase in the scenario timeline, so
//!    these come last.
//!
//! Same world ⇒ same event vector; the stream is safe to use in
//! determinism-sensitive tests.

use fb_platform::post::Post;
use osn_types::ids::AppId;

use crate::scenario::{MergedCrawl, ScenarioWorld};

/// One observation from the monitoring vantage point, in replay order.
#[derive(Debug, Clone)]
pub enum ReplayEvent {
    /// An app was registered (name as the platform recorded it).
    AppRegistered {
        /// The app.
        app: AppId,
        /// Its display name (not unique).
        name: String,
    },
    /// A monitored wall post (app-attributed or not).
    MonitoredPost {
        /// The full post as monitored.
        post: Post,
    },
    /// The lane-merged crawl observations for an app.
    CrawlMerged {
        /// The crawled app.
        app: AppId,
        /// Merged crawl lanes (first success per lane).
        crawl: MergedCrawl,
    },
}

/// Derives the ordered event stream for a completed world.
pub fn replay_events(world: &ScenarioWorld) -> Vec<ReplayEvent> {
    let mut events = Vec::new();

    for record in world.platform.apps() {
        events.push(ReplayEvent::AppRegistered {
            app: record.id,
            name: record.name().to_string(),
        });
    }

    let mut monitored: Vec<&Post> = world
        .mpk
        .monitored_posts()
        .iter()
        .filter_map(|&pid| world.platform.post(pid))
        .collect();
    monitored.sort_unstable_by_key(|p| p.id);
    events.extend(
        monitored
            .into_iter()
            .map(|p| ReplayEvent::MonitoredPost { post: p.clone() }),
    );

    for (&app, crawl) in &world.extended_archive {
        events.push(ReplayEvent::CrawlMerged {
            app,
            crawl: crawl.clone(),
        });
    }

    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScenarioConfig;
    use crate::scenario::run_scenario;
    use std::collections::HashSet;

    #[test]
    fn replay_is_deterministic_and_causally_ordered() {
        let config = ScenarioConfig::small();
        let world = run_scenario(&config);
        let events = replay_events(&world);
        let again = replay_events(&run_scenario(&config));
        assert_eq!(events.len(), again.len());

        // registrations strictly precede any post or crawl event
        let first_non_registration = events
            .iter()
            .position(|e| !matches!(e, ReplayEvent::AppRegistered { .. }))
            .unwrap_or(events.len());
        let mut registered = HashSet::new();
        let mut last_post = None;
        for (i, event) in events.iter().enumerate() {
            match event {
                ReplayEvent::AppRegistered { app, .. } => {
                    assert!(i < first_non_registration);
                    registered.insert(*app);
                }
                ReplayEvent::MonitoredPost { post } => {
                    if let Some(app) = post.app {
                        assert!(
                            registered.contains(&app),
                            "post before registration of {app}"
                        );
                    }
                    if let Some(prev) = last_post {
                        assert!(post.id > prev, "posts must replay in id order");
                    }
                    last_post = Some(post.id);
                }
                ReplayEvent::CrawlMerged { app, .. } => {
                    assert!(registered.contains(app));
                }
            }
        }

        // the stream carries exactly the monitored posts
        let post_count = events
            .iter()
            .filter(|e| matches!(e, ReplayEvent::MonitoredPost { .. }))
            .count();
        assert_eq!(post_count, world.mpk.monitored_posts().len());

        // one crawl event per extended-archive entry
        let crawl_count = events
            .iter()
            .filter(|e| matches!(e, ReplayEvent::CrawlMerged { .. }))
            .count();
        assert_eq!(crawl_count, world.extended_archive.len());
    }
}
