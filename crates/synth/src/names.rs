//! App-name pools.
//!
//! The malicious pool is seeded with the actual campaign names the paper
//! prints (Table 2, §5.3, §6.1), including the typosquats ('FarmVile') and
//! versioned families ('Profile Watchers v4.32'). The benign pool is the
//! paper's named popular apps plus a combinatorial generator of distinct,
//! plausible names (benign names are overwhelmingly unique — Fig. 11).

use rand::Rng;

/// Popular benign apps named in the paper (D-Sample's "most popular benign
/// apps", plus the Table 9 piggybacking victims).
pub const POPULAR_BENIGN_NAMES: &[&str] = &[
    "FarmVille",
    "Facebook for iPhone",
    "Mobile",
    "Facebook for Android",
    "Zoo World",
    "Links",
    "CityVille",
    "Mafia Wars",
    "Fortune Cookie",
    "Words With Friends",
];

/// Malicious campaign base names seen in the paper.
pub const MALICIOUS_BASE_NAMES: &[&str] = &[
    "The App",
    "What Does Your Name Mean?",
    "Free Phone Calls",
    "WhosStalking?",
    "Past Life",
    "Death Predictor",
    "Future Teller",
    "whats my name means",
    "What ur name implies!!!",
    "Name meaning finder",
    "Name meaning",
    "Profile Watchers",
    "How long have you spent logged in?",
    "What is the sexiest thing about you?",
    "Which cartoon character are you",
    "Pr0file stalker",
    "The Pink Facebook",
    "La App",
    "Who viewed your profile?",
    "Your Top Stalkers",
    "See who blocked you",
    "Free 450 Credits",
];

/// Typosquats of popular apps, as found by the paper's validation ("we
/// found five apps named 'FarmVile'").
pub const TYPOSQUAT_NAMES: &[&str] = &[
    "FarmVile",
    "Fortune Cookie", // exact copy of a popular benign name (§4.2.1)
    "CityVile",
    "Mafia Warz",
    "FarmVille Bonus",
];

/// Word lists for generating distinct benign names.
const ADJECTIVES: &[&str] = &[
    "Happy", "Daily", "Super", "Magic", "Pocket", "Social", "Crazy", "Epic", "Tiny", "Golden",
    "Lucky", "Turbo", "Pixel", "Cosmic", "Jolly", "Swift", "Brave", "Clever", "Sunny", "Royal",
];
const NOUNS: &[&str] = &[
    "Farm", "Quiz", "Poker", "Aquarium", "Kitchen", "Racing", "Trivia", "Garden", "Bingo",
    "Puzzle", "Chess", "Safari", "Bakery", "Castle", "Island", "Galaxy", "Studio", "Pets", "Words",
    "Tycoon",
];
const SUFFIXES: &[&str] = &[
    "", " World", " Saga", " Mania", " Party", " Life", " Wars", " Story", " Quest", " Blitz",
];

/// Syllables for coined one-word app names ("Zobiq", "Vantopia", …).
/// Real benign names mix dictionary words with coinages; the coinages keep
/// the name population *pairwise dissimilar*, which is what Fig. 10's
/// benign curve measures (benign names barely cluster even at 0.7).
const SYL_A: &[&str] = &[
    "Zo", "Va", "Ki", "Lu", "Mer", "Tan", "Bru", "Fi", "Gor", "Hap", "Jen", "Kel", "Nim", "Oli",
    "Pex", "Qua", "Rud", "Sel", "Tri", "Wix",
];
const SYL_B: &[&str] = &[
    "biq", "lor", "mex", "dan", "ric", "sto", "vel", "zun", "gra", "pim", "tos", "wak", "nif",
    "cho", "bel", "dus", "fra", "gim", "hol", "jat",
];
const SYL_C: &[&str] = &["", "ia", "ly", "zy", "go", "eo", "ix", "us", "oo", "ster"];

/// Deterministically generates the `i`-th distinct benign app name.
///
/// The first [`POPULAR_BENIGN_NAMES`] entries are the paper's named apps.
/// Beyond those, names alternate between word combinations and coined
/// pseudo-words, giving a population whose pairwise Damerau–Levenshtein
/// similarity stays low (benign names are overwhelmingly unique and barely
/// merge even at similarity threshold 0.7 — §4.2.1).
pub fn benign_name(i: usize) -> String {
    if i < POPULAR_BENIGN_NAMES.len() {
        return POPULAR_BENIGN_NAMES[i].to_string();
    }
    let k = i - POPULAR_BENIGN_NAMES.len();
    let style = k % 2;
    let k = k / 2;
    if style == 0 {
        // word combo: adjective + noun (+ suffix + round number as needed)
        let combo = k % (ADJECTIVES.len() * NOUNS.len() * SUFFIXES.len());
        let round = k / (ADJECTIVES.len() * NOUNS.len() * SUFFIXES.len());
        let adj = ADJECTIVES[combo % ADJECTIVES.len()];
        let noun = NOUNS[(combo / ADJECTIVES.len()) % NOUNS.len()];
        let suffix = SUFFIXES[combo / (ADJECTIVES.len() * NOUNS.len())];
        if round == 0 {
            format!("{adj} {noun}{suffix}")
        } else {
            format!("{adj} {noun}{suffix} {}", round + 1)
        }
    } else {
        // coined word: syllable triple (+ numeric tail beyond the space)
        let combo = k % (SYL_A.len() * SYL_B.len() * SYL_C.len());
        let round = k / (SYL_A.len() * SYL_B.len() * SYL_C.len());
        let a = SYL_A[combo % SYL_A.len()];
        let b = SYL_B[(combo / SYL_A.len()) % SYL_B.len()];
        let c = SYL_C[combo / (SYL_A.len() * SYL_B.len())];
        if round == 0 {
            format!("{a}{b}{c}")
        } else {
            format!("{a}{b}{c} {}", round + 1)
        }
    }
}

/// Picks a malicious base name for campaign `c`, cycling through the pool
/// (campaign count can exceed the pool; several campaigns sharing a base
/// name mirrors the paper's cross-campaign name reuse).
pub fn malicious_base_name(c: usize) -> &'static str {
    MALICIOUS_BASE_NAMES[c % MALICIOUS_BASE_NAMES.len()]
}

/// Derives an app name within a campaign: the base name verbatim for most
/// apps, a versioned variant (`"<base> v<k>"`) when the campaign uses
/// version families.
pub fn campaign_app_name<R: Rng + ?Sized>(
    rng: &mut R,
    base: &str,
    versioned: bool,
    index_in_campaign: usize,
) -> String {
    if versioned {
        let major = index_in_campaign + 1;
        if rng.gen_bool(0.5) {
            format!("{base} v{major}")
        } else {
            format!("{base} v{major}.{}", rng.gen_range(0..100))
        }
    } else {
        base.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    #[test]
    fn benign_names_are_distinct_at_scale() {
        let n = 50_000;
        let names: HashSet<String> = (0..n).map(benign_name).collect();
        assert_eq!(names.len(), n, "benign names must be unique");
    }

    #[test]
    fn first_benign_names_are_the_papers() {
        assert_eq!(benign_name(0), "FarmVille");
        assert_eq!(benign_name(3), "Facebook for Android");
    }

    #[test]
    fn malicious_base_cycles() {
        assert_eq!(malicious_base_name(0), "The App");
        assert_eq!(malicious_base_name(MALICIOUS_BASE_NAMES.len()), "The App");
    }

    #[test]
    fn versioned_names_share_a_base() {
        let mut rng = SmallRng::seed_from_u64(1);
        let a = campaign_app_name(&mut rng, "Profile Watchers", true, 0);
        let b = campaign_app_name(&mut rng, "Profile Watchers", true, 1);
        assert!(a.starts_with("Profile Watchers v"));
        assert!(b.starts_with("Profile Watchers v"));
        assert_ne!(a, b);
        let plain = campaign_app_name(&mut rng, "The App", false, 5);
        assert_eq!(plain, "The App");
    }

    #[test]
    fn versioned_names_parse_as_version_families() {
        // the text-analysis normalizer must recognise what we generate
        let mut rng = SmallRng::seed_from_u64(2);
        for i in 0..20 {
            let name = campaign_app_name(&mut rng, "Profile Watchers", true, i);
            let split = text_analysis::split_version_suffix(&name);
            assert_eq!(split.base, "profile watchers", "from {name}");
            assert!(split.version.is_some(), "from {name}");
        }
    }

    #[test]
    fn typosquats_are_near_popular_names() {
        // 'FarmVile' must be within similarity 0.85 of 'FarmVille'
        let sim = text_analysis::name_similarity("FarmVile", "FarmVille");
        assert!(sim >= 0.85, "got {sim}");
    }
}
