//! User population and friendship graph.
//!
//! The paper's propagation story runs over the social graph: "an infected
//! user jeopardizes the safety of all its friends". A sparse random graph
//! with the configured mean degree is entirely sufficient — none of the
//! measured quantities depend on higher-order social structure, only on
//! victims having friends to expose.

use fb_platform::platform::Platform;
use osn_types::ids::UserId;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::config::ScenarioConfig;

/// The generated population.
#[derive(Debug, Clone)]
pub struct Population {
    /// Every user.
    pub users: Vec<UserId>,
    /// The MyPageKeeper subscribers (a random subset).
    pub monitored: Vec<UserId>,
}

/// Creates users, wires a random friendship graph with the configured mean
/// degree, and picks the monitored subset.
pub fn generate_population(platform: &mut Platform, config: &ScenarioConfig) -> Population {
    let mut rng = SmallRng::seed_from_u64(config.seed ^ 0x504F_5055);
    let users = platform.add_users(config.users);

    // G(n, m) with m = n * mean_degree / 2 undirected edges.
    let edges = config.users * config.mean_friends / 2;
    for _ in 0..edges {
        let a = users[rng.gen_range(0..users.len())];
        let b = users[rng.gen_range(0..users.len())];
        platform
            .befriend(a, b)
            .expect("users were just created, befriend cannot fail");
    }

    let mut shuffled = users.clone();
    shuffled.shuffle(&mut rng);
    let monitored = shuffled[..config.monitored_users().min(shuffled.len())].to_vec();

    Population { users, monitored }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_has_expected_shape() {
        let config = ScenarioConfig::small();
        let mut platform = Platform::new();
        let pop = generate_population(&mut platform, &config);
        assert_eq!(pop.users.len(), config.users);
        assert_eq!(pop.monitored.len(), config.monitored_users());
        assert_eq!(platform.user_count(), config.users);

        // mean degree in the right ballpark (self-loops/dups shave a bit)
        let total_degree: usize = pop
            .users
            .iter()
            .map(|&u| platform.friends_of(u).unwrap().len())
            .sum();
        let mean = total_degree as f64 / pop.users.len() as f64;
        assert!(
            (config.mean_friends as f64 * 0.7..=config.mean_friends as f64 * 1.1).contains(&mean),
            "mean degree {mean}, configured {}",
            config.mean_friends
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let config = ScenarioConfig::small();
        let mut p1 = Platform::new();
        let m1 = generate_population(&mut p1, &config).monitored;
        let mut p2 = Platform::new();
        let m2 = generate_population(&mut p2, &config).monitored;
        assert_eq!(m1, m2);
    }

    #[test]
    fn monitored_is_a_subset() {
        let config = ScenarioConfig::small();
        let mut platform = Platform::new();
        let pop = generate_population(&mut platform, &config);
        let all: std::collections::HashSet<_> = pop.users.iter().collect();
        assert!(pop.monitored.iter().all(|u| all.contains(u)));
    }
}
