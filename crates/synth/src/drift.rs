//! Drift scenarios: the §7 adaptation attack as a workload.
//!
//! §7 of the paper asks what happens *after* FRAppE deploys: hackers can
//! cheaply fill in the summary fields the classifier keys on (add a
//! description, a company, a category, seed the profile feed) while the
//! robust features — permission count, client-ID mismatch, redirect
//! reputation — are structurally expensive to fake. These two configs
//! make that forecast a reproducible workload for the lifecycle layer's
//! drift detector:
//!
//! * [`stationary_config`] — the standard small world with a caller
//!   -chosen seed: the same population the baseline was fitted on, drawn
//!   again. A drift detector must stay quiet here.
//! * [`drifting_config`] — the same world after the summary-filling
//!   adaptation: malicious apps now configure their summary fields at
//!   near-benign rates, so the obfuscatable lanes' distributions shift
//!   hard while the robust lanes stay put. A drift detector must fire
//!   here, and only on the obfuscatable lanes.

use crate::config::ScenarioConfig;

/// The standard small world under a caller-chosen seed — the "nothing
/// changed" control arm of a drift experiment.
pub fn stationary_config(seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        seed,
        ..ScenarioConfig::small()
    }
}

/// The small world after the adaptation §7 forecasts: a surge of new
/// campaigns (three times the malicious app mass, twice the campaigns)
/// whose apps fill in description/company/category and seed their
/// profile feeds at near-benign rates. The per-app *robust* feature
/// rates — single-permission, client-ID mismatch — are untouched: the
/// shift a detector sees is the population moving, exactly the kind of
/// change a frozen model silently degrades under.
pub fn drifting_config(seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        seed,
        malicious_apps: 360,
        campaigns: 16,
        malicious_description_rate: 0.85,
        malicious_company_rate: 0.70,
        malicious_category_rate: 0.80,
        malicious_profile_feed_rate: 0.70,
        ..ScenarioConfig::small()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_configs_validate() {
        stationary_config(7).validate();
        drifting_config(7).validate();
    }

    #[test]
    fn drifting_touches_only_obfuscatable_knobs() {
        let base = stationary_config(9);
        let drifted = drifting_config(9);
        assert!(drifted.malicious_apps > 2 * base.malicious_apps, "surge");
        assert!(drifted.malicious_description_rate > base.malicious_description_rate);
        assert!(drifted.malicious_profile_feed_rate > base.malicious_profile_feed_rate);
        // Robust lanes must be untouched — drift should not leak into them.
        assert_eq!(
            drifted.malicious_single_permission_rate,
            base.malicious_single_permission_rate
        );
        assert_eq!(
            drifted.malicious_client_id_mismatch_rate,
            base.malicious_client_id_mismatch_rate
        );
    }
}
