//! Drift scenarios: the §7 adaptation attack as a workload.
//!
//! §7 of the paper asks what happens *after* FRAppE deploys: hackers can
//! cheaply fill in the summary fields the classifier keys on (add a
//! description, a company, a category, seed the profile feed) while the
//! robust features — permission count, client-ID mismatch, redirect
//! reputation — are structurally expensive to fake. The knobs of that
//! forecast live in [`EvasionKnobs`], one public, documented source of
//! truth shared by the drift-detector tests here and by the adaptive
//! strategies in `frappe-gauntlet`; two canned configs package it for
//! the lifecycle layer's drift detector:
//!
//! * [`stationary_config`] — the standard small world with a caller
//!   -chosen seed: the same population the baseline was fitted on, drawn
//!   again. A drift detector must stay quiet here.
//! * [`drifting_config`] — the same world after the summary-filling
//!   adaptation: malicious apps now configure their summary fields at
//!   near-benign rates, so the obfuscatable lanes' distributions shift
//!   hard while the robust lanes stay put. A drift detector must fire
//!   here, and only on the obfuscatable lanes.

use serde::{Deserialize, Serialize};

use crate::config::ScenarioConfig;

/// The §7 evasion forecast as explicit, reusable knobs.
///
/// These used to be hard-coded inside [`drifting_config`]; they are
/// public so that adaptive attacker strategies (the `frappe-gauntlet`
/// scenario engine) and the drift-detection tests escalate toward the
/// *same* ceilings — one source of truth for "how far can a hacker
/// cheaply push each obfuscatable lane".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvasionKnobs {
    /// Summary-filling ceiling for the description field. §7: adding a
    /// description costs the hacker nothing, so adapted campaigns
    /// approach the benign rate (93%) without quite matching its
    /// organic variety — the forecast models them plateauing at 85%.
    pub description_fill_rate: f64,
    /// Summary-filling ceiling for the company field (benign: 81%).
    pub company_fill_rate: f64,
    /// Summary-filling ceiling for the category field (benign: 90%).
    pub category_fill_rate: f64,
    /// Ceiling for seeding the app profile feed with posts (benign:
    /// 85% have a non-empty feed; the baseline malicious rate is 3%).
    pub profile_feed_fill_rate: f64,
    /// Campaign-surge multiplier on the malicious app mass: the adapted
    /// wave arrives as `surge_app_multiplier ×` the baseline malicious
    /// population (the drift a frozen model silently degrades under).
    pub surge_app_multiplier: u32,
    /// Surge multiplier on the number of distinct campaigns.
    pub surge_campaign_multiplier: u32,
    /// Name-mimicry budget: the largest Damerau–Levenshtein distance
    /// from a popular benign name that still reads as that name to a
    /// victim. The paper's validation found typosquats at distance 1
    /// ('FarmVile'); 2 keeps 'Mafia Warz'-style doubles in scope. An
    /// escalating mimic moves from this distance *down* toward exact
    /// copies when flagged.
    pub mimicry_max_edit_distance: usize,
}

impl EvasionKnobs {
    /// The paper-§7 forecast values (the rates [`drifting_config`] has
    /// always used, now named).
    pub fn paper_forecast() -> Self {
        EvasionKnobs {
            description_fill_rate: 0.85,
            company_fill_rate: 0.70,
            category_fill_rate: 0.80,
            profile_feed_fill_rate: 0.70,
            surge_app_multiplier: 3,
            surge_campaign_multiplier: 2,
            mimicry_max_edit_distance: 2,
        }
    }
}

impl Default for EvasionKnobs {
    fn default() -> Self {
        Self::paper_forecast()
    }
}

/// The standard small world under a caller-chosen seed — the "nothing
/// changed" control arm of a drift experiment.
pub fn stationary_config(seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        seed,
        ..ScenarioConfig::small()
    }
}

/// [`drifting_config`] with explicit [`EvasionKnobs`]: the small world
/// after a summary-filling adaptation at the given ceilings, with the
/// malicious mass and campaign count surged by the knobs' multipliers.
/// The per-app *robust* feature rates — single-permission, client-ID
/// mismatch — are untouched: the shift a detector sees is the population
/// moving, exactly the kind of change a frozen model silently degrades
/// under.
pub fn drifting_config_with(seed: u64, knobs: &EvasionKnobs) -> ScenarioConfig {
    let base = ScenarioConfig::small();
    ScenarioConfig {
        seed,
        malicious_apps: base.malicious_apps * knobs.surge_app_multiplier as usize,
        campaigns: base.campaigns * knobs.surge_campaign_multiplier as usize,
        malicious_description_rate: knobs.description_fill_rate,
        malicious_company_rate: knobs.company_fill_rate,
        malicious_category_rate: knobs.category_fill_rate,
        malicious_profile_feed_rate: knobs.profile_feed_fill_rate,
        ..base
    }
}

/// The small world after the adaptation §7 forecasts, at the
/// [`EvasionKnobs::paper_forecast`] ceilings: a surge of new campaigns
/// whose apps fill in description/company/category and seed their
/// profile feeds at near-benign rates.
pub fn drifting_config(seed: u64) -> ScenarioConfig {
    drifting_config_with(seed, &EvasionKnobs::paper_forecast())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_configs_validate() {
        stationary_config(7).validate();
        drifting_config(7).validate();
    }

    #[test]
    fn drifting_touches_only_obfuscatable_knobs() {
        let base = stationary_config(9);
        let drifted = drifting_config(9);
        assert!(drifted.malicious_apps > 2 * base.malicious_apps, "surge");
        assert!(drifted.malicious_description_rate > base.malicious_description_rate);
        assert!(drifted.malicious_profile_feed_rate > base.malicious_profile_feed_rate);
        // Robust lanes must be untouched — drift should not leak into them.
        assert_eq!(
            drifted.malicious_single_permission_rate,
            base.malicious_single_permission_rate
        );
        assert_eq!(
            drifted.malicious_client_id_mismatch_rate,
            base.malicious_client_id_mismatch_rate
        );
    }

    #[test]
    fn drifting_config_is_the_paper_forecast_knobs() {
        // One source of truth: the canned config and the public knobs
        // must never diverge.
        let knobs = EvasionKnobs::paper_forecast();
        let base = ScenarioConfig::small();
        let drifted = drifting_config(11);
        assert_eq!(
            drifted.malicious_description_rate,
            knobs.description_fill_rate
        );
        assert_eq!(drifted.malicious_company_rate, knobs.company_fill_rate);
        assert_eq!(drifted.malicious_category_rate, knobs.category_fill_rate);
        assert_eq!(
            drifted.malicious_profile_feed_rate,
            knobs.profile_feed_fill_rate
        );
        assert_eq!(
            drifted.malicious_apps,
            base.malicious_apps * knobs.surge_app_multiplier as usize
        );
        assert_eq!(
            drifted.campaigns,
            base.campaigns * knobs.surge_campaign_multiplier as usize
        );
        assert_eq!(drifted, drifting_config_with(11, &knobs));
    }

    #[test]
    fn knobs_roundtrip_through_serde() {
        let knobs = EvasionKnobs::paper_forecast();
        let json = serde_json::to_string(&knobs).unwrap();
        let back: EvasionKnobs = serde_json::from_str(&json).unwrap();
        assert_eq!(knobs, back);
    }
}
