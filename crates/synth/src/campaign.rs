//! Hacker campaign (AppNet) generation.
//!
//! One campaign models one hacker operation: a set of apps sharing a small
//! pool of names (§4.2.1), hosted on a handful of domains (Table 3,
//! §4.1.3), wired into a promotion structure (promoters / duals /
//! promotees, Fig. 13) optionally fronted by indirection websites (§6.1),
//! with client-ID pools so installs rotate across siblings (§4.1.4).
//!
//! Campaign sizes follow a power-law partition, reproducing the paper's
//! component-size profile (a few huge AppNets, a long tail). A configurable
//! fraction of campaigns is *stealthy*: their URLs mostly evade
//! MyPageKeeper, so their apps end up unlabeled — the population FRAppE
//! discovers in §5.3 and the paper validates in Table 8.

use std::collections::{BTreeMap, HashMap};

use fb_platform::app::{AppCategory, AppRegistration};
use fb_platform::platform::Platform;
use osn_types::ids::{AppId, CampaignId};
use osn_types::permission::{Permission, PermissionSet};
use osn_types::url::{Domain, Scheme, Url};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use url_services::redirector::IndirectionSite;
use url_services::shortener::Shortener;
use url_services::wot::WotRegistry;

use crate::config::ScenarioConfig;
use crate::distributions::{log_uniform, power_law_partition};
use crate::names::{campaign_app_name, malicious_base_name, TYPOSQUAT_NAMES};

/// The five hosting domains the paper names in Table 3, in ascending order
/// of hosted apps (34, 53, 82, 96, 138).
pub const PAPER_HOSTING_DOMAINS: &[&str] = &[
    "thenamemeans3.com",
    "fastfreeupdates.com",
    "wikiworldmedia.com",
    "technicalyard.com",
    "thenamemeans2.com",
];

/// Scam landing-page hosts seen in the paper's examples (§4.1.5, Table 9).
const SCAM_LANDING_HOSTS: &[&str] = &[
    "2000forfree.blogspot.com",
    "free-offers-sites.blogspot.com",
    "offers5000credit.blogspot.com",
    "free450offer.blogspot.com",
    "ffreerechargeindia.blogspot.com",
];

/// Planned role of a malicious app inside its campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlannedRole {
    /// Posts promotion links, never promoted itself.
    Promoter,
    /// Both promotes and is promoted (the dense campaign core).
    Dual,
    /// Promoted by others; posts scam links only.
    Promotee,
    /// Not part of any collusion structure.
    Standalone,
}

/// Per-app behavioural spec.
#[derive(Debug, Clone)]
pub struct MaliciousApp {
    /// Platform id.
    pub id: AppId,
    /// Owning campaign.
    pub campaign: CampaignId,
    /// Planned role.
    pub role: PlannedRole,
    /// Day the hacker activates the app (staggered across the trace).
    pub activation_day: u32,
    /// Baseline external MAU (Fig. 4 calibration).
    pub base_mau: f64,
    /// Total clicks this app's shortened links will accumulate from the
    /// whole web over its lifetime (Fig. 3 calibration); `None` when the
    /// app never posts bit.ly links.
    pub click_budget: Option<u64>,
}

/// One generated campaign.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Campaign id.
    pub id: CampaignId,
    /// Apps, in registration order.
    pub apps: Vec<AppId>,
    /// Whether this campaign's URLs mostly evade MyPageKeeper.
    pub stealthy: bool,
    /// Scam landing URLs (full form).
    pub scam_urls: Vec<Url>,
    /// Shortened forms of the scam URLs (what actually goes in posts).
    pub shortened_scam_urls: Vec<Url>,
    /// Planned direct-promotion edges: app → targets it will link to.
    pub promotion_plan: HashMap<AppId, Vec<AppId>>,
    /// Index into the generated site list, if this campaign promotes
    /// through an indirection website.
    pub indirection_site: Option<usize>,
    /// Shortened entry link of the indirection site.
    pub shortened_site_entry: Option<Url>,
    /// Apps allowed to post the indirection entry link. Only the
    /// star-shaped (core-less) cells route through sites; the same-name
    /// cliques promote directly — which is what keeps the paper's Fig. 14
    /// clustering mass high despite 103 promotion-star websites.
    pub site_users: Vec<AppId>,
}

/// Everything the malicious generator produces.
#[derive(Debug, Clone)]
pub struct MaliciousWorld {
    /// Colluding campaigns (size ≥ 2) followed by standalone groups.
    pub campaigns: Vec<Campaign>,
    /// Per-app specs (ordered, so iteration is deterministic).
    pub apps: BTreeMap<AppId, MaliciousApp>,
    /// Indirection websites, indexable by `Campaign::indirection_site`.
    pub sites: Vec<IndirectionSite>,
    /// All malicious hosting domains (paper's five first).
    pub hosting_domains: Vec<Domain>,
}

impl MaliciousWorld {
    /// Ids of all malicious apps.
    pub fn app_ids(&self) -> Vec<AppId> {
        let mut v: Vec<AppId> = self.apps.keys().copied().collect();
        v.sort_unstable();
        v
    }
}

/// Scam post templates (with paper-verbatim entries from Table 9 / §3).
pub const SCAM_POST_TEMPLATES: &[&str] = &[
    "WOW I just got 5000 Facebook Credits for Free",
    "Get your FREE 450 FACEBOOK CREDITS",
    "OMG check who viewed your profile",
    "I just won a free iPad, claim yours before the offer ends",
    "WOW! I Just Got a Recharge of Rs 500.",
    "Hurry, limited free gift cards for the first 1000 fans",
    "See what your name really means, shocking results",
];

/// Promotion post templates.
pub const PROMO_POST_TEMPLATES: &[&str] = &[
    "this app is unbelievable, install it now",
    "found the best new app, you have to try it",
    "everyone is using this, dont miss out",
];

fn pick_hosting_domain<R: Rng + ?Sized>(rng: &mut R, domains: &[Domain]) -> Domain {
    // Weight the paper's five named domains to carry ~83% of apps
    // (Table 3), the generated tail the rest.
    let named = PAPER_HOSTING_DOMAINS.len().min(domains.len());
    if named == domains.len() || rng.gen_bool(0.83) {
        // Skew within the top five toward the biggest (thenamemeans2.com):
        // weights proportional to the paper's counts 34/53/82/96/138.
        let weights = [34.0, 53.0, 82.0, 96.0, 138.0];
        let total: f64 = weights[..named].iter().sum();
        let mut x = rng.gen_range(0.0..total);
        for (i, w) in weights[..named].iter().enumerate() {
            if x < *w {
                return domains[i].clone();
            }
            x -= w;
        }
        domains[named - 1].clone()
    } else {
        domains[rng.gen_range(named..domains.len())].clone()
    }
}

/// Generates all malicious apps, campaigns and indirection sites; registers
/// apps on the platform, seeds WOT, and pre-shortens campaign links.
pub fn generate_malicious(
    platform: &mut Platform,
    wot: &mut WotRegistry,
    shortener: &mut Shortener,
    config: &ScenarioConfig,
) -> MaliciousWorld {
    let mut rng = SmallRng::seed_from_u64(config.seed ^ 0x3A11C0);

    // --- hosting domains + WOT (Fig. 8: 80% unknown, rest < 5) -----------
    let mut hosting_domains: Vec<Domain> = PAPER_HOSTING_DOMAINS
        .iter()
        .map(|d| Domain::parse(d).expect("static domain is valid"))
        .collect();
    for i in 0..config.extra_hosting_domains {
        hosting_domains
            .push(Domain::parse(&format!("freeapps-host{i}.info")).expect("generated domain"));
    }
    // Exactly one in five hosting domains has (poor) WOT data; the other
    // 80% are unknown to WOT, matching Fig. 8's malicious curve.
    for (i, d) in hosting_domains.iter().enumerate() {
        if i % 5 == 2 {
            wot.set_score(d, rng.gen_range(0..5));
        }
    }

    // --- campaign sizing ---------------------------------------------------
    let colluding = config.colluding_apps();
    let standalone = config.malicious_apps - colluding;
    let mut sizes = power_law_partition(&mut rng, colluding, config.campaigns, 0.75);
    // Standalone apps: groups of ~5 sharing a name (the paper's "on
    // average, 5 malicious apps have the same name" holds across the board).
    let mut standalone_groups = Vec::new();
    let mut left = standalone;
    // First standalone group: the typosquats (5 'FarmVile's — §5.3).
    if left >= config.typosquat_count && config.typosquat_count > 0 {
        standalone_groups.push(config.typosquat_count);
        left -= config.typosquat_count;
    }
    while left > 0 {
        let g = rng.gen_range(1..=8usize).min(left);
        standalone_groups.push(g);
        left -= g;
    }
    sizes.extend(standalone_groups.iter().copied());
    let colluding_campaigns = config.campaigns;

    // --- per-campaign generation -------------------------------------------
    let mut campaigns = Vec::new();
    let mut apps: BTreeMap<AppId, MaliciousApp> = BTreeMap::new();
    let mut sites: Vec<IndirectionSite> = Vec::new();

    // Indirection sites go to the largest campaigns.
    let site_campaigns: Vec<usize> =
        (0..config.indirection_sites.min(colluding_campaigns)).collect();

    for (c_idx, &size) in sizes.iter().enumerate() {
        let cid = CampaignId(c_idx as u64);
        let is_colluding = c_idx < colluding_campaigns && size >= 2;
        let is_typosquat_pre =
            c_idx == colluding_campaigns && config.typosquat_count > 0 && standalone > 0;
        // The typosquat group is always stealthy: the paper only discovered
        // the five 'FarmVile's through FRAppE's validation, so they must
        // not be pre-labelled by MyPageKeeper.
        let stealthy = is_typosquat_pre || rng.gen_bool(config.stealthy_campaign_fraction);
        let versioned = rng.gen_bool(config.versioned_campaign_rate);
        let is_typosquat_group = is_typosquat_pre;

        // --- cells: same-name mutual-promotion groups -------------------
        // A campaign is built from *cells*: groups of apps sharing one
        // name whose members cross-promote. This is the structure behind
        // the paper's Fig. 15 ('Death Predictor': 26 neighbours, 22 with
        // the same name, clustering coefficient 0.87) and behind Fig. 14's
        // heavy high-LCC mass. Cells are mostly small (the "avg 5 apps per
        // name" of §4.2.1) with an occasional large one.
        let mut cell_of: Vec<usize> = Vec::with_capacity(size);
        {
            let mut cell = 0usize;
            let mut remaining = size;
            while remaining > 0 {
                let c = if rng.gen_bool(0.15) {
                    rng.gen_range(15..=28usize)
                } else {
                    rng.gen_range(3..=9)
                }
                .min(remaining);
                for _ in 0..c {
                    cell_of.push(cell);
                }
                cell += 1;
                remaining -= c;
            }
        }
        let n_cells = cell_of.last().map_or(0, |c| c + 1);
        let cell_names: Vec<String> = (0..n_cells)
            .map(|cl| {
                if is_typosquat_group {
                    TYPOSQUAT_NAMES[0].to_string()
                } else if c_idx == 0 {
                    // the 'The App' mega-cluster: one name campaign-wide
                    malicious_base_name(0).to_string()
                } else {
                    malicious_base_name(1 + c_idx * 3 + cl * 7).to_string()
                }
            })
            .collect();
        // 45% of cells have no dual core: their promotees hang off
        // unconnected promoters, which supplies Fig. 14's low-LCC mass.
        let cell_has_core: Vec<bool> = (0..n_cells).map(|_| rng.gen_bool(0.55)).collect();

        // Register apps.
        let mut app_ids = Vec::with_capacity(size);
        let campaign_domain = pick_hosting_domain(&mut rng, &hosting_domains);
        for k in 0..size {
            let base = &cell_names[cell_of[k]];
            let name = campaign_app_name(&mut rng, base, versioned, k);
            let description = rng
                .gen_bool(config.malicious_description_rate)
                .then(|| format!("{name} - try it now"));
            let company = rng
                .gen_bool(config.malicious_company_rate)
                .then(|| "AppWorks".to_string());
            let category = rng
                .gen_bool(config.malicious_category_rate)
                .then(|| *AppCategory::ALL.choose(&mut rng).expect("non-empty"));

            let mut permissions = PermissionSet::from_iter([Permission::PublishStream]);
            if !rng.gen_bool(config.malicious_single_permission_rate) {
                permissions.insert(if rng.gen_bool(0.6) {
                    Permission::OfflineAccess
                } else {
                    Permission::Email
                });
            }

            // Most campaign apps share the campaign's hosting domain
            // (Table 3 concentration); a few stray.
            let domain = if rng.gen_bool(0.8) {
                campaign_domain.clone()
            } else {
                pick_hosting_domain(&mut rng, &hosting_domains)
            };
            let redirect_uri = Url::build(Scheme::Http, domain, &format!("inst/c{c_idx}a{k}"));

            let registration = AppRegistration {
                name,
                description,
                company,
                category,
                permissions,
                redirect_uri,
                client_id_pool: Vec::new(), // wired after all ids exist
                crawlable_install_flow: rng.gen_bool(config.malicious_crawlable_rate),
            };
            let id = platform
                .register_app(registration)
                .expect("generated registration is within limits");
            app_ids.push(id);
        }

        // Client-ID pools: siblings within the campaign (§4.1.4). Needs a
        // second pass because pool members must exist first.
        if app_ids.len() >= 2 {
            for &id in &app_ids {
                if rng.gen_bool(config.malicious_client_id_mismatch_rate) {
                    let mut pool: Vec<AppId> =
                        app_ids.iter().copied().filter(|&s| s != id).collect();
                    pool.shuffle(&mut rng);
                    pool.truncate(rng.gen_range(2..=5usize).min(pool.len()));
                    if !pool.is_empty() {
                        set_client_pool(platform, id, pool);
                    }
                }
            }
        }

        // Role assignment + promotion plan, cell by cell.
        let mut roles: HashMap<AppId, PlannedRole> = HashMap::new();
        let mut promotion_plan: HashMap<AppId, Vec<AppId>> = HashMap::new();
        let mut promotees: Vec<AppId> = Vec::new(); // campaign-wide, for sites
        let mut coreless_promoters: Vec<AppId> = Vec::new();
        let mut coreless_promotees: Vec<AppId> = Vec::new();
        let mut all_duals: Vec<AppId> = Vec::new();

        if !is_colluding {
            for &id in &app_ids {
                roles.insert(id, PlannedRole::Standalone);
            }
        } else {
            let members_of = |cell: usize| -> Vec<AppId> {
                app_ids
                    .iter()
                    .enumerate()
                    .filter(|(k, _)| cell_of[*k] == cell)
                    .map(|(_, &id)| id)
                    .collect()
            };
            for (cell, &has_core) in cell_has_core.iter().enumerate() {
                let members = members_of(cell);
                let c = members.len();
                // Partition the cell into duals / promoters / promotees.
                let (n_d, n_p) = if c <= 1 {
                    (0, 0)
                } else if c <= 3 {
                    (c, 0) // a tiny mutual ring
                } else if has_core {
                    let d = ((c as f64 * 0.162).round() as usize).clamp(2, c - 2);
                    let p = ((c as f64 * 0.25).round() as usize).clamp(1, c - d - 1);
                    (d, p)
                } else {
                    (0, ((c as f64 * 0.3).round() as usize).clamp(1, c - 1))
                };
                let duals = &members[..n_d];
                let proms = &members[n_d..n_d + n_p];
                let tees = &members[n_d + n_p..];

                for &id in duals {
                    roles.insert(id, PlannedRole::Dual);
                    all_duals.push(id);
                }
                let coreless = n_d == 0 && c > 3;
                for &id in proms {
                    roles.insert(id, PlannedRole::Promoter);
                    if coreless {
                        coreless_promoters.push(id);
                    }
                }
                for &id in tees {
                    roles.insert(id, PlannedRole::Promotee);
                    promotees.push(id);
                    if coreless {
                        coreless_promotees.push(id);
                    }
                }

                // dual core: complete mutual promotion
                for &a in duals {
                    let targets: Vec<AppId> = duals.iter().copied().filter(|&b| b != a).collect();
                    promotion_plan.entry(a).or_default().extend(targets);
                }
                // promoters: push the whole core, plus a promotee or two
                for &a in proms {
                    let mut targets: Vec<AppId> = duals.to_vec();
                    if let Some(&t) = tees.first() {
                        if rng.gen_bool(0.7) {
                            targets.push(t);
                        }
                    }
                    promotion_plan.entry(a).or_default().extend(targets);
                }
                // promotees: promoted by 1 sponsor (low LCC) or 2-3 core
                // members (their neighbourhood is then a clique subset)
                let sponsors: Vec<AppId> = if duals.is_empty() {
                    proms.to_vec()
                } else {
                    duals.to_vec()
                };
                for &t in tees {
                    if sponsors.is_empty() {
                        continue;
                    }
                    let k = if rng.gen_bool(0.45) {
                        1
                    } else {
                        rng.gen_range(2..=3usize).min(sponsors.len())
                    };
                    let mut picks = sponsors.clone();
                    picks.shuffle(&mut rng);
                    for &s in picks.iter().take(k) {
                        promotion_plan.entry(s).or_default().push(t);
                    }
                }
            }
            // Bridges keep the campaign one component: each cell's first
            // promoting member also pushes one app of the next cell.
            for cell in 1..n_cells {
                let prev = members_of(cell - 1);
                let cur = members_of(cell);
                let sponsor = prev
                    .iter()
                    .copied()
                    .find(|id| matches!(roles[id], PlannedRole::Dual | PlannedRole::Promoter))
                    .or_else(|| prev.first().copied());
                if let (Some(s), Some(&t)) = (sponsor, cur.first()) {
                    if s != t {
                        promotion_plan.entry(s).or_default().push(t);
                        // a lone sponsor of a 1-app cell becomes a promoter
                        let e = roles.entry(s).or_insert(PlannedRole::Promoter);
                        if *e == PlannedRole::Promotee || *e == PlannedRole::Standalone {
                            *e = PlannedRole::Promoter;
                        }
                    }
                }
            }
        }

        // Scam landing URLs + shortened forms.
        let n_scams = rng.gen_range(1..=4);
        let mut scam_urls = Vec::new();
        let mut shortened_scam_urls = Vec::new();
        for s in 0..n_scams {
            let host = if rng.gen_bool(0.5) {
                Domain::parse(SCAM_LANDING_HOSTS[rng.gen_range(0..SCAM_LANDING_HOSTS.len())])
                    .expect("static domain is valid")
            } else {
                campaign_domain.clone()
            };
            let url = Url::build(Scheme::Http, host, &format!("offer/c{c_idx}s{s}"));
            shortened_scam_urls.push(shortener.shorten(&url));
            scam_urls.push(url);
        }

        // Indirection site for the largest campaigns.
        let (indirection_site, shortened_site_entry) =
            if site_campaigns.contains(&c_idx) && !promotees.is_empty() {
                let cloud = rng.gen_bool(config.indirection_cloud_fraction);
                let host = if cloud {
                    Domain::parse(&format!("ec2-52-{c_idx}-promo.amazonaws.com"))
                        .expect("generated domain")
                } else {
                    campaign_domain.clone()
                };
                // Pool: the campaign's dual cliques plus the star-shaped
                // (core-less) cells' promotees. Including the duals is what
                // gives the ecosystem the paper's huge collusion degrees (the
                // site wires every user to every pool member) while the
                // clique structure keeps Fig. 14's clustering mass high.
                let mut pool: Vec<AppId> = all_duals
                    .iter()
                    .chain(coreless_promotees.iter())
                    .copied()
                    .collect();
                if pool.is_empty() {
                    pool = promotees.clone();
                }
                pool.shuffle(&mut rng);
                let keep = (pool.len() as f64 * rng.gen_range(0.7..1.0)).ceil() as usize;
                pool.truncate(keep.max(1));
                let site = IndirectionSite::new(host, &format!("go{c_idx}"), pool);
                let short_entry = shortener.shorten(site.entry_url());
                sites.push(site);
                (Some(sites.len() - 1), Some(short_entry))
            } else {
                (None, None)
            };
        let site_users: Vec<AppId> = if indirection_site.is_some() {
            // Star-cell promoters always route through the site; half the
            // duals do too (promoting the whole pool keeps the cliques
            // interconnected at scale).
            let mut users = coreless_promoters.clone();
            users.extend(all_duals.iter().copied().filter(|_| rng.gen_bool(0.5)));
            if users.is_empty() {
                users = app_ids
                    .iter()
                    .copied()
                    .filter(|id| roles.get(id) == Some(&PlannedRole::Promoter))
                    .take(4)
                    .collect();
            }
            users
        } else {
            Vec::new()
        };

        // Profile feeds: the 3% exception, advertising scam URLs (§4.1.5).
        for &id in &app_ids {
            if rng.gen_bool(config.malicious_profile_feed_rate) && platform.user_count() > 0 {
                let poster = osn_types::ids::UserId(rng.gen_range(0..platform.user_count()) as u64);
                let n = rng.gen_range(1..=10);
                for _ in 0..n {
                    let url = &scam_urls[rng.gen_range(0..scam_urls.len())];
                    let _ = platform.post_on_app_profile(
                        id,
                        poster,
                        "claim your free gift here",
                        Some(url.clone()),
                    );
                }
            }
        }

        // Per-app dynamics spec.
        for &id in &app_ids {
            let base_mau = if rng.gen_bool(0.6) {
                log_uniform(
                    &mut rng,
                    config.malicious_mau_low.0,
                    config.malicious_mau_low.1,
                )
            } else {
                log_uniform(
                    &mut rng,
                    config.malicious_mau_high.0,
                    config.malicious_mau_high.1,
                )
            };
            let click_budget = rng.gen_bool(config.bitly_user_rate).then(|| {
                let r: f64 = rng.gen();
                let (lo, hi) = if r < config.clicks_low_band_prob {
                    config.clicks_low_band
                } else if r < config.clicks_low_band_prob + 0.4 {
                    config.clicks_mid_band
                } else {
                    config.clicks_top_band
                };
                log_uniform(&mut rng, lo, hi) as u64
            });
            apps.insert(
                id,
                MaliciousApp {
                    id,
                    campaign: cid,
                    role: roles[&id],
                    activation_day: rng.gen_range(0..(config.monitoring_days * 4 / 5).max(1)),
                    base_mau,
                    click_budget,
                },
            );
        }

        campaigns.push(Campaign {
            id: cid,
            apps: app_ids,
            stealthy,
            scam_urls,
            shortened_scam_urls,
            promotion_plan,
            indirection_site,
            shortened_site_entry,
            site_users,
        });
    }

    MaliciousWorld {
        campaigns,
        apps,
        sites,
        hosting_domains,
    }
}

/// Helper: rewires an app's client-ID pool after registration (pools refer
/// to sibling ids that do not exist yet at registration time).
fn set_client_pool(platform: &mut Platform, app: AppId, pool: Vec<AppId>) {
    // The platform API is registration-time only by design; reach through
    // the test/maintenance accessor.
    platform.set_client_id_pool(app, pool);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build() -> (Platform, MaliciousWorld, ScenarioConfig) {
        let config = ScenarioConfig::small();
        let mut platform = Platform::new();
        platform.add_users(100);
        let mut wot = WotRegistry::new();
        let mut shortener = Shortener::bitly();
        let world = generate_malicious(&mut platform, &mut wot, &mut shortener, &config);
        (platform, world, config)
    }

    #[test]
    fn generates_configured_app_count() {
        let (_, world, config) = build();
        assert_eq!(world.apps.len(), config.malicious_apps);
        let from_campaigns: usize = world.campaigns.iter().map(|c| c.apps.len()).sum();
        assert_eq!(from_campaigns, config.malicious_apps);
    }

    #[test]
    fn colluding_campaigns_have_roles_and_plans() {
        let (_, world, config) = build();
        let colluding = &world.campaigns[..config.campaigns];
        let mut promoters = 0;
        let mut promotees = 0;
        let mut duals = 0;
        for c in colluding {
            for &a in &c.apps {
                match world.apps[&a].role {
                    PlannedRole::Promoter => promoters += 1,
                    PlannedRole::Promotee => promotees += 1,
                    PlannedRole::Dual => duals += 1,
                    PlannedRole::Standalone => {}
                }
            }
        }
        assert!(promoters > 0 && promotees > 0 && duals > 0);
        // promotees dominate, as in Fig. 13
        assert!(promotees > promoters);
        assert!(promotees > duals);
        // every colluding campaign of size >= 2 has a promotion plan
        for c in colluding.iter().filter(|c| c.apps.len() >= 2) {
            assert!(
                !c.promotion_plan.is_empty(),
                "campaign {:?} has no plan",
                c.id
            );
        }
    }

    #[test]
    fn every_promotee_is_covered_by_the_plan() {
        let (_, world, config) = build();
        for c in &world.campaigns[..config.campaigns] {
            let site_pool: Vec<AppId> = c
                .indirection_site
                .map(|i| world.sites[i].targets().to_vec())
                .unwrap_or_default();
            for &a in &c.apps {
                if world.apps[&a].role == PlannedRole::Promotee {
                    let direct = c.promotion_plan.values().any(|ts| ts.contains(&a));
                    let via_site = site_pool.contains(&a);
                    assert!(direct || via_site, "promotee {a} unreachable");
                }
            }
        }
    }

    #[test]
    fn name_reuse_is_heavy() {
        let (platform, world, _) = build();
        use std::collections::HashMap as Map;
        let mut by_name: Map<String, usize> = Map::new();
        for id in world.app_ids() {
            *by_name
                .entry(platform.app(id).unwrap().name().to_string())
                .or_default() += 1;
        }
        let apps = world.apps.len() as f64;
        let names = by_name.len() as f64;
        assert!(
            apps / names > 2.5,
            "expected heavy name reuse, got {apps} apps over {names} names"
        );
        assert!(by_name.values().any(|&n| n >= 10), "no big name cluster");
    }

    #[test]
    fn typosquats_exist() {
        let (platform, world, config) = build();
        let farmviles = world
            .app_ids()
            .iter()
            .filter(|&&id| platform.app(id).unwrap().name() == "FarmVile")
            .count();
        assert_eq!(farmviles, config.typosquat_count);
    }

    #[test]
    fn client_id_pools_reference_siblings() {
        let (platform, world, _) = build();
        let mut mismatched = 0;
        let mut total = 0;
        for c in &world.campaigns {
            let members: std::collections::HashSet<AppId> = c.apps.iter().copied().collect();
            for &a in &c.apps {
                total += 1;
                let pool = &platform.app(a).unwrap().registration.client_id_pool;
                if !pool.is_empty() {
                    mismatched += 1;
                    assert!(
                        pool.iter().all(|p| members.contains(p)),
                        "pool crosses campaigns"
                    );
                    assert!(!pool.contains(&a), "pool contains self");
                }
            }
        }
        let rate = mismatched as f64 / total as f64;
        assert!(
            (0.5..0.95).contains(&rate),
            "mismatch rate {rate} should be near the configured 0.78"
        );
    }

    #[test]
    fn hosting_concentrates_on_named_domains() {
        let (platform, world, _) = build();
        let named: std::collections::HashSet<&str> =
            PAPER_HOSTING_DOMAINS.iter().copied().collect();
        let mut on_named = 0;
        for id in world.app_ids() {
            let host = platform
                .app(id)
                .unwrap()
                .registration
                .redirect_uri
                .host()
                .as_str()
                .to_string();
            if named.contains(host.as_str()) {
                on_named += 1;
            }
        }
        let rate = on_named as f64 / world.apps.len() as f64;
        assert!(rate > 0.6, "top-5 concentration only {rate}");
    }

    #[test]
    fn sites_are_partly_on_cloud_hosting() {
        let (_, world, config) = build();
        assert!(!world.sites.is_empty());
        assert!(world.sites.len() <= config.indirection_sites);
        let cloud = world
            .sites
            .iter()
            .filter(|s| s.entry_url().host().is_under("amazonaws.com"))
            .count();
        // with few sites this is coarse; just require the mechanism works
        assert!(cloud <= world.sites.len());
    }

    #[test]
    fn generation_is_deterministic() {
        let (_, w1, _) = build();
        let (_, w2, _) = build();
        assert_eq!(w1.app_ids(), w2.app_ids());
        assert_eq!(w1.campaigns.len(), w2.campaigns.len());
        for (a, b) in w1.campaigns.iter().zip(&w2.campaigns) {
            assert_eq!(a.apps, b.apps);
            assert_eq!(a.stealthy, b.stealthy);
        }
    }
}
