//! The scenario driver: nine months of monitoring, three months of
//! crawling, then the validation window.
//!
//! [`run_scenario`] assembles the whole world and advances it day by day:
//!
//! 1. **Bootstrap** — population + friendships, benign apps (with installs),
//!    malicious campaigns, piggybacking plan, WOT seeding, pre-shortened
//!    campaign links.
//! 2. **Monitoring phase** (`monitoring_days`) — benign chatter and app
//!    posts, malicious campaign activity (scam posts, promotion posts,
//!    viral installs through the client-ID loophole, manual re-shares),
//!    piggybacked `prompt_feed` posts, platform enforcement (deletions),
//!    weekly MyPageKeeper sweeps, monthly MAU accounting, bit.ly click
//!    accumulation.
//! 3. **Crawl phase** (`crawl_weeks`) — weekly crawls of every app, merged
//!    lane-wise into a crawl archive (first success wins), while
//!    enforcement keeps deleting apps — which is what produces Table 1's
//!    shrinking dataset sizes.
//! 4. **Validation window** (`validation_extra_days`) — enforcement only;
//!    the §5.3 "deleted from Facebook graph" check reads the state at the
//!    end of this window.

use std::collections::{BTreeMap, HashMap, HashSet};

use fb_platform::crawler::{Crawler, CrawlerPolicy, PermissionCrawl};
use fb_platform::graph_api::AppSummary;
use fb_platform::install::{install_url, run_install_flow};
use fb_platform::platform::Platform;
use fb_platform::post::Post;
use osn_types::ids::{AppId, CampaignId, UserId};
use osn_types::url::Url;
use pagekeeper::classifier::CalibratedOracle;
use pagekeeper::service::MyPageKeeper;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use url_services::redirector::IndirectionSite;
use url_services::shortener::Shortener;
use url_services::socialbakers::SocialBakers;
use url_services::wot::WotRegistry;

use crate::benign::{bootstrap_installs, generate_benign_apps, BenignApp, BENIGN_POST_TEMPLATES};
use crate::campaign::{
    generate_malicious, Campaign, MaliciousWorld, PlannedRole, PROMO_POST_TEMPLATES,
    SCAM_POST_TEMPLATES,
};
use crate::config::ScenarioConfig;
use crate::piggyback::{plan_piggyback, run_piggyback_day, sample_count, PiggybackPlan};
use crate::population::{generate_population, Population};

/// What is *actually true* in the generated world — the labels no real
/// measurement study has. Experiments must not leak this into classifiers;
/// it exists to evaluate them.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// All truly malicious apps.
    pub malicious: HashSet<AppId>,
    /// Campaign membership of malicious apps.
    pub campaign_of: HashMap<AppId, CampaignId>,
    /// Campaigns that largely evade MyPageKeeper.
    pub stealthy_campaigns: HashSet<CampaignId>,
    /// Display forms of all truly-malicious URLs.
    pub malicious_urls: HashSet<String>,
    /// The popularity-based whitelist (the paper's manual whitelist of
    /// popular apps wrongly implicated by piggybacking).
    pub whitelist: HashSet<AppId>,
}

/// Crawl results for one app, merged across the weekly sweeps (first
/// success per lane wins, like the paper's merge of 13 weekly crawls).
#[derive(Debug, Clone, Default)]
pub struct MergedCrawl {
    /// App summary, if any weekly crawl got one.
    pub summary: Option<AppSummary>,
    /// Permission-dialog observation, if any crawl got one.
    pub permissions: Option<PermissionCrawl>,
    /// Profile feed, if any crawl (or the tombstone cache) got one.
    pub profile_feed: Option<Vec<Post>>,
}

/// The fully-simulated world, as handed to experiments.
pub struct ScenarioWorld {
    /// Configuration that produced this world.
    pub config: ScenarioConfig,
    /// The platform after the full timeline.
    pub platform: Platform,
    /// The shortening service (click counts, expansions).
    pub shortener: Shortener,
    /// Domain reputation.
    pub wot: WotRegistry,
    /// Indirection websites.
    pub sites: Vec<IndirectionSite>,
    /// MyPageKeeper after all sweeps.
    pub mpk: MyPageKeeper,
    /// Ground truth (for evaluation only).
    pub truth: GroundTruth,
    /// Users.
    pub population: Population,
    /// Benign app specs.
    pub benign: Vec<BenignApp>,
    /// Malicious world (campaigns, roles, sites).
    pub malicious: MaliciousWorld,
    /// Piggybacking plan (victim apps, scam links).
    pub piggyback: PiggybackPlan,
    /// Merged weekly crawl results per app — crawl phase only. Drives the
    /// Table 1 D-* dataset construction.
    pub crawl_archive: BTreeMap<AppId, MergedCrawl>,
    /// Extended archive additionally merging biweekly monitoring-phase
    /// crawls: the union of everything the monitoring vantage ever learned
    /// about each app. §5.3's classification of D-Total∖D-Sample uses
    /// this — the paper could classify apps that were deleted soon after
    /// their activity because its nine-month trace had captured them while
    /// alive.
    pub extended_archive: BTreeMap<AppId, MergedCrawl>,
    /// Per-app bit.ly links (the app's own campaign link), for click
    /// attribution.
    pub app_bitly_links: HashMap<AppId, Url>,
    /// Threat-model counters accumulated during the run.
    pub stats: ScenarioStats,
    /// The community rating service, fed from the publicly observable
    /// posts (used by the dataset builder's benign vetting, like the
    /// paper's Social Bakers selection).
    pub social_bakers: SocialBakers,
}

impl ScenarioWorld {
    /// Apps observed posting at least one monitored wall post — the
    /// D-Total membership test.
    pub fn observed_apps(&self) -> Vec<AppId> {
        let mut seen = HashSet::new();
        for &pid in self.mpk.monitored_posts() {
            if let Some(post) = self.platform.post(pid) {
                if let Some(app) = post.app {
                    seen.insert(app);
                }
            }
        }
        let mut v: Vec<AppId> = seen.into_iter().collect();
        v.sort_unstable();
        v
    }
}

/// Aggregate counters the scenario accumulates while running — the §2.1
/// threat-model quantities (data harvesting, viral spread through the
/// client-ID loophole).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScenarioStats {
    /// Profile fields successfully read by malicious apps (Step 3 of the
    /// paper's operation model — the data hackers "sell to third parties").
    pub pii_fields_harvested: u64,
    /// Viral installs triggered by malicious posts.
    pub viral_installs: u64,
    /// Of those, installs that landed on a *different* app than the one
    /// whose install URL was visited (the §4.1.4 client-ID loophole).
    pub installs_via_mismatch: u64,
}

/// Per-app mutable campaign state during the run.
struct ActiveApp {
    victims: Vec<UserId>,
    promo_cursor: usize,
    clicks_injected: bool,
}

/// Runs the full scenario. Deterministic for a given config.
pub fn run_scenario(config: &ScenarioConfig) -> ScenarioWorld {
    let _scenario_span = frappe_obs::span("scenario");
    config.validate();
    let mut rng = SmallRng::seed_from_u64(config.seed ^ 0x5CE4A210);

    // ---------------- bootstrap -------------------------------------------
    let bootstrap_span = frappe_obs::span("bootstrap");
    let mut platform = Platform::new();
    let mut wot = WotRegistry::new();
    let mut shortener = Shortener::bitly();

    let population = generate_population(&mut platform, config);
    let benign = generate_benign_apps(&mut platform, &mut wot, &population.users, config);
    bootstrap_installs(&mut platform, &benign, &population.users, config);
    let malicious = generate_malicious(&mut platform, &mut wot, &mut shortener, config);

    // Popularity order for whitelist / piggyback victims.
    let mut by_popularity: Vec<&BenignApp> = benign.iter().collect();
    by_popularity.sort_by(|a, b| b.popularity.partial_cmp(&a.popularity).expect("finite"));
    let popular_ids: Vec<AppId> = by_popularity.iter().map(|a| a.id).collect();
    let whitelist: HashSet<AppId> = popular_ids
        .iter()
        .copied()
        .take((config.piggyback_victims * 2).max(20))
        .collect();

    let piggyback = plan_piggyback(&popular_ids, &mut shortener, config);

    // Per-app bit.ly links: a personalised variant of a campaign scam URL,
    // so Fig. 3's per-app click totals are well-defined.
    let mut app_bitly_links: HashMap<AppId, Url> = HashMap::new();
    for c in &malicious.campaigns {
        for &a in &c.apps {
            if malicious.apps[&a].click_budget.is_some() {
                let base = &c.scam_urls[0];
                let personal = base.clone().with_param("r", a.raw());
                app_bitly_links.insert(a, shortener.shorten(&personal));
            }
        }
    }

    // ---------------- oracle truth ----------------------------------------
    let mut truth_urls: HashSet<String> = HashSet::new();
    let mut overrides: HashMap<String, f64> = HashMap::new();
    let mut stealthy_campaigns = HashSet::new();
    let register_url = |url: &Url,
                        stealthy: bool,
                        truth_urls: &mut HashSet<String>,
                        overrides: &mut HashMap<String, f64>| {
        let s = url.to_string();
        if stealthy {
            overrides.insert(s.clone(), config.stealthy_detect_prob);
        }
        truth_urls.insert(s);
    };
    for c in &malicious.campaigns {
        if c.stealthy {
            stealthy_campaigns.insert(c.id);
        }
        for u in c.scam_urls.iter().chain(&c.shortened_scam_urls) {
            register_url(u, c.stealthy, &mut truth_urls, &mut overrides);
        }
        if let Some(entry) = &c.shortened_site_entry {
            register_url(entry, c.stealthy, &mut truth_urls, &mut overrides);
        }
        if let Some(i) = c.indirection_site {
            register_url(
                &malicious.sites[i].entry_url().clone(),
                c.stealthy,
                &mut truth_urls,
                &mut overrides,
            );
        }
        for &a in &c.apps {
            register_url(&install_url(a), c.stealthy, &mut truth_urls, &mut overrides);
            if let Some(link) = app_bitly_links.get(&a) {
                register_url(link, c.stealthy, &mut truth_urls, &mut overrides);
            }
        }
    }
    for u in piggyback.scam_urls.iter().chain(&piggyback.shortened) {
        register_url(u, false, &mut truth_urls, &mut overrides);
    }

    let mut oracle = CalibratedOracle::new(
        truth_urls.clone(),
        config.mpk_detect_prob,
        config.mpk_false_flag_prob,
        config.seed ^ 0x04AC1E,
    )
    .with_detect_overrides(overrides);

    let mut mpk = MyPageKeeper::new();
    mpk.subscribe_all(population.monitored.iter().copied());

    // ---------------- per-app run state ------------------------------------
    let mut active: BTreeMap<AppId, ActiveApp> = BTreeMap::new();
    let mut stats = ScenarioStats::default();
    // installed-user lists for benign apps (platform's HashSet is not
    // samplable in O(1))
    let mut benign_installed: HashMap<AppId, Vec<UserId>> = HashMap::new();
    for app in &benign {
        let mut users: Vec<UserId> = platform
            .app(app.id)
            .expect("registered above")
            .installed_users
            .iter()
            .copied()
            .collect();
        users.sort_unstable(); // HashSet order is not deterministic
        benign_installed.insert(app.id, users);
    }
    let mean_popularity: f64 =
        benign.iter().map(|a| a.popularity).sum::<f64>() / benign.len().max(1) as f64;

    // ---------------- monitoring phase -------------------------------------
    let monitoring_crawler = Crawler::new(CrawlerPolicy {
        salt: config.seed ^ 0xE77,
        ..CrawlerPolicy::default()
    });
    let mut extended_archive: BTreeMap<AppId, MergedCrawl> = BTreeMap::new();
    let merge_crawl = |archive: &mut BTreeMap<AppId, MergedCrawl>,
                       platform: &Platform,
                       crawler: &Crawler,
                       app: AppId| {
        let outcome = crawler.crawl(platform, app);
        let merged = archive.entry(app).or_default();
        if merged.summary.is_none() {
            merged.summary = outcome.summary;
        }
        if merged.permissions.is_none() {
            merged.permissions = outcome.permissions;
        }
        if merged.profile_feed.is_none() {
            merged.profile_feed = outcome.profile_feed;
        }
    };

    drop(bootstrap_span);

    for day in 0..config.monitoring_days {
        let _day_span = frappe_obs::span("day");
        {
            let _s = frappe_obs::span("benign");
            run_benign_day(
                &mut platform,
                &benign,
                &benign_installed,
                mean_popularity,
                config,
                &mut rng,
            );
        }
        {
            let _s = frappe_obs::span("malicious");
            run_malicious_day(
                &mut platform,
                &mut shortener,
                &malicious,
                &mut active,
                &app_bitly_links,
                &population,
                day,
                config,
                &mut rng,
                &mut stats,
            );
        }
        {
            let _s = frappe_obs::span("piggyback");
            run_piggyback_day(
                &mut platform,
                &piggyback,
                &population.users, // hackers cannot tell who is monitored
                &mut rng,
                config.piggyback_daily_rate,
            );
        }
        {
            let _s = frappe_obs::span("chatter");
            run_chatter_day(&mut platform, &population, config, &mut rng);
        }
        {
            let _s = frappe_obs::span("enforcement");
            run_enforcement_day(
                &mut platform,
                &malicious,
                &benign,
                &active,
                config,
                &mut rng,
            );
            run_mau_injection(&mut platform, &benign, &malicious, config, &mut rng);
        }

        if day % config.sweep_interval_days == 0 {
            mpk.sweep(&platform, &mut oracle);
        }
        if day % 7 == 3 {
            // weekly monitoring-phase crawls feed the extended archive
            let _s = frappe_obs::span("weekly_crawl");
            let apps: Vec<AppId> = platform.apps().map(|a| a.id).collect();
            for app in apps {
                merge_crawl(&mut extended_archive, &platform, &monitoring_crawler, app);
            }
        }
        platform.advance_day();
    }
    // Final monitoring sweep so the tail of posts is judged.
    mpk.sweep(&platform, &mut oracle);

    // The community-rating service aggregates the same public posts the
    // monitoring saw (it crawls app pages and fan engagement).
    let mut social_bakers = SocialBakers::new();
    for &pid in mpk.monitored_posts() {
        if let Some(post) = platform.post(pid) {
            if let Some(app) = post.app {
                social_bakers.observe_post(app, post.likes, post.comments);
            }
        }
    }

    // ---------------- crawl phase -------------------------------------------
    let crawl_phase_span = frappe_obs::span("crawl_phase");
    let all_apps: Vec<AppId> = platform.apps().map(|a| a.id).collect();
    let crawler = Crawler::new(CrawlerPolicy {
        salt: config.seed,
        ..CrawlerPolicy::default()
    });
    let mut crawl_archive: BTreeMap<AppId, MergedCrawl> = BTreeMap::new();
    for week in 0..config.crawl_weeks {
        for &app in &all_apps {
            merge_crawl(&mut crawl_archive, &platform, &crawler, app);
            merge_crawl(&mut extended_archive, &platform, &crawler, app);
        }
        // a week passes; enforcement and MAU keep running
        for _ in 0..7 {
            run_enforcement_day(
                &mut platform,
                &malicious,
                &benign,
                &active,
                config,
                &mut rng,
            );
            run_mau_injection(&mut platform, &benign, &malicious, config, &mut rng);
            platform.advance_day();
        }
        let _ = week;
    }
    // Tombstone cache: some deleted apps' feeds survive in the archive
    // from pre-deletion passes (see config.feed_tombstone_cache_permille).
    for (&app, merged) in crawl_archive.iter_mut() {
        if merged.profile_feed.is_none() {
            let cache_hit = splitmix(app.raw() ^ config.seed) % 1000
                < u64::from(config.feed_tombstone_cache_permille);
            if cache_hit {
                if let Some(rec) = platform.app(app) {
                    let feed: Vec<Post> = rec
                        .profile_feed
                        .iter()
                        .filter_map(|&pid| platform.post(pid).cloned())
                        .collect();
                    merged.profile_feed = Some(feed);
                }
            }
        }
    }

    drop(crawl_phase_span);

    // ---------------- validation window ------------------------------------
    let _validation_span = frappe_obs::span("validation");
    for _ in 0..config.validation_extra_days {
        run_enforcement_day(
            &mut platform,
            &malicious,
            &benign,
            &active,
            config,
            &mut rng,
        );
        platform.advance_day();
    }
    platform.finalize_month();

    let truth = GroundTruth {
        malicious: malicious.apps.keys().copied().collect(),
        campaign_of: malicious
            .apps
            .iter()
            .map(|(&a, s)| (a, s.campaign))
            .collect(),
        stealthy_campaigns,
        malicious_urls: truth_urls,
        whitelist,
    };

    ScenarioWorld {
        config: config.clone(),
        platform,
        shortener,
        wot,
        sites: malicious.sites.clone(),
        mpk,
        truth,
        population,
        benign,
        malicious,
        piggyback,
        crawl_archive,
        extended_archive,
        app_bitly_links,
        stats,
        social_bakers,
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// --------------------------------------------------------------------------
// daily sub-steps
// --------------------------------------------------------------------------

fn run_benign_day(
    platform: &mut Platform,
    benign: &[BenignApp],
    installed: &HashMap<AppId, Vec<UserId>>,
    mean_popularity: f64,
    config: &ScenarioConfig,
    rng: &mut SmallRng,
) {
    for app in benign {
        let users = &installed[&app.id];
        if users.is_empty() {
            continue;
        }
        // Popularity scales volume, but every app posts at least at the
        // base rate — D-Total only contains apps that posted at all, and
        // the paper's 111K observed apps all did.
        let rate = (config.benign_daily_post_rate * app.popularity / mean_popularity)
            .clamp(config.benign_daily_post_rate, 40.0);
        let n = sample_count(rng, rate);
        for _ in 0..n {
            let user = users[rng.gen_range(0..users.len())];
            let msg = BENIGN_POST_TEMPLATES[rng.gen_range(0..BENIGN_POST_TEMPLATES.len())];
            // Link mix: mostly none or internal; external only for linkers.
            let link = if app.external_linker && rng.gen_bool(0.35) {
                app.site_url.clone()
            } else if rng.gen_bool(0.25) {
                Some(
                    Url::parse(&format!(
                        "https://apps.facebook.com/app{}/play",
                        app.id.raw()
                    ))
                    .expect("generated URL is valid"),
                )
            } else {
                None
            };
            if let Ok(pid) = platform.post_as_app(app.id, user, msg, link) {
                // healthy engagement (a MyPageKeeper feature: benign posts
                // receive more likes/comments)
                for _ in 0..rng.gen_range(0..8) {
                    let liker = UserId(rng.gen_range(0..platform.user_count()) as u64);
                    let _ = platform.like_post(pid, liker);
                }
                for _ in 0..rng.gen_range(0..3) {
                    let commenter = UserId(rng.gen_range(0..platform.user_count()) as u64);
                    let _ = platform.comment_post(pid, commenter);
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_malicious_day(
    platform: &mut Platform,
    shortener: &mut Shortener,
    malicious: &MaliciousWorld,
    active: &mut BTreeMap<AppId, ActiveApp>,
    app_bitly_links: &HashMap<AppId, Url>,
    population: &Population,
    day: u32,
    config: &ScenarioConfig,
    rng: &mut SmallRng,
    stats: &mut ScenarioStats,
) {
    for campaign in &malicious.campaigns {
        for &app_id in &campaign.apps {
            let spec = &malicious.apps[&app_id];
            if spec.activation_day > day {
                continue;
            }
            if platform.live_app(app_id).is_err() {
                continue;
            }

            // Activation: seed victims and inject the app's web-wide click
            // budget into its bit.ly link.
            let state = active.entry(app_id).or_insert_with(|| ActiveApp {
                victims: Vec::new(),
                promo_cursor: 0,
                clicks_injected: false,
            });
            if state.victims.is_empty() {
                for _ in 0..rng.gen_range(1..=3) {
                    let seed_user =
                        population.monitored[rng.gen_range(0..population.monitored.len())];
                    if platform.grant_install(seed_user, app_id).is_ok() {
                        state.victims.push(seed_user);
                    }
                }
            }
            if !state.clicks_injected {
                if let (Some(budget), Some(link)) =
                    (spec.click_budget, app_bitly_links.get(&app_id))
                {
                    shortener.record_clicks(link, budget);
                }
                state.clicks_injected = true;
            }

            let n_posts = sample_count(rng, config.malicious_daily_post_rate);
            for _ in 0..n_posts {
                post_malicious(
                    platform,
                    shortener,
                    campaign,
                    malicious,
                    app_id,
                    active,
                    app_bitly_links,
                    config,
                    rng,
                    stats,
                );
            }
        }
    }
}

/// One malicious post plus its viral aftermath. Split out so the borrow on
/// `active` is scoped: we re-borrow entries as installs add victims to
/// *other* apps of the campaign.
#[allow(clippy::too_many_arguments)]
fn post_malicious(
    platform: &mut Platform,
    shortener: &mut Shortener,
    campaign: &Campaign,
    malicious: &MaliciousWorld,
    app_id: AppId,
    active: &mut BTreeMap<AppId, ActiveApp>,
    app_bitly_links: &HashMap<AppId, Url>,
    config: &ScenarioConfig,
    rng: &mut SmallRng,
    stats: &mut ScenarioStats,
) {
    let spec = &malicious.apps[&app_id];
    let author = {
        let state = active.get(&app_id).expect("caller ensured activation");
        if state.victims.is_empty() {
            return;
        }
        state.victims[rng.gen_range(0..state.victims.len())]
    };

    // Decide content: promotion (for promoters/duals) or scam.
    let is_promoter = matches!(spec.role, PlannedRole::Promoter | PlannedRole::Dual)
        && !campaign
            .promotion_plan
            .get(&app_id)
            .is_none_or(Vec::is_empty);
    let promote = is_promoter && rng.gen_bool(0.5);

    let (message, link, install_target) = if promote {
        let plan = &campaign.promotion_plan[&app_id];
        let use_site = campaign.shortened_site_entry.is_some()
            && campaign.site_users.contains(&app_id)
            && rng.gen_bool(0.8);
        if use_site {
            let entry = campaign
                .shortened_site_entry
                .clone()
                .expect("checked above");
            // install lands wherever the site rotates to; approximate with
            // a random pool member for the viral step
            let site = &malicious.sites[campaign.indirection_site.expect("paired with entry")];
            let target = site.targets()[rng.gen_range(0..site.targets().len())];
            (
                PROMO_POST_TEMPLATES[rng.gen_range(0..PROMO_POST_TEMPLATES.len())],
                entry,
                target,
            )
        } else {
            let state = active.get_mut(&app_id).expect("caller ensured activation");
            let target = plan[state.promo_cursor % plan.len()];
            state.promo_cursor += 1;
            (
                PROMO_POST_TEMPLATES[rng.gen_range(0..PROMO_POST_TEMPLATES.len())],
                install_url(target),
                target,
            )
        }
    } else {
        let msg = SCAM_POST_TEMPLATES[rng.gen_range(0..SCAM_POST_TEMPLATES.len())];
        // Only apps in the bit.ly cohort (Fig. 3's 61%) post shortened
        // links; the rest post raw landing URLs.
        let link = match app_bitly_links.get(&app_id) {
            Some(own) if rng.gen_bool(config.malicious_shorten_rate) => own.clone(),
            _ => campaign.scam_urls[rng.gen_range(0..campaign.scam_urls.len())].clone(),
        };
        (msg, link, app_id)
    };

    let Ok(_pid) = platform.post_as_app(app_id, author, message, Some(link.clone())) else {
        return;
    };

    // Viral aftermath: expose the author's friends.
    let friends: Vec<UserId> = platform
        .friends_of(author)
        .map(|f| f.to_vec())
        .unwrap_or_default();
    let exposed: Vec<UserId> = friends
        .choose_multiple(rng, 10.min(friends.len()))
        .copied()
        .collect();
    for friend in exposed {
        if rng.gen_bool(config.victim_click_prob) && link.is_shortened() {
            shortener.record_clicks(&link, 1);
        }
        if rng.gen_bool(config.victim_install_prob) {
            if let Ok(outcome) =
                run_install_flow(platform, install_target, friend, rng.gen::<u64>())
            {
                stats.viral_installs += 1;
                if outcome.client_id_mismatch() {
                    stats.installs_via_mismatch += 1;
                }
                // Step 3 of the operation model: the app server (i.e. the
                // hacker) immediately harvests whatever its token reaches.
                for field in fb_platform::user::ProfileField::ALL {
                    if platform
                        .read_profile_field(outcome.installed, friend, field)
                        .is_ok()
                    {
                        stats.pii_fields_harvested += 1;
                    }
                }
                active
                    .entry(outcome.installed)
                    .or_insert_with(|| ActiveApp {
                        victims: Vec::new(),
                        promo_cursor: 0,
                        clicks_injected: false,
                    })
                    .victims
                    .push(friend);
            }
        }
        if rng.gen_bool(config.manual_share_prob) {
            let _ = platform.post_manual(friend, "look what I found", Some(link.clone()));
        }
    }
}

fn run_chatter_day(
    platform: &mut Platform,
    population: &Population,
    config: &ScenarioConfig,
    rng: &mut SmallRng,
) {
    let n = sample_count(
        rng,
        config.manual_chatter_rate * population.users.len() as f64 / 10.0,
    );
    for _ in 0..n {
        let user = population.users[rng.gen_range(0..population.users.len())];
        let _ = platform.post_manual(user, "having a great day with friends", None);
    }
}

fn run_enforcement_day(
    platform: &mut Platform,
    malicious: &MaliciousWorld,
    benign: &[BenignApp],
    active: &BTreeMap<AppId, ActiveApp>,
    config: &ScenarioConfig,
    rng: &mut SmallRng,
) {
    // Facebook's own detection: active malicious apps face a daily hazard.
    for &app_id in active.keys() {
        if malicious.apps.contains_key(&app_id)
            && platform.live_app(app_id).is_ok()
            && rng.gen_bool(config.malicious_daily_deletion_hazard)
        {
            let _ = platform.delete_app(app_id);
        }
    }
    // Benign apps: rare ToS deletions.
    if config.benign_daily_deletion_hazard > 0.0 {
        let expected = config.benign_daily_deletion_hazard * benign.len() as f64;
        let n = sample_count(rng, expected);
        for _ in 0..n {
            let app = benign[rng.gen_range(0..benign.len())].id;
            if platform.live_app(app).is_ok() {
                let _ = platform.delete_app(app);
            }
        }
    }
}

fn run_mau_injection(
    platform: &mut Platform,
    benign: &[BenignApp],
    malicious: &MaliciousWorld,
    config: &ScenarioConfig,
    rng: &mut SmallRng,
) {
    // Once per 30-day month (on its first day), inject external MAU.
    if !platform.now().days().is_multiple_of(30) {
        return;
    }
    let _ = config;
    for app in benign {
        let noise = rng.gen_range(0.7..1.3);
        let _ = platform.record_external_engagement(app.id, (app.base_mau * noise) as u64);
    }
    for (&id, spec) in &malicious.apps {
        // Base month-to-month wobble, with occasional viral spikes — the
        // paper's 'Future Teller' peaked at 13x its median MAU.
        let mut noise = rng.gen_range(0.4..2.0);
        if rng.gen_bool(0.15) {
            noise *= rng.gen_range(3.0..13.0);
        }
        let _ = platform.record_external_engagement(id, (spec.base_mau * noise) as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The small scenario is the workhorse of the whole workspace's
    /// integration tests; run it once here and assert world sanity.
    #[test]
    fn small_scenario_produces_a_consistent_world() {
        let config = ScenarioConfig::small();
        let world = run_scenario(&config);

        // population
        assert_eq!(world.platform.user_count(), config.users);
        assert_eq!(world.mpk.subscriber_count(), config.monitored_users());

        // apps
        assert_eq!(
            world.platform.app_count(),
            config.benign_apps + config.malicious_apps
        );
        assert_eq!(world.truth.malicious.len(), config.malicious_apps);

        // posting happened and was monitored
        assert!(world.platform.posts().len() > 1000, "too few posts");
        assert!(!world.mpk.flagged_posts().is_empty(), "nothing flagged");
        let observed = world.observed_apps();
        assert!(
            observed.len() > 100,
            "too few observed apps: {}",
            observed.len()
        );

        // enforcement deleted a nontrivial share of malicious apps
        let deleted = world.platform.deleted_apps();
        let mal_deleted = deleted
            .iter()
            .filter(|a| world.truth.malicious.contains(a))
            .count();
        assert!(
            mal_deleted * 3 > world.truth.malicious.len(),
            "expected >1/3 of malicious apps deleted, got {mal_deleted}/{}",
            world.truth.malicious.len()
        );

        // crawl archive covers all apps, with lane-wise gaps
        assert_eq!(world.crawl_archive.len(), world.platform.app_count());
        let with_summary = world
            .crawl_archive
            .values()
            .filter(|m| m.summary.is_some())
            .count();
        assert!(with_summary > 0 && with_summary < world.crawl_archive.len());

        // clicks accumulated on bit.ly links
        let total_clicks: u64 = world.shortener.links().map(|l| l.clicks).sum();
        assert!(
            total_clicks > 100_000,
            "click injection missing: {total_clicks}"
        );
    }

    #[test]
    fn threat_model_stats_accumulate() {
        let world = run_scenario(&ScenarioConfig::small());
        assert!(
            world.stats.viral_installs > 50,
            "campaigns should spread virally: {}",
            world.stats.viral_installs
        );
        assert!(
            world.stats.installs_via_mismatch > 0,
            "the client-ID loophole should fire"
        );
        assert!(
            world.stats.installs_via_mismatch < world.stats.viral_installs,
            "mismatch installs are a subset of viral installs"
        );
        // Most malicious apps request only publish_stream, so harvesting
        // stays far below one-field-per-install — exactly the §4.1.2
        // observation that posting permission alone 'is sufficient'.
        assert!(
            world.stats.pii_fields_harvested < world.stats.viral_installs,
            "harvest {} should trail installs {}",
            world.stats.pii_fields_harvested,
            world.stats.viral_installs
        );
    }

    #[test]
    fn scenario_is_deterministic() {
        let config = ScenarioConfig::small();
        let w1 = run_scenario(&config);
        let w2 = run_scenario(&config);
        assert_eq!(w1.platform.posts().len(), w2.platform.posts().len());
        assert_eq!(w1.mpk.flagged_posts(), w2.mpk.flagged_posts());
        assert_eq!(w1.platform.deleted_apps(), w2.platform.deleted_apps());
    }

    #[test]
    fn flagged_posts_skew_malicious() {
        let config = ScenarioConfig::small();
        let world = run_scenario(&config);
        let mut flagged_malicious = 0usize;
        let mut flagged_benign_attr = 0usize;
        for &pid in world.mpk.flagged_posts() {
            let post = world.platform.post(pid).expect("flagged posts exist");
            match post.app {
                Some(app) if world.truth.malicious.contains(&app) => flagged_malicious += 1,
                Some(_) => flagged_benign_attr += 1,
                None => {}
            }
        }
        assert!(
            flagged_malicious > flagged_benign_attr,
            "malicious apps should dominate flags: {flagged_malicious} vs {flagged_benign_attr}"
        );
    }
}
