//! # synth-workload — the synthetic trace behind every experiment
//!
//! The paper's dataset is nine months of real Facebook monitoring that no
//! longer exists and was never public. This crate replaces it with a
//! **calibrated generative model**: every marginal the paper reports — the
//! 13% malicious prevalence, the summary-completeness gap (Fig. 5), the
//! permission-count gap (Figs. 6–7), redirect-domain reputation (Fig. 8,
//! Table 3), profile-feed emptiness (Fig. 9), name reuse (Figs. 10–11),
//! external-link ratios (Fig. 12), AppNet structure (§6.1, Figs. 13–15),
//! bit.ly clicks (Fig. 3), MAU (Fig. 4) and piggybacking (Fig. 16,
//! Table 9) — is a sampler here, with the paper's numbers as defaults.
//!
//! The output of [`scenario::run_scenario`] is a *world*: a populated
//! [`fb_platform::Platform`], the URL services around it, a MyPageKeeper
//! instance that monitored it, and the ground truth. Downstream crates
//! (FRAppE itself, the benches) consume only the world's observables — the
//! same interface the paper's authors had.
//!
//! Everything is seeded and deterministic: same config, same world.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benign;
pub mod campaign;
pub mod config;
pub mod datasets;
pub mod distributions;
pub mod drift;
pub mod names;
pub mod piggyback;
pub mod population;
pub mod replay;
pub mod scenario;

pub use config::ScenarioConfig;
pub use datasets::{build_datasets, DatasetBundle, LabeledApps};
pub use drift::{drifting_config, drifting_config_with, stationary_config, EvasionKnobs};
pub use replay::{replay_events, ReplayEvent};
pub use scenario::{run_scenario, GroundTruth, ScenarioWorld};
