//! Heavy-tailed samplers calibrated to the paper's marginals.
//!
//! The observable quantities in the paper are almost all heavy-tailed:
//! bit.ly clicks per app span 10¹–10⁷ (Fig. 3), MAU spans 10⁰–10⁶ (Fig. 4),
//! app post counts range from 1 to millions (Tables 2, 9). Two primitives
//! cover all of them:
//!
//! * [`log_uniform`] — uniform in log-space between two bounds; produces
//!   the near-straight-line CDFs (against a log x-axis) of Figs. 3 and 4.
//! * [`bounded_pareto`] — a Pareto (power-law) tail truncated to a range;
//!   produces campaign/popularity size distributions.

use rand::Rng;

/// Samples uniformly in log-space from `[lo, hi]`.
///
/// # Panics
/// Panics unless `0 < lo <= hi`.
pub fn log_uniform<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    assert!(lo > 0.0 && lo <= hi, "need 0 < lo <= hi, got [{lo}, {hi}]");
    if lo == hi {
        return lo;
    }
    let (ln_lo, ln_hi) = (lo.ln(), hi.ln());
    (ln_lo + rng.gen::<f64>() * (ln_hi - ln_lo)).exp()
}

/// Samples a bounded Pareto with shape `alpha` on `[lo, hi]` via inverse
/// transform.
///
/// # Panics
/// Panics unless `0 < lo <= hi` and `alpha > 0`.
pub fn bounded_pareto<R: Rng + ?Sized>(rng: &mut R, alpha: f64, lo: f64, hi: f64) -> f64 {
    assert!(lo > 0.0 && lo <= hi, "need 0 < lo <= hi, got [{lo}, {hi}]");
    assert!(alpha > 0.0, "alpha must be positive");
    if lo == hi {
        return lo;
    }
    let u: f64 = rng.gen_range(0.0..1.0);
    let la = lo.powf(alpha);
    let ha = hi.powf(alpha);
    // inverse CDF of the bounded Pareto
    (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha)
}

/// Splits `total` into `parts` positive integer chunks whose sizes follow a
/// rough power law (largest first). Used for campaign sizing: a few huge
/// AppNets and a long tail of small ones, like the paper's component sizes
/// (3484, 770, 589, 296, 247, …, down to singletons).
///
/// # Panics
/// Panics if `parts == 0` or `total < parts`.
pub fn power_law_partition<R: Rng + ?Sized>(
    rng: &mut R,
    total: usize,
    parts: usize,
    alpha: f64,
) -> Vec<usize> {
    assert!(parts > 0, "need at least one part");
    assert!(
        total >= parts,
        "need total >= parts so every part is non-empty"
    );
    // Draw part weights from a Pareto, normalize, round, then fix up the sum.
    let weights: Vec<f64> = (0..parts)
        .map(|_| bounded_pareto(rng, alpha, 1.0, total as f64))
        .collect();
    let sum: f64 = weights.iter().sum();
    let mut sizes: Vec<usize> = weights
        .iter()
        .map(|w| ((w / sum) * total as f64).floor().max(1.0) as usize)
        .collect();
    // Fix rounding drift while keeping every part >= 1.
    let mut diff = total as i64 - sizes.iter().sum::<usize>() as i64;
    let mut i = 0;
    while diff != 0 {
        let idx = i % parts;
        if diff > 0 {
            sizes[idx] += 1;
            diff -= 1;
        } else if sizes[idx] > 1 {
            sizes[idx] -= 1;
            diff += 1;
        }
        i += 1;
    }
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    sizes
}

/// Empirical CDF helper: fraction of `values` at or below `x`.
pub fn ecdf_at(values: &[f64], x: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().filter(|&&v| v <= x).count() as f64 / values.len() as f64
}

/// Fraction of `values` strictly greater than `x` (CCDF).
pub fn eccdf_at(values: &[f64], x: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    1.0 - ecdf_at(values, x)
}

/// Percentile (0–100) of a sample by nearest-rank. Returns 0.0 on empty
/// input.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn log_uniform_respects_bounds_and_shape() {
        let mut rng = SmallRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..20_000)
            .map(|_| log_uniform(&mut rng, 10.0, 1_000_000.0))
            .collect();
        assert!(samples.iter().all(|&x| (10.0..=1_000_000.0).contains(&x)));
        // log-uniform: ~half the mass below the geometric mean sqrt(10 * 1e6) ≈ 3162
        let below = ecdf_at(&samples, 3162.0);
        assert!((0.45..0.55).contains(&below), "got {below}");
    }

    #[test]
    fn bounded_pareto_respects_bounds_and_is_heavy_tailed() {
        let mut rng = SmallRng::seed_from_u64(2);
        let samples: Vec<f64> = (0..20_000)
            .map(|_| bounded_pareto(&mut rng, 1.2, 1.0, 10_000.0))
            .collect();
        assert!(samples.iter().all(|&x| (1.0..=10_000.0).contains(&x)));
        // most of the mass near the low end
        assert!(ecdf_at(&samples, 10.0) > 0.8);
        // but the tail is populated
        assert!(samples.iter().any(|&x| x > 1000.0));
    }

    #[test]
    fn partition_sums_and_is_positive() {
        let mut rng = SmallRng::seed_from_u64(3);
        for (total, parts) in [(6331, 44), (100, 10), (5, 5), (44, 44)] {
            let sizes = power_law_partition(&mut rng, total, parts, 0.8);
            assert_eq!(sizes.len(), parts);
            assert_eq!(sizes.iter().sum::<usize>(), total);
            assert!(sizes.iter().all(|&s| s >= 1));
            assert!(sizes.windows(2).all(|w| w[0] >= w[1]), "sorted desc");
        }
    }

    #[test]
    fn partition_is_skewed() {
        let mut rng = SmallRng::seed_from_u64(4);
        let sizes = power_law_partition(&mut rng, 6331, 44, 0.7);
        // the largest component should dwarf the median one, like the
        // paper's 3484 vs a tail of tiny components
        assert!(sizes[0] > 10 * sizes[22], "sizes: {:?}", &sizes[..6]);
    }

    #[test]
    fn ecdf_and_percentile() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(ecdf_at(&v, 2.0), 0.5);
        assert_eq!(eccdf_at(&v, 2.0), 0.5);
        assert_eq!(ecdf_at(&v, 0.0), 0.0);
        assert_eq!(ecdf_at(&v, 9.0), 1.0);
        assert_eq!(percentile(&v, 50.0), 2.0);
        assert_eq!(percentile(&v, 100.0), 4.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "0 < lo <= hi")]
    fn log_uniform_rejects_bad_bounds() {
        let mut rng = SmallRng::seed_from_u64(5);
        log_uniform(&mut rng, 0.0, 1.0);
    }
}
