//! App piggybacking attacks (§6.2, Fig. 16, Table 9).
//!
//! Hackers lure users into 'Share' flows and then call the unauthenticated
//! `prompt_feed` API with a *popular* app's ID, so the spam post appears to
//! come from FarmVille or Facebook for iPhone. The attacked apps are benign
//! — the paper's whitelist exists precisely to keep them out of the
//! malicious label set.

use fb_platform::platform::Platform;
use osn_types::ids::{AppId, UserId};
use osn_types::url::{Domain, Scheme, Url};
use rand::rngs::SmallRng;
use rand::Rng;
use url_services::shortener::Shortener;

use crate::config::ScenarioConfig;

/// Post texts from Table 9, verbatim.
pub const PIGGYBACK_POST_TEMPLATES: &[&str] = &[
    "WOW I just got 5000 Facebook Credits for Free",
    "Get your FREE 450 FACEBOOK CREDITS",
    "NFL Playoffs Are Coming! Show Your Team Support!",
    "WOW! I Just Got a Recharge of Rs 500.",
    "Get Your Free Facebook Sim Card",
];

/// Scam hosts from Table 9, verbatim.
const PIGGYBACK_SCAM_HOSTS: &[&str] = &[
    "offers5000credit.blogspot.com",
    "free450offer.blogspot.com",
    "sportsjerseyfever.com",
    "ffreerechargeindia.blogspot.com",
    "freesimcard-offer.info",
];

/// A planned piggybacking operation.
#[derive(Debug, Clone)]
pub struct PiggybackPlan {
    /// The popular apps whose identity is abused (one scam host each).
    pub victims: Vec<AppId>,
    /// Scam landing URLs, parallel to `victims`.
    pub scam_urls: Vec<Url>,
    /// Shortened forms actually placed in posts, parallel to `victims`.
    pub shortened: Vec<Url>,
}

/// Builds the piggybacking plan over the most popular benign apps.
pub fn plan_piggyback(
    popular_apps: &[AppId],
    shortener: &mut Shortener,
    config: &ScenarioConfig,
) -> PiggybackPlan {
    let victims: Vec<AppId> = popular_apps
        .iter()
        .copied()
        .take(config.piggyback_victims)
        .collect();
    let mut scam_urls = Vec::new();
    let mut shortened = Vec::new();
    for (i, _) in victims.iter().enumerate() {
        let host = Domain::parse(PIGGYBACK_SCAM_HOSTS[i % PIGGYBACK_SCAM_HOSTS.len()])
            .expect("static domain is valid");
        let url = Url::build(Scheme::Http, host, &format!("claim{i}"));
        shortened.push(shortener.shorten(&url));
        scam_urls.push(url);
    }
    PiggybackPlan {
        victims,
        scam_urls,
        shortened,
    }
}

/// Executes one day of piggybacking: for each victim app, a Poisson-ish
/// number of `prompt_feed` posts on random users' walls.
///
/// Returns the number of posts made.
pub fn run_piggyback_day(
    platform: &mut Platform,
    plan: &PiggybackPlan,
    users: &[UserId],
    rng: &mut SmallRng,
    daily_rate: f64,
) -> usize {
    let mut made = 0;
    for (i, &victim) in plan.victims.iter().enumerate() {
        // victim app may have been deleted (it should not be — it's benign
        // and popular — but stay robust)
        let n = sample_count(rng, daily_rate);
        for _ in 0..n {
            if users.is_empty() {
                break;
            }
            let user = users[rng.gen_range(0..users.len())];
            let msg = PIGGYBACK_POST_TEMPLATES[i % PIGGYBACK_POST_TEMPLATES.len()];
            let link = plan.shortened[i].clone();
            if platform
                .post_via_prompt_feed(victim, user, msg, Some(link))
                .is_ok()
            {
                made += 1;
            }
        }
    }
    made
}

/// Samples an integer count with expectation `rate` (Bernoulli remainder on
/// top of the integer part; adequate for small rates).
pub(crate) fn sample_count(rng: &mut SmallRng, rate: f64) -> usize {
    let base = rate.floor() as usize;
    base + usize::from(rng.gen_bool((rate - base as f64).clamp(0.0, 1.0)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fb_platform::app::AppRegistration;
    use fb_platform::post::PostKind;
    use osn_types::permission::{Permission, PermissionSet};
    use rand::SeedableRng;

    fn setup() -> (Platform, Vec<AppId>, Vec<UserId>) {
        let mut p = Platform::new();
        let users = p.add_users(20);
        let apps: Vec<AppId> = (0..12)
            .map(|i| {
                p.register_app(AppRegistration::simple(
                    &format!("popular{i}"),
                    PermissionSet::from_iter([Permission::PublishStream]),
                    Url::parse(&format!("https://apps.facebook.com/p{i}/")).unwrap(),
                ))
                .unwrap()
            })
            .collect();
        (p, apps, users)
    }

    #[test]
    fn plan_takes_the_configured_victim_count() {
        let (_, apps, _) = setup();
        let mut shortener = Shortener::bitly();
        let config = ScenarioConfig::small();
        let plan = plan_piggyback(&apps, &mut shortener, &config);
        assert_eq!(plan.victims.len(), config.piggyback_victims);
        assert_eq!(plan.scam_urls.len(), plan.victims.len());
        assert!(plan.shortened.iter().all(Url::is_shortened));
    }

    #[test]
    fn day_run_produces_prompt_feed_posts_attributed_to_victims() {
        let (mut p, apps, users) = setup();
        let mut shortener = Shortener::bitly();
        let config = ScenarioConfig::small();
        let plan = plan_piggyback(&apps, &mut shortener, &config);
        let mut rng = SmallRng::seed_from_u64(1);
        let made = run_piggyback_day(&mut p, &plan, &users, &mut rng, 3.0);
        assert!(made >= plan.victims.len() * 3);
        let piggy: Vec<_> = p
            .posts()
            .iter()
            .filter(|post| post.kind == PostKind::PromptFeed)
            .collect();
        assert_eq!(piggy.len(), made);
        for post in piggy {
            assert!(plan.victims.contains(&post.app.unwrap()));
            assert!(post.link.as_ref().unwrap().is_shortened());
        }
    }

    #[test]
    fn sample_count_expectation() {
        let mut rng = SmallRng::seed_from_u64(2);
        let total: usize = (0..10_000).map(|_| sample_count(&mut rng, 1.3)).sum();
        let mean = total as f64 / 10_000.0;
        assert!((1.2..1.4).contains(&mean), "mean {mean}");
    }
}
