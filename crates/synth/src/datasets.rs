//! The D-* dataset pipeline (Table 1).
//!
//! §2.3's recipe, reproduced step by step:
//!
//! * **D-Total** — every app observed posting on a monitored wall.
//! * **D-Sample** — the labelled set: apps with ≥1 flagged post (minus the
//!   whitelist) as malicious; an equal number of benign apps chosen by (a)
//!   never flagged and (b) "vetted" by a Social-Bakers-like criterion, with
//!   the top posters filling any shortfall.
//! * **D-Summary / D-Inst / D-ProfileFeed** — the D-Sample apps whose
//!   summary / permission / profile-feed crawls succeeded.
//! * **D-Complete** — the intersection of the three.

use std::collections::HashSet;

use osn_types::ids::AppId;
use pagekeeper::labels::{derive_app_labels, LabelReport};

use crate::scenario::ScenarioWorld;

/// A per-class split of app ids (ascending within each class).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LabeledApps {
    /// Malicious-labelled apps.
    pub malicious: Vec<AppId>,
    /// Benign-labelled apps.
    pub benign: Vec<AppId>,
}

impl LabeledApps {
    /// Total apps across both classes.
    pub fn len(&self) -> usize {
        self.malicious.len() + self.benign.len()
    }

    /// Whether both classes are empty.
    pub fn is_empty(&self) -> bool {
        self.malicious.is_empty() && self.benign.is_empty()
    }

    fn retained(&self, keep: impl Fn(AppId) -> bool) -> LabeledApps {
        LabeledApps {
            malicious: self
                .malicious
                .iter()
                .copied()
                .filter(|&a| keep(a))
                .collect(),
            benign: self.benign.iter().copied().filter(|&a| keep(a)).collect(),
        }
    }
}

/// The full Table 1 bundle.
#[derive(Debug, Clone)]
pub struct DatasetBundle {
    /// All apps observed posting (Table 1's 111,167 analog).
    pub d_total: Vec<AppId>,
    /// The labelled sample.
    pub d_sample: LabeledApps,
    /// D-Sample apps with a crawled summary.
    pub d_summary: LabeledApps,
    /// D-Sample apps with a crawled permission set.
    pub d_inst: LabeledApps,
    /// D-Sample apps with a crawled profile feed.
    pub d_profile_feed: LabeledApps,
    /// Intersection of the three crawled datasets.
    pub d_complete: LabeledApps,
    /// The underlying label report (per-app flag/post counts).
    pub labels: LabelReport,
}

/// The paper's two-signal vetting: the Social-Bakers-style service tracks
/// the app with a community rating of >= 3/5 (scam apps never earn
/// genuine engagement), and the app shows real monthly activity. Both
/// signals are public observables — ground truth is never consulted.
fn is_vetted(world: &ScenarioWorld, app: AppId) -> bool {
    world.social_bakers.is_vetted(app, 3.0)
        && world
            .platform
            .app(app)
            .is_some_and(|rec| rec.max_mau() >= 50)
}

/// Builds the bundle from a finished scenario.
pub fn build_datasets(world: &ScenarioWorld) -> DatasetBundle {
    let labels = derive_app_labels(&world.mpk, &world.platform, &world.truth.whitelist);
    let d_total = world.observed_apps();

    let malicious = labels.malicious_apps();

    // Benign candidates: observed, never flagged, vetted.
    let flagged_or_whitelisted: HashSet<AppId> = labels
        .labels
        .iter()
        .filter(|(_, l)| !matches!(l, pagekeeper::labels::AppLabel::Benign))
        .map(|(&a, _)| a)
        .collect();
    let mut vetted: Vec<AppId> = d_total
        .iter()
        .copied()
        .filter(|a| !flagged_or_whitelisted.contains(a) && is_vetted(world, *a))
        .collect();
    // Rank vetted candidates by observed post volume (descending) so the
    // best-known apps are chosen first, then fill with top unvetted
    // posters (the paper's "top 523 applications in terms of number of
    // posts").
    let post_count = |a: &AppId| labels.post_counts.get(a).map_or(0, |&(_, total)| total);
    vetted.sort_by_key(|a| (std::cmp::Reverse(post_count(a)), *a));
    let mut benign: Vec<AppId> = vetted.iter().copied().take(malicious.len()).collect();
    if benign.len() < malicious.len() {
        let chosen: HashSet<AppId> = benign.iter().copied().collect();
        let mut fillers: Vec<AppId> = d_total
            .iter()
            .copied()
            .filter(|a| {
                // top posters with at least *some* community rating —
                // the manual sanity check the paper applied to its 523
                // post-count-selected additions
                !flagged_or_whitelisted.contains(a)
                    && !chosen.contains(a)
                    && world.social_bakers.is_vetted(*a, 2.0)
            })
            .collect();
        fillers.sort_by_key(|a| (std::cmp::Reverse(post_count(a)), *a));
        benign.extend(fillers.into_iter().take(malicious.len() - benign.len()));
    }
    benign.sort_unstable();

    let d_sample = LabeledApps { malicious, benign };

    let has_summary = |a: AppId| {
        world
            .crawl_archive
            .get(&a)
            .is_some_and(|m| m.summary.is_some())
    };
    let has_perms = |a: AppId| {
        world
            .crawl_archive
            .get(&a)
            .is_some_and(|m| m.permissions.is_some())
    };
    let has_feed = |a: AppId| {
        world
            .crawl_archive
            .get(&a)
            .is_some_and(|m| m.profile_feed.is_some())
    };

    let d_summary = d_sample.retained(has_summary);
    let d_inst = d_sample.retained(has_perms);
    let d_profile_feed = d_sample.retained(has_feed);
    let d_complete = d_sample.retained(|a| has_summary(a) && has_perms(a) && has_feed(a));

    DatasetBundle {
        d_total,
        d_sample,
        d_summary,
        d_inst,
        d_profile_feed,
        d_complete,
        labels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScenarioConfig;
    use crate::scenario::run_scenario;

    fn bundle() -> (ScenarioWorld, DatasetBundle) {
        let world = run_scenario(&ScenarioConfig::small());
        let bundle = build_datasets(&world);
        (world, bundle)
    }

    #[test]
    fn classes_are_balanced_and_disjoint() {
        let (_, b) = bundle();
        assert!(!b.d_sample.is_empty());
        assert_eq!(
            b.d_sample.malicious.len(),
            b.d_sample.benign.len(),
            "D-Sample is a balanced set by construction"
        );
        let m: HashSet<_> = b.d_sample.malicious.iter().collect();
        assert!(b.d_sample.benign.iter().all(|a| !m.contains(a)));
    }

    #[test]
    fn labelled_malicious_are_mostly_truly_malicious() {
        let (world, b) = bundle();
        let true_pos = b
            .d_sample
            .malicious
            .iter()
            .filter(|a| world.truth.malicious.contains(a))
            .count();
        let precision = true_pos as f64 / b.d_sample.malicious.len().max(1) as f64;
        assert!(
            precision > 0.9,
            "label precision should be high (paper: ≥97.4%), got {precision}"
        );
    }

    #[test]
    fn benign_side_is_mostly_truly_benign() {
        let (world, b) = bundle();
        let contaminated = b
            .d_sample
            .benign
            .iter()
            .filter(|a| world.truth.malicious.contains(a))
            .count();
        let rate = contaminated as f64 / b.d_sample.benign.len().max(1) as f64;
        assert!(rate < 0.05, "benign contamination {rate}");
    }

    #[test]
    fn crawl_losses_shrink_datasets_like_table1() {
        let (_, b) = bundle();
        // malicious lose far more summaries than benign (deletions)
        assert!(b.d_summary.malicious.len() < b.d_sample.malicious.len());
        assert!(b.d_summary.benign.len() as f64 >= b.d_sample.benign.len() as f64 * 0.85);
        let mal_summary_rate =
            b.d_summary.malicious.len() as f64 / b.d_sample.malicious.len().max(1) as f64;
        assert!(
            mal_summary_rate < 0.75,
            "malicious summary survival should be well below benign, got {mal_summary_rate}"
        );
        // permissions are the scarcest lane
        assert!(b.d_inst.malicious.len() <= b.d_summary.malicious.len());
        assert!(b.d_inst.benign.len() < b.d_sample.benign.len());
        // complete is the intersection
        assert!(b.d_complete.len() <= b.d_inst.len().min(b.d_profile_feed.len()));
        assert!(!b.d_complete.is_empty(), "D-Complete must not collapse");
    }

    #[test]
    fn d_total_contains_d_sample() {
        let (_, b) = bundle();
        let total: HashSet<_> = b.d_total.iter().collect();
        for a in b.d_sample.malicious.iter().chain(&b.d_sample.benign) {
            assert!(total.contains(a), "{a} in D-Sample but not D-Total");
        }
    }
}
