//! # frappe-jobs — deterministic parallel compute for the training pipeline
//!
//! The offline half of this repository (SMO training, k-fold
//! cross-validation, `(C, γ)` grid search, batch feature extraction, the
//! per-ratio experiment sweeps) decomposes into **seed-isolated tasks**:
//! every (grid point, fold) pair, every feature row, every sweep entry is a
//! pure function of its inputs, sharing nothing mutable with its siblings.
//! This crate exploits that with one tiny primitive, [`JobPool::run`]: an
//! *ordered fan-out/fan-in* over a scoped worker pool.
//!
//! ## Determinism contract
//!
//! `pool.run(n, f)` returns exactly `(0..n).map(f).collect()` — **bit for
//! bit, for any thread count**. Workers claim task indices from an atomic
//! cursor (so scheduling is racy), but every result is delivered tagged
//! with its index over a crossbeam fan-in channel and written into its
//! ordered slot; reduction order on the caller side is therefore always
//! index order, independent of completion order. Nothing about the task
//! decomposition is allowed to depend on which thread ran a task — the
//! determinism suite (`tests/determinism.rs`) enforces this for grid
//! search, cross-validation and batch extraction at thread counts
//! {1, 2, 8}.
//!
//! ## Nested parallelism policy
//!
//! Call sites do not coordinate: `grid_search` fans out over points ×
//! folds while an experiment sweep may already have fanned out over
//! ratios. To keep the machine from oversubscribing, a `run` invoked
//! *from inside a worker* executes inline on that worker thread (tracked
//! by a thread-local flag). Only the outermost level fans out, so the
//! total thread count is bounded by one pool regardless of nesting depth.
//! Hot nested loops that want parallelism at the *inner* level (grid
//! search) flatten their nesting into a single task list instead.
//!
//! ## Sizing
//!
//! [`JobPool::from_env`] honours the `FRAPPE_JOBS` environment variable
//! (a positive thread count) and otherwise uses
//! `std::thread::available_parallelism()`. `FRAPPE_JOBS=1` forces the
//! serial path everywhere — CI runs the determinism suite under both
//! `FRAPPE_JOBS=1` and `FRAPPE_JOBS=8` to pin the contract.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

thread_local! {
    /// Set while the current thread is executing tasks for some pool;
    /// nested `run` calls go inline instead of spawning a second level.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Name of the thread-count override environment variable.
pub const ENV_THREADS: &str = "FRAPPE_JOBS";

/// A sizing handle for scoped parallel execution.
///
/// The pool is cheap to construct and holds no threads while idle: each
/// [`run`](JobPool::run) spawns scoped workers, joins them before
/// returning, and the calling thread itself works the task list (so
/// `threads == 1` never spawns at all).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobPool {
    threads: usize,
}

impl JobPool {
    /// A pool with an explicit thread count (clamped to at least 1).
    pub fn with_threads(threads: usize) -> Self {
        JobPool {
            threads: threads.max(1),
        }
    }

    /// A pool sized from `FRAPPE_JOBS`, falling back to the machine's
    /// available parallelism. Invalid or non-positive values of the
    /// variable are ignored.
    pub fn from_env() -> Self {
        let threads = std::env::var(ENV_THREADS)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            });
        JobPool { threads }
    }

    /// A pool that *wants* `requested` threads but will not oversubscribe
    /// the machine: an explicit `FRAPPE_JOBS` override wins outright (the
    /// determinism suite depends on forcing exact counts), otherwise
    /// `requested` is clamped to `available_parallelism()`. On a
    /// single-core box this degrades to a 1-thread pool, i.e. the inline
    /// serial path — benchmarks built on it record [`mode`](Self::mode)
    /// so a "parallel" number measured serially is labelled as such.
    pub fn for_machine(requested: usize) -> Self {
        if let Some(forced) = std::env::var(ENV_THREADS)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
        {
            return JobPool::with_threads(forced);
        }
        let available = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        JobPool::with_threads(requested.max(1).min(available))
    }

    /// The configured thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Human-readable execution mode — `"serial"` for a 1-thread pool
    /// (every `run` goes inline, no spawning), `"parallel(N)"` otherwise.
    /// Benchmark reports record this next to their timings.
    pub fn mode(&self) -> String {
        if self.threads == 1 {
            "serial".to_string()
        } else {
            format!("parallel({})", self.threads)
        }
    }

    /// Runs `f(0), f(1), …, f(tasks - 1)` across the pool and returns the
    /// results **in index order** — bit-identical to the serial
    /// `(0..tasks).map(f).collect()` for any thread count.
    ///
    /// Runs inline (no spawning) when the pool has one thread, when there
    /// is at most one task, or when called from inside another `run`
    /// (see the crate docs on nested parallelism).
    ///
    /// # Panics
    /// Propagates the first panic raised by `f` after joining workers.
    pub fn run<R, F>(&self, tasks: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let registry = frappe_obs::Registry::global();
        registry.counter("jobs_runs").inc();
        registry.counter("jobs_tasks").add(tasks as u64);
        let workers = self.threads.min(tasks);
        if workers <= 1 || IN_WORKER.with(Cell::get) {
            registry.counter("jobs_inline_runs").inc();
            return (0..tasks).map(f).collect();
        }
        let _span = frappe_obs::span("jobs/fan_out");
        registry.counter("jobs_fan_outs").inc();

        let cursor = AtomicUsize::new(0);
        let (tx, rx) = crossbeam::channel::unbounded::<(usize, R)>();
        let work = |tx: crossbeam::channel::Sender<(usize, R)>| {
            let was_worker = IN_WORKER.with(|w| w.replace(true));
            loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= tasks {
                    break;
                }
                if tx.send((i, f(i))).is_err() {
                    break;
                }
            }
            IN_WORKER.with(|w| w.set(was_worker));
        };

        std::thread::scope(|scope| {
            let work = &work;
            // workers 1..N are spawned; the calling thread is worker 0
            for _ in 1..workers {
                let tx = tx.clone();
                scope.spawn(move || work(tx));
            }
            work(tx);
        });
        // the scope joined every worker and all senders are dropped, so
        // the channel now holds exactly one result per task
        let mut slots: Vec<Option<R>> = (0..tasks).map(|_| None).collect();
        for (i, result) in rx.try_iter() {
            debug_assert!(slots[i].is_none(), "task {i} produced twice");
            slots[i] = Some(result);
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every task index was claimed exactly once"))
            .collect()
    }

    /// Maps `f` over a slice with the item index, preserving order:
    /// equivalent to `items.iter().enumerate().map(|(i, x)| f(i, x))`.
    pub fn par_map_indexed<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.run(items.len(), |i| f(i, &items[i]))
    }
}

impl Default for JobPool {
    fn default() -> Self {
        JobPool::from_env()
    }
}

/// Convenience: [`JobPool::par_map_indexed`] on the env-sized pool.
pub fn par_map_indexed<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    JobPool::from_env().par_map_indexed(items, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_are_in_index_order_for_all_thread_counts() {
        let serial: Vec<u64> = (0..97u64).map(|i| i * i + 3).collect();
        for threads in [1, 2, 3, 8, 64] {
            let pool = JobPool::with_threads(threads);
            let got = pool.run(97, |i| (i as u64) * (i as u64) + 3);
            assert_eq!(got, serial, "threads = {threads}");
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let calls = AtomicU64::new(0);
        let pool = JobPool::with_threads(8);
        let out = pool.run(1000, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1000);
        assert_eq!(out.len(), 1000);
    }

    #[test]
    fn par_map_indexed_matches_serial_enumerate() {
        let items: Vec<String> = (0..40).map(|i| format!("app-{i}")).collect();
        let serial: Vec<String> = items
            .iter()
            .enumerate()
            .map(|(i, s)| format!("{i}:{s}"))
            .collect();
        let got = JobPool::with_threads(4).par_map_indexed(&items, |i, s| format!("{i}:{s}"));
        assert_eq!(got, serial);
    }

    #[test]
    fn nested_runs_execute_inline_without_oversubscription() {
        // outer fan-out × inner run: the inner level must not spawn, and
        // results must still be exactly the serial composition
        let pool = JobPool::with_threads(4);
        let got = pool.run(6, |outer| {
            let inner = JobPool::with_threads(4).run(5, move |i| outer * 10 + i);
            inner.iter().sum::<usize>()
        });
        let want: Vec<usize> = (0..6)
            .map(|outer| (0..5).map(|i| outer * 10 + i).sum())
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn zero_and_one_task_edge_cases() {
        let pool = JobPool::with_threads(8);
        assert_eq!(pool.run(0, |i| i), Vec::<usize>::new());
        assert_eq!(pool.run(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn with_threads_clamps_to_one() {
        assert_eq!(JobPool::with_threads(0).threads(), 1);
    }

    #[test]
    fn mode_labels_serial_and_parallel_pools() {
        assert_eq!(JobPool::with_threads(1).mode(), "serial");
        assert_eq!(JobPool::with_threads(4).mode(), "parallel(4)");
    }

    // NOTE: this is the only test allowed to touch FRAPPE_JOBS — tests
    // run concurrently in one process, so a second mutator would race.
    #[test]
    fn env_override_controls_sizing() {
        // `set_var` is safe in edition 2021; the determinism contract makes
        // a concurrent reader harmless (any thread count, same results).
        std::env::set_var(ENV_THREADS, "3");
        assert_eq!(JobPool::from_env().threads(), 3);
        std::env::set_var(ENV_THREADS, "not-a-number");
        assert!(JobPool::from_env().threads() >= 1);
        std::env::set_var(ENV_THREADS, "0");
        assert!(JobPool::from_env().threads() >= 1);

        // for_machine: the explicit override beats the machine clamp …
        std::env::set_var(ENV_THREADS, "5");
        assert_eq!(JobPool::for_machine(2).threads(), 5);
        std::env::remove_var(ENV_THREADS);

        // … and without one, the request is clamped to the box
        let available = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let pool = JobPool::for_machine(8);
        assert_eq!(pool.threads(), 8.min(available));
        assert_eq!(JobPool::for_machine(0).threads(), 1, "clamped up");
        if available == 1 {
            assert_eq!(pool.mode(), "serial", "1-core boxes degrade to inline");
        }
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        // The panic surfaces either with the task's own message (caller
        // thread hit it) or as std's "a scoped thread panicked" (spawned
        // worker hit it) — which one is a scheduling race, so we only
        // assert that `run` does not swallow it.
        let pool = JobPool::with_threads(2);
        let _ = pool.run(8, |i| {
            if i == 5 {
                panic!("task panic propagates");
            }
            i
        });
    }
}
