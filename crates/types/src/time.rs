//! Discrete simulation time.
//!
//! The paper's measurement spans nine months (June 2011 – March 2012) with
//! weekly profile crawls and a three-month MAU observation window. All of
//! that is naturally expressed on a **day-granularity clock**: [`SimTime`] is
//! a day index from the start of the simulation, [`SimDuration`] a span in
//! days. No wall-clock time is used anywhere in the workspace, which keeps
//! every experiment deterministic.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A point in simulated time, measured in whole days since the start of the
/// observation period (day 0 ≙ the first day of the trace).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(pub u32);

/// A span of simulated time in whole days.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimDuration(pub u32);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs a time from a day index.
    #[inline]
    pub const fn from_days(days: u32) -> Self {
        SimTime(days)
    }

    /// Day index since the simulation origin.
    #[inline]
    pub const fn days(self) -> u32 {
        self.0
    }

    /// Zero-based index of the 30-day "month" containing this instant.
    ///
    /// The paper reports per-month aggregates (e.g. monthly active users);
    /// we use fixed 30-day months, which is also how Facebook's MAU metric
    /// is defined ("engaged with the application over the last 30 days").
    #[inline]
    pub const fn month(self) -> u32 {
        self.0 / 30
    }

    /// Zero-based index of the 7-day week containing this instant
    /// (profile crawls in the paper happen once a week).
    #[inline]
    pub const fn week(self) -> u32 {
        self.0 / 7
    }

    /// Duration elapsed since `earlier`, saturating at zero if `earlier` is
    /// in the future.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// A span of `n` days.
    #[inline]
    pub const fn days(n: u32) -> Self {
        SimDuration(n)
    }

    /// A span of `n` 7-day weeks.
    #[inline]
    pub const fn weeks(n: u32) -> Self {
        SimDuration(n * 7)
    }

    /// A span of `n` 30-day months.
    #[inline]
    pub const fn months(n: u32) -> Self {
        SimDuration(n * 30)
    }

    /// Length of the span in days.
    #[inline]
    pub const fn as_days(self) -> u32 {
        self.0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "day {}", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}d", self.0)
    }
}

/// Iterator over each day in `[start, end)`, used by the scenario driver to
/// advance the simulated platform one day at a time.
pub fn each_day(start: SimTime, end: SimTime) -> impl Iterator<Item = SimTime> {
    (start.0..end.0).map(SimTime)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn month_and_week_boundaries() {
        assert_eq!(SimTime(0).month(), 0);
        assert_eq!(SimTime(29).month(), 0);
        assert_eq!(SimTime(30).month(), 1);
        assert_eq!(SimTime(0).week(), 0);
        assert_eq!(SimTime(6).week(), 0);
        assert_eq!(SimTime(7).week(), 1);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime(10) + SimDuration::weeks(2);
        assert_eq!(t, SimTime(24));
        assert_eq!(t - SimDuration::days(4), SimTime(20));
        assert_eq!(t.since(SimTime(10)), SimDuration(14));
        // saturates instead of underflowing
        assert_eq!(SimTime(3) - SimDuration::days(10), SimTime(0));
        assert_eq!(SimTime(3).since(SimTime(10)), SimDuration::ZERO);
    }

    #[test]
    fn nine_month_trace_is_270_days() {
        let start = SimTime::ZERO;
        let end = start + SimDuration::months(9);
        assert_eq!(end.days(), 270);
        assert_eq!(each_day(start, end).count(), 270);
    }

    #[test]
    fn add_assign_advances_clock() {
        let mut t = SimTime::ZERO;
        t += SimDuration::days(1);
        t += SimDuration::days(1);
        assert_eq!(t, SimTime(2));
    }

    #[test]
    fn duration_addition() {
        assert_eq!(
            SimDuration::weeks(1) + SimDuration::days(3),
            SimDuration(10)
        );
    }
}
