//! A small, strict URL model.
//!
//! FRAppE's link analysis needs exactly four capabilities:
//!
//! 1. decompose a link into scheme / host / path / query,
//! 2. compare hosts at the *registrable domain* level ("is this link
//!    external to `facebook.com`?" — the external-link feature of §4.2.2),
//! 3. read query parameters (the `id=` and `client_id=` parameters of app
//!    installation URLs — §4.1.4),
//! 4. recognise URL-shortener hosts (92% of shortened URLs in the paper's
//!    dataset are `bit.ly`; `j.mp` appears in Table 9).
//!
//! [`Url`] implements that subset with strict validation, rather than pulling
//! in a full RFC 3986 parser (see crate docs for the rationale).

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::Error;

/// Hosts operated by URL-shortening services in the 2011/2012 studied period.
/// `bit.ly` and `j.mp` are both run by Bitly (and both appear in the paper).
pub const SHORTENER_HOSTS: &[&str] = &[
    "bit.ly",
    "j.mp",
    "goo.gl",
    "tinyurl.com",
    "t.co",
    "ow.ly",
    "is.gd",
];

/// A validated DNS hostname.
///
/// Stored lower-cased. Only the hostname grammar the experiments need is
/// enforced: non-empty dot-separated labels of `[a-z0-9-]`, no leading or
/// trailing hyphen, at least one dot (we never deal in bare TLDs or
/// localhost).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Domain(String);

impl Domain {
    /// Parses and validates a hostname, lower-casing it.
    pub fn parse(s: &str) -> Result<Self, Error> {
        let lower = s.trim().to_ascii_lowercase();
        if lower.is_empty() || !lower.contains('.') {
            return Err(Error::InvalidDomain(s.to_string()));
        }
        for label in lower.split('.') {
            let ok = !label.is_empty()
                && label.len() <= 63
                && !label.starts_with('-')
                && !label.ends_with('-')
                && label
                    .bytes()
                    .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-');
            if !ok {
                return Err(Error::InvalidDomain(s.to_string()));
            }
        }
        Ok(Domain(lower))
    }

    /// The full hostname, lower-cased.
    #[inline]
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The *registrable domain*: the last two labels of the hostname
    /// (`apps.facebook.com` → `facebook.com`). This is the granularity at
    /// which the paper's WOT reputation lookups and hosting analysis
    /// (Table 3) operate. Sufficient for the synthetic universe, which uses
    /// no multi-label public suffixes.
    pub fn registrable(&self) -> Domain {
        let labels: Vec<&str> = self.0.rsplitn(3, '.').collect();
        if labels.len() <= 2 {
            self.clone()
        } else {
            Domain(format!("{}.{}", labels[1], labels[0]))
        }
    }

    /// Whether this host is `facebook.com` or one of its subdomains.
    pub fn is_facebook(&self) -> bool {
        self.registrable().as_str() == "facebook.com"
    }

    /// Whether this host belongs to a known URL-shortening service.
    pub fn is_shortener(&self) -> bool {
        SHORTENER_HOSTS.contains(&self.0.as_str())
    }

    /// Whether this host ends with the given registrable domain
    /// (`d.suffix_of("amazonaws.com")` is true for
    /// `s3.amazonaws.com`).
    pub fn is_under(&self, registrable: &str) -> bool {
        self.0 == registrable || self.0.ends_with(&format!(".{registrable}"))
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl FromStr for Domain {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Domain::parse(s)
    }
}

/// URL scheme; the studied platform only ever serves `http` / `https`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// Plain HTTP.
    Http,
    /// HTTP over TLS.
    Https,
}

impl Scheme {
    /// Scheme name without the `://` separator.
    pub const fn as_str(self) -> &'static str {
        match self {
            Scheme::Http => "http",
            Scheme::Https => "https",
        }
    }
}

/// A parsed URL (see module docs for the supported subset).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Url {
    scheme: Scheme,
    host: Domain,
    /// Path beginning with `/` (`/` when absent from the input).
    path: String,
    /// Query parameters in input order, raw (no percent-decoding).
    query: Vec<(String, String)>,
}

impl Url {
    /// Parses a URL string.
    ///
    /// Accepts `http://` and `https://` URLs with an optional path, query
    /// string, and fragment (the fragment is discarded — nothing in the
    /// paper's analysis reads fragments).
    pub fn parse(input: &str) -> Result<Self, Error> {
        let s = input.trim();
        let (scheme, rest) = if let Some(rest) = s.strip_prefix("https://") {
            (Scheme::Https, rest)
        } else if let Some(rest) = s.strip_prefix("http://") {
            (Scheme::Http, rest)
        } else {
            return Err(Error::InvalidUrl {
                input: input.to_string(),
                reason: "missing http:// or https:// scheme",
            });
        };

        // Strip the fragment first: it may contain '?' per RFC 3986.
        let rest = rest.split('#').next().unwrap_or(rest);

        let (authority_and_path, query_str) = match rest.split_once('?') {
            Some((a, q)) => (a, Some(q)),
            None => (rest, None),
        };

        let (host_str, path) = match authority_and_path.split_once('/') {
            Some((h, p)) => (h, format!("/{p}")),
            None => (authority_and_path, "/".to_string()),
        };

        if host_str.contains('@') || host_str.contains(':') {
            return Err(Error::InvalidUrl {
                input: input.to_string(),
                reason: "userinfo / explicit ports are not supported",
            });
        }

        let host = Domain::parse(host_str).map_err(|_| Error::InvalidUrl {
            input: input.to_string(),
            reason: "invalid host",
        })?;

        let mut query = Vec::new();
        if let Some(q) = query_str {
            for pair in q.split('&').filter(|p| !p.is_empty()) {
                match pair.split_once('=') {
                    Some((k, v)) => query.push((k.to_string(), v.to_string())),
                    None => query.push((pair.to_string(), String::new())),
                }
            }
        }

        Ok(Url {
            scheme,
            host,
            path,
            query,
        })
    }

    /// Builds a URL programmatically. `path` is normalized to start with `/`.
    pub fn build(scheme: Scheme, host: Domain, path: &str) -> Self {
        let path = if path.starts_with('/') {
            path.to_string()
        } else {
            format!("/{path}")
        };
        Url {
            scheme,
            host,
            path,
            query: Vec::new(),
        }
    }

    /// Appends a query parameter, returning `self` for chaining.
    pub fn with_param(mut self, key: &str, value: impl fmt::Display) -> Self {
        self.query.push((key.to_string(), value.to_string()));
        self
    }

    /// URL scheme.
    #[inline]
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// Host part.
    #[inline]
    pub fn host(&self) -> &Domain {
        &self.host
    }

    /// Path part (always begins with `/`).
    #[inline]
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Value of the first query parameter named `key`, if present.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// All query parameters in input order.
    pub fn query_params(&self) -> &[(String, String)] {
        &self.query
    }

    /// Whether this link points at `facebook.com` or a subdomain — i.e. is
    /// *internal*. The complement is the paper's *external link* notion
    /// (§4.2.2): "every URL pointing to a domain outside of facebook.com".
    pub fn is_facebook(&self) -> bool {
        self.host.is_facebook()
    }

    /// Whether this link points at a known URL-shortening service.
    pub fn is_shortened(&self) -> bool {
        self.host.is_shortener()
    }
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}://{}{}", self.scheme.as_str(), self.host, self.path)?;
        for (i, (k, v)) in self.query.iter().enumerate() {
            let sep = if i == 0 { '?' } else { '&' };
            if v.is_empty() {
                write!(f, "{sep}{k}")?;
            } else {
                write!(f, "{sep}{k}={v}")?;
            }
        }
        Ok(())
    }
}

impl FromStr for Url {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Url::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_url() {
        let u = Url::parse("https://graph.facebook.com/12345").unwrap();
        assert_eq!(u.scheme(), Scheme::Https);
        assert_eq!(u.host().as_str(), "graph.facebook.com");
        assert_eq!(u.path(), "/12345");
        assert!(u.query_params().is_empty());
        assert!(u.is_facebook());
    }

    #[test]
    fn parses_query_params() {
        let u =
            Url::parse("https://www.facebook.com/apps/application.php?id=42&client_id=43").unwrap();
        assert_eq!(u.query_param("id"), Some("42"));
        assert_eq!(u.query_param("client_id"), Some("43"));
        assert_eq!(u.query_param("missing"), None);
    }

    #[test]
    fn discards_fragment() {
        let u = Url::parse("http://example.com/page?a=1#frag?bogus").unwrap();
        assert_eq!(u.path(), "/page");
        assert_eq!(u.query_param("a"), Some("1"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Url::parse("not a url").is_err());
        assert!(Url::parse("ftp://example.com/x").is_err());
        assert!(Url::parse("http:///nopath").is_err());
        assert!(Url::parse("http://user@example.com/").is_err());
        assert!(Url::parse("http://example.com:8080/").is_err());
    }

    #[test]
    fn display_roundtrip() {
        for s in [
            "https://bit.ly/oRzBNU",
            "http://thenamemeans2.com/landing?src=fb&x",
            "https://apps.facebook.com/mypagekeeper/",
        ] {
            let u = Url::parse(s).unwrap();
            let back = Url::parse(&u.to_string()).unwrap();
            assert_eq!(u, back, "roundtrip failed for {s}");
        }
    }

    #[test]
    fn registrable_domain() {
        let d = Domain::parse("s3.amazonaws.com").unwrap();
        assert_eq!(d.registrable().as_str(), "amazonaws.com");
        assert!(d.is_under("amazonaws.com"));
        assert!(!d.is_under("azonaws.com"), "must match label boundary");
        let bare = Domain::parse("bit.ly").unwrap();
        assert_eq!(bare.registrable(), bare);
    }

    #[test]
    fn facebook_detection_matches_label_boundaries() {
        assert!(Domain::parse("facebook.com").unwrap().is_facebook());
        assert!(Domain::parse("apps.facebook.com").unwrap().is_facebook());
        assert!(!Domain::parse("notfacebook.com").unwrap().is_facebook());
        assert!(!Domain::parse("facebook.com.evil.net")
            .unwrap()
            .is_facebook());
    }

    #[test]
    fn shortener_detection() {
        assert!(Url::parse("https://bit.ly/abc").unwrap().is_shortened());
        assert!(Url::parse("http://j.mp/oRzBNU").unwrap().is_shortened());
        assert!(!Url::parse("http://example.com/bit.ly")
            .unwrap()
            .is_shortened());
    }

    #[test]
    fn domain_validation() {
        assert!(Domain::parse("EXAMPLE.Com").is_ok()); // case folded
        assert_eq!(
            Domain::parse("EXAMPLE.Com").unwrap().as_str(),
            "example.com"
        );
        assert!(Domain::parse("nodots").is_err());
        assert!(Domain::parse("-bad.com").is_err());
        assert!(Domain::parse("bad-.com").is_err());
        assert!(Domain::parse("sp ace.com").is_err());
        assert!(Domain::parse("").is_err());
        assert!(Domain::parse("a..b").is_err());
    }

    #[test]
    fn builder_with_params() {
        let u = Url::build(
            Scheme::Https,
            Domain::parse("graph.facebook.com").unwrap(),
            "app",
        )
        .with_param("id", 99)
        .with_param("flag", "");
        assert_eq!(u.to_string(), "https://graph.facebook.com/app?id=99&flag");
    }
}
