//! Error type shared across the workspace's vocabulary layer.

use std::fmt;

/// Errors produced while constructing or parsing vocabulary types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A permission name not present in the 64-entry catalogue.
    UnknownPermission(String),
    /// A string that does not parse as a URL under the subset grammar in
    /// [`crate::url`].
    InvalidUrl {
        /// The offending input.
        input: String,
        /// Human-readable reason.
        reason: &'static str,
    },
    /// A domain name that violates the hostname grammar.
    InvalidDomain(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownPermission(name) => write!(f, "unknown permission: {name:?}"),
            Error::InvalidUrl { input, reason } => {
                write!(f, "invalid URL {input:?}: {reason}")
            }
            Error::InvalidDomain(d) => write!(f, "invalid domain: {d:?}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;
