//! Strongly-typed identifiers.
//!
//! Facebook assigns every application a unique numeric identifier (the paper
//! calls this the *app ID* and frames its central question as: "given an
//! app's identity number ... can we detect if the app is malicious?").
//! We mirror that with newtype wrappers over `u64` so an [`AppId`] can never
//! be confused with a [`UserId`] at compile time.

use std::fmt;
use std::num::ParseIntError;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize,
            Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub u64);

        impl $name {
            /// Wraps a raw numeric identifier.
            #[inline]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw numeric identifier.
            #[inline]
            pub const fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }

        impl FromStr for $name {
            type Err = ParseIntError;

            /// Parses either a bare number (`"1234"`) or the prefixed display
            /// form (e.g. `"app:1234"`).
            fn from_str(s: &str) -> Result<Self, Self::Err> {
                let digits = s.strip_prefix($prefix).unwrap_or(s);
                digits.parse::<u64>().map(Self)
            }
        }
    };
}

id_type!(
    /// Unique identifier of a third-party application, as assigned by the
    /// platform at registration time. App *names* are not unique (a fact
    /// hackers exploit — §4.2.1 of the paper); the ID is the only stable key.
    AppId,
    "app:"
);

id_type!(
    /// Unique identifier of a platform user account.
    UserId,
    "user:"
);

id_type!(
    /// Unique identifier of a wall/feed post.
    PostId,
    "post:"
);

id_type!(
    /// Unique identifier of an OAuth-style access token handed to an
    /// application server when a user installs the app.
    TokenId,
    "token:"
);

id_type!(
    /// Unique identifier of a registered web domain in the simulated
    /// reputation / hosting universe.
    DomainId,
    "domain:"
);

id_type!(
    /// Identifier of a hacker campaign in the synthetic workload. One
    /// campaign corresponds to "one hacker controls many malicious apps"
    /// (an *AppNet* in the paper's terminology).
    CampaignId,
    "campaign:"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_prefix() {
        assert_eq!(AppId(42).to_string(), "app:42");
        assert_eq!(UserId(7).to_string(), "user:7");
        assert_eq!(PostId(0).to_string(), "post:0");
    }

    #[test]
    fn parses_bare_and_prefixed_forms() {
        assert_eq!("123".parse::<AppId>().unwrap(), AppId(123));
        assert_eq!("app:123".parse::<AppId>().unwrap(), AppId(123));
        assert_eq!("user:9".parse::<UserId>().unwrap(), UserId(9));
    }

    #[test]
    fn rejects_wrong_prefix_digits() {
        assert!("user:x".parse::<UserId>().is_err());
        assert!("".parse::<AppId>().is_err());
    }

    #[test]
    fn roundtrips_through_display() {
        for raw in [0u64, 1, 42, u64::MAX] {
            let id = AppId(raw);
            assert_eq!(id.to_string().parse::<AppId>().unwrap(), id);
        }
    }

    #[test]
    fn ids_are_ordered_by_raw_value() {
        assert!(AppId(1) < AppId(2));
        assert_eq!(AppId(5).raw(), 5);
    }

    #[test]
    fn serde_is_transparent() {
        let json = serde_json::to_string(&AppId(77)).unwrap();
        assert_eq!(json, "77");
        let back: AppId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, AppId(77));
    }
}
