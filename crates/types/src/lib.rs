//! # osn-types — shared vocabulary for the FRAppE reproduction
//!
//! This crate defines the plain-data types shared by every other crate in the
//! workspace: strongly-typed identifiers ([`AppId`], [`UserId`], [`PostId`]),
//! the 2012-era Facebook permission catalogue ([`Permission`],
//! [`PermissionSet`]), a small URL model ([`Url`], [`Domain`]) sufficient for
//! the paper's link analysis, and a discrete simulation clock ([`SimTime`]).
//!
//! Nothing in this crate performs I/O or holds mutable global state; it is the
//! vocabulary layer everything else speaks.
//!
//! ## Why a bespoke URL type?
//!
//! FRAppE's features only need scheme/host/path/query decomposition, domain
//! comparison ("is this on `facebook.com`?") and recognising shortened URLs.
//! A full RFC 3986 parser would be a heavyweight external dependency; the
//! paper's analysis never needs IRIs, percent-decoding or normalization
//! subtleties, so [`url::Url`](crate::url) implements exactly the subset the
//! experiments exercise, with strict well-formedness checks and tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod ids;
pub mod permission;
pub mod time;
pub mod url;

pub use error::{Error, Result};
pub use ids::{AppId, CampaignId, DomainId, PostId, TokenId, UserId};
pub use permission::{Permission, PermissionSet};
pub use time::{SimDuration, SimTime};
pub use url::{Domain, Url};
