//! The 2012-era Facebook permission catalogue.
//!
//! At installation time every app requests a set of permissions "chosen from
//! a pool of 64 permissions pre-defined by Facebook" (§4.1.2). This module
//! reproduces that pool: 22 `user_*` data permissions, their 22 `friends_*`
//! mirrors, presence permissions, and the extended permissions (including
//! `publish_stream`, `offline_access` and `email`, the ones the paper's
//! Fig. 6 reports as most requested).
//!
//! [`PermissionSet`] is a 64-bit set — one bit per catalogue entry — so the
//! entire permission model of an application is a single copyable word, and
//! FRAppE's "number of permissions requested" feature is a `count_ones`.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::Error;

macro_rules! permissions {
    ($(($idx:literal, $variant:ident, $api:literal, $class:ident)),+ $(,)?) => {
        /// One of the 64 permissions an application can request at install
        /// time.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
        #[allow(missing_docs)] // the API name string documents each variant
        #[repr(u8)]
        pub enum Permission {
            $($variant = $idx),+
        }

        impl Permission {
            /// Every permission in the catalogue, in stable bit order.
            pub const ALL: [Permission; 64] = [$(Permission::$variant),+];

            /// The API-level name of the permission, as it would appear in an
            /// OAuth scope string (e.g. `"publish_stream"`).
            pub const fn api_name(self) -> &'static str {
                match self {
                    $(Permission::$variant => $api),+
                }
            }

            /// Broad class of the permission (used by the synthetic workload
            /// to build realistic request profiles).
            pub const fn class(self) -> PermissionClass {
                match self {
                    $(Permission::$variant => PermissionClass::$class),+
                }
            }

            /// Bit index of the permission inside a [`PermissionSet`].
            #[inline]
            pub const fn bit(self) -> u8 {
                self as u8
            }

            /// Inverse of [`Permission::bit`]; `None` if out of range.
            pub const fn from_bit(bit: u8) -> Option<Permission> {
                if bit < 64 {
                    Some(Self::ALL[bit as usize])
                } else {
                    None
                }
            }
        }

        impl FromStr for Permission {
            type Err = Error;

            fn from_str(s: &str) -> Result<Self, Self::Err> {
                match s {
                    $($api => Ok(Permission::$variant),)+
                    other => Err(Error::UnknownPermission(other.to_string())),
                }
            }
        }
    };
}

/// Coarse grouping of permissions by what they grant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PermissionClass {
    /// Read access to a field of the installing user's own profile.
    UserData,
    /// Read access to the same field on the user's friends' profiles.
    FriendsData,
    /// Ability to act on behalf of the user (post, RSVP, manage, …).
    Action,
    /// Session/infrastructure capabilities (offline access, XMPP, …).
    Session,
}

permissions! {
    // --- user data ---------------------------------------------------------
    (0,  UserAboutMe, "user_about_me", UserData),
    (1,  UserActivities, "user_activities", UserData),
    (2,  UserBirthday, "user_birthday", UserData),
    (3,  UserCheckins, "user_checkins", UserData),
    (4,  UserEducationHistory, "user_education_history", UserData),
    (5,  UserEvents, "user_events", UserData),
    (6,  UserGroups, "user_groups", UserData),
    (7,  UserHometown, "user_hometown", UserData),
    (8,  UserInterests, "user_interests", UserData),
    (9,  UserLikes, "user_likes", UserData),
    (10, UserLocation, "user_location", UserData),
    (11, UserNotes, "user_notes", UserData),
    (12, UserOnlinePresence, "user_online_presence", UserData),
    (13, UserPhotos, "user_photos", UserData),
    (14, UserQuestions, "user_questions", UserData),
    (15, UserRelationships, "user_relationships", UserData),
    (16, UserRelationshipDetails, "user_relationship_details", UserData),
    (17, UserReligionPolitics, "user_religion_politics", UserData),
    (18, UserStatus, "user_status", UserData),
    (19, UserSubscriptions, "user_subscriptions", UserData),
    (20, UserVideos, "user_videos", UserData),
    (21, UserWebsite, "user_website", UserData),
    (22, UserWorkHistory, "user_work_history", UserData),
    // --- friends data ------------------------------------------------------
    (23, FriendsAboutMe, "friends_about_me", FriendsData),
    (24, FriendsActivities, "friends_activities", FriendsData),
    (25, FriendsBirthday, "friends_birthday", FriendsData),
    (26, FriendsCheckins, "friends_checkins", FriendsData),
    (27, FriendsEducationHistory, "friends_education_history", FriendsData),
    (28, FriendsEvents, "friends_events", FriendsData),
    (29, FriendsGroups, "friends_groups", FriendsData),
    (30, FriendsHometown, "friends_hometown", FriendsData),
    (31, FriendsInterests, "friends_interests", FriendsData),
    (32, FriendsLikes, "friends_likes", FriendsData),
    (33, FriendsLocation, "friends_location", FriendsData),
    (34, FriendsNotes, "friends_notes", FriendsData),
    (35, FriendsOnlinePresence, "friends_online_presence", FriendsData),
    (36, FriendsPhotos, "friends_photos", FriendsData),
    (37, FriendsQuestions, "friends_questions", FriendsData),
    (38, FriendsRelationships, "friends_relationships", FriendsData),
    (39, FriendsRelationshipDetails, "friends_relationship_details", FriendsData),
    (40, FriendsReligionPolitics, "friends_religion_politics", FriendsData),
    (41, FriendsStatus, "friends_status", FriendsData),
    (42, FriendsSubscriptions, "friends_subscriptions", FriendsData),
    (43, FriendsVideos, "friends_videos", FriendsData),
    (44, FriendsWebsite, "friends_website", FriendsData),
    (45, FriendsWorkHistory, "friends_work_history", FriendsData),
    // --- contact / identity ------------------------------------------------
    (46, Email, "email", UserData),
    // --- extended: read ----------------------------------------------------
    (47, ReadFriendlists, "read_friendlists", UserData),
    (48, ReadInsights, "read_insights", Session),
    (49, ReadMailbox, "read_mailbox", UserData),
    (50, ReadRequests, "read_requests", UserData),
    (51, ReadStream, "read_stream", UserData),
    // --- extended: act on behalf of the user --------------------------------
    (52, PublishStream, "publish_stream", Action),
    (53, PublishActions, "publish_actions", Action),
    (54, PublishCheckins, "publish_checkins", Action),
    (55, CreateEvent, "create_event", Action),
    (56, RsvpEvent, "rsvp_event", Action),
    (57, ManageFriendlists, "manage_friendlists", Action),
    (58, ManageNotifications, "manage_notifications", Action),
    (59, ManagePages, "manage_pages", Action),
    (60, Sms, "sms", Action),
    // --- extended: session -------------------------------------------------
    (61, OfflineAccess, "offline_access", Session),
    (62, XmppLogin, "xmpp_login", Session),
    (63, AdsManagement, "ads_management", Session),
}

impl fmt::Display for Permission {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.api_name())
    }
}

/// A set of requested permissions, represented as one bit per catalogue
/// entry.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct PermissionSet(u64);

impl PermissionSet {
    /// The empty set (an app that requests no permissions at all only gets
    /// the user's public profile — possible but rare).
    pub const EMPTY: PermissionSet = PermissionSet(0);

    /// Parses an OAuth-style comma-separated scope string, e.g.
    /// `"publish_stream,email"`. Unknown permission names are an error.
    pub fn from_scope_str(scope: &str) -> Result<Self, Error> {
        let mut set = PermissionSet::EMPTY;
        for part in scope.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            set.insert(part.parse()?);
        }
        Ok(set)
    }

    /// Renders the set as an OAuth-style scope string in bit order.
    pub fn to_scope_str(self) -> String {
        let names: Vec<&str> = self.iter().map(Permission::api_name).collect();
        names.join(",")
    }

    /// Adds a permission to the set.
    #[inline]
    pub fn insert(&mut self, p: Permission) {
        self.0 |= 1u64 << p.bit();
    }

    /// Removes a permission from the set.
    #[inline]
    pub fn remove(&mut self, p: Permission) {
        self.0 &= !(1u64 << p.bit());
    }

    /// Whether the set contains `p`.
    #[inline]
    pub const fn contains(self, p: Permission) -> bool {
        self.0 & (1u64 << p.bit()) != 0
    }

    /// Number of permissions in the set — FRAppE's *permission count*
    /// feature (Table 4).
    #[inline]
    pub const fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// Whether the set is empty.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Set union.
    #[inline]
    pub const fn union(self, other: PermissionSet) -> PermissionSet {
        PermissionSet(self.0 | other.0)
    }

    /// Set intersection.
    #[inline]
    pub const fn intersection(self, other: PermissionSet) -> PermissionSet {
        PermissionSet(self.0 & other.0)
    }

    /// Whether every permission in `self` is also in `other`.
    #[inline]
    pub const fn is_subset_of(self, other: PermissionSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Iterates the contained permissions in bit order.
    pub fn iter(self) -> impl Iterator<Item = Permission> {
        (0u8..64).filter_map(move |bit| {
            if self.0 & (1u64 << bit) != 0 {
                Permission::from_bit(bit)
            } else {
                None
            }
        })
    }

    /// Raw bit representation (stable across runs; used for hashing and
    /// serialization).
    #[inline]
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// Reconstructs a set from [`PermissionSet::bits`].
    #[inline]
    pub const fn from_bits(bits: u64) -> Self {
        PermissionSet(bits)
    }
}

impl FromIterator<Permission> for PermissionSet {
    fn from_iter<I: IntoIterator<Item = Permission>>(iter: I) -> Self {
        let mut set = PermissionSet::EMPTY;
        for p in iter {
            set.insert(p);
        }
        set
    }
}

impl fmt::Debug for PermissionSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl fmt::Display for PermissionSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_scope_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_has_exactly_64_entries_in_bit_order() {
        assert_eq!(Permission::ALL.len(), 64);
        for (i, p) in Permission::ALL.iter().enumerate() {
            assert_eq!(p.bit() as usize, i, "bit order broken at {p}");
            assert_eq!(Permission::from_bit(i as u8), Some(*p));
        }
        assert_eq!(Permission::from_bit(64), None);
    }

    #[test]
    fn api_names_are_unique() {
        let mut names: Vec<&str> = Permission::ALL.iter().map(|p| p.api_name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 64);
    }

    #[test]
    fn parse_roundtrip() {
        for p in Permission::ALL {
            assert_eq!(p.api_name().parse::<Permission>().unwrap(), p);
        }
        assert!("not_a_permission".parse::<Permission>().is_err());
    }

    #[test]
    fn set_insert_remove_contains() {
        let mut s = PermissionSet::EMPTY;
        assert!(s.is_empty());
        s.insert(Permission::PublishStream);
        s.insert(Permission::Email);
        assert!(s.contains(Permission::PublishStream));
        assert!(s.contains(Permission::Email));
        assert!(!s.contains(Permission::OfflineAccess));
        assert_eq!(s.len(), 2);
        s.remove(Permission::Email);
        assert_eq!(s.len(), 1);
        assert!(!s.contains(Permission::Email));
    }

    #[test]
    fn scope_string_roundtrip() {
        let s = PermissionSet::from_iter([
            Permission::PublishStream,
            Permission::OfflineAccess,
            Permission::UserBirthday,
        ]);
        let scope = s.to_scope_str();
        let back = PermissionSet::from_scope_str(&scope).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn scope_string_tolerates_whitespace_and_rejects_unknown() {
        let s = PermissionSet::from_scope_str(" email , publish_stream ").unwrap();
        assert_eq!(s.len(), 2);
        assert!(PermissionSet::from_scope_str("email,bogus").is_err());
    }

    #[test]
    fn union_intersection_subset() {
        let a = PermissionSet::from_iter([Permission::Email, Permission::PublishStream]);
        let b = PermissionSet::from_iter([Permission::PublishStream, Permission::Sms]);
        assert_eq!(a.union(b).len(), 3);
        assert_eq!(a.intersection(b).len(), 1);
        assert!(a.intersection(b).is_subset_of(a));
        assert!(!a.is_subset_of(b));
        assert!(PermissionSet::EMPTY.is_subset_of(a));
    }

    #[test]
    fn full_set_has_64_bits() {
        let all: PermissionSet = Permission::ALL.into_iter().collect();
        assert_eq!(all.len(), 64);
        assert_eq!(all.bits(), u64::MAX);
        assert_eq!(PermissionSet::from_bits(all.bits()), all);
    }

    #[test]
    fn iter_yields_in_bit_order() {
        let s = PermissionSet::from_iter([Permission::OfflineAccess, Permission::UserAboutMe]);
        let v: Vec<Permission> = s.iter().collect();
        assert_eq!(v, vec![Permission::UserAboutMe, Permission::OfflineAccess]);
    }

    #[test]
    fn paper_top5_permissions_exist() {
        // Fig. 6 of the paper: publish_stream, offline_access, user_birthday,
        // email, publish_actions.
        for name in [
            "publish_stream",
            "offline_access",
            "user_birthday",
            "email",
            "publish_actions",
        ] {
            assert!(name.parse::<Permission>().is_ok(), "missing {name}");
        }
    }
}
