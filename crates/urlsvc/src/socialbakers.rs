//! A Social-Bakers-style community app-rating service.
//!
//! The paper selects its benign sample using Social Bakers \[19\], "which
//! monitors the 'social marketing success' of apps"; 90% of the selected
//! apps had a community rating of at least 3 out of 5. This module
//! reproduces that service: it aggregates publicly-observable engagement
//! (posts and the likes/comments they earn) into a 1–5 star rating, and
//! only *tracks* apps with enough community signal — scam apps never earn
//! ratings because nobody genuinely engages with their spam.
//!
//! The service sees only public observables (the same posts a monitoring
//! crawler sees), never ground truth.

use std::collections::HashMap;

use osn_types::ids::AppId;

/// Minimum observed posts before the service publishes a rating.
const MIN_POSTS_TRACKED: u64 = 5;

/// Accumulated engagement for one app.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Engagement {
    posts: u64,
    likes: u64,
    comments: u64,
}

/// The rating service.
#[derive(Debug, Clone, Default)]
pub struct SocialBakers {
    apps: HashMap<AppId, Engagement>,
}

impl SocialBakers {
    /// An empty service (no apps tracked).
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one observed post by `app` with its engagement counters.
    pub fn observe_post(&mut self, app: AppId, likes: u32, comments: u32) {
        let e = self.apps.entry(app).or_default();
        e.posts += 1;
        e.likes += u64::from(likes);
        e.comments += u64::from(comments);
    }

    /// Whether the service tracks (has published a rating for) the app.
    pub fn is_tracked(&self, app: AppId) -> bool {
        self.apps
            .get(&app)
            .is_some_and(|e| e.posts >= MIN_POSTS_TRACKED)
    }

    /// Community rating in `[1.0, 5.0]`, or `None` for untracked apps.
    ///
    /// Monotone in mean engagement per post: an app whose posts earn no
    /// likes or comments bottoms out at 1 star; healthy community apps
    /// (a few likes per post) reach 3+; viral hits saturate at 5.
    pub fn rating(&self, app: AppId) -> Option<f64> {
        let e = self.apps.get(&app)?;
        if e.posts < MIN_POSTS_TRACKED {
            return None;
        }
        let per_post = (e.likes + e.comments) as f64 / e.posts as f64;
        // 0 engagement -> 1.0; 1/post -> ~3.0; saturates toward 5.0
        Some(1.0 + 4.0 * (per_post / (per_post + 1.0)))
    }

    /// The paper's vetting bar: tracked with a rating of at least
    /// `min_rating` (the paper reports 3/5 for 90% of its benign sample).
    pub fn is_vetted(&self, app: AppId, min_rating: f64) -> bool {
        self.rating(app).is_some_and(|r| r >= min_rating)
    }

    /// Number of tracked apps.
    pub fn tracked_count(&self) -> usize {
        self.apps
            .values()
            .filter(|e| e.posts >= MIN_POSTS_TRACKED)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untracked_apps_have_no_rating() {
        let mut sb = SocialBakers::new();
        assert_eq!(sb.rating(AppId(1)), None);
        assert!(!sb.is_tracked(AppId(1)));
        // below the tracking threshold
        for _ in 0..MIN_POSTS_TRACKED - 1 {
            sb.observe_post(AppId(1), 10, 2);
        }
        assert_eq!(sb.rating(AppId(1)), None);
        assert!(!sb.is_vetted(AppId(1), 3.0));
    }

    #[test]
    fn engaged_apps_rate_well_spammy_apps_rate_poorly() {
        let mut sb = SocialBakers::new();
        for _ in 0..20 {
            sb.observe_post(AppId(1), 5, 2); // healthy community app
            sb.observe_post(AppId(2), 0, 0); // spam: nobody likes it
        }
        let good = sb.rating(AppId(1)).unwrap();
        let bad = sb.rating(AppId(2)).unwrap();
        assert!(good > 4.0, "engaged app rated {good}");
        assert!((bad - 1.0).abs() < 1e-9, "spam app rated {bad}");
        assert!(sb.is_vetted(AppId(1), 3.0));
        assert!(!sb.is_vetted(AppId(2), 3.0));
        assert_eq!(sb.tracked_count(), 2);
    }

    #[test]
    fn rating_is_bounded_and_monotone() {
        let mut sb = SocialBakers::new();
        let mut prev = 0.0;
        for (app, likes) in [(10u64, 0u32), (11, 1), (12, 3), (13, 50)] {
            for _ in 0..10 {
                sb.observe_post(AppId(app), likes, 0);
            }
            let r = sb.rating(AppId(app)).unwrap();
            assert!((1.0..=5.0).contains(&r));
            assert!(r >= prev, "rating must grow with engagement");
            prev = r;
        }
    }

    #[test]
    fn moderate_engagement_clears_the_vetting_bar() {
        // ~1 like per post is a modest but real community -> >= 3 stars
        let mut sb = SocialBakers::new();
        for _ in 0..10 {
            sb.observe_post(AppId(7), 1, 0);
        }
        assert!(sb.is_vetted(AppId(7), 3.0));
    }
}
