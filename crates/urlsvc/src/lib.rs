//! # url-services — the web around the simulated platform
//!
//! FRAppE's measurement pipeline talks to three external web services, all
//! reproduced here as deterministic in-process simulations:
//!
//! * [`shortener`] — a bit.ly-style URL shortener. The paper queries
//!   bit.ly's API for per-link click counts (Fig. 3) and expands shortened
//!   URLs to their full targets (§4.2.2, §6.1); both the API and its failure
//!   modes (unresolvable links) are modelled.
//! * [`wot`] — a Web-of-Trust-style domain reputation registry mapping
//!   domains to trust scores 0–100, with "no data" for unknown domains.
//!   The paper assigns unknown domains a score of −1 (Fig. 8), which
//!   [`wot::WotRegistry::feature_score`] reproduces.
//! * [`redirector`] — the indirection websites of §6.1: pages hosted outside
//!   Facebook whose HTTP redirect target rotates over time across a pool of
//!   app installation pages ("103 such URLs that point to 4,676 different
//!   malicious apps over the course of a month").
//! * [`blacklist`] — URL/domain blacklists of the kind MyPageKeeper consults
//!   before its own classifier runs.
//! * [`socialbakers`] — the Social-Bakers-style community rating service
//!   \[19\] the paper uses to vet its benign sample ("90% of which have a
//!   user rating of at least 3 out of 5").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blacklist;
pub mod redirector;
pub mod shortener;
pub mod socialbakers;
pub mod wot;

pub use blacklist::Blacklist;
pub use redirector::IndirectionSite;
pub use shortener::{ShortLink, Shortener};
pub use socialbakers::SocialBakers;
pub use wot::WotRegistry;
