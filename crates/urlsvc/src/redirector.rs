//! Indirection websites — the AppNets' fast-changing redirect layer.
//!
//! §6.1(b): *"a post made by a malicious app includes a shortened URL and
//! that URL, once resolved, points to a website outside Facebook. This
//! external website forwards users to several different app installation
//! pages over time."* The paper identified 103 such sites pointing at 4,676
//! malicious apps, about a third of them hosted on `amazonaws.com`.
//!
//! An [`IndirectionSite`] owns an entry URL on some external hosting domain
//! and a pool of target app installation URLs. Each fetch rotates the
//! redirect target deterministically (round-robin keyed by fetch count and
//! day), which reproduces what the paper's instrumented crawler observed by
//! following each site "100 times a day" for six weeks.

use osn_types::ids::AppId;
use osn_types::time::SimTime;
use osn_types::url::{Domain, Scheme, Url};

/// One indirection website.
#[derive(Debug, Clone)]
pub struct IndirectionSite {
    entry: Url,
    targets: Vec<AppId>,
    fetches: u64,
}

impl IndirectionSite {
    /// Creates a site at `https://<host>/<path>` forwarding to the given
    /// pool of apps.
    ///
    /// # Panics
    /// Panics if `targets` is empty — a redirector with nowhere to send
    /// victims is not a thing hackers deploy.
    pub fn new(host: Domain, path: &str, targets: Vec<AppId>) -> Self {
        assert!(
            !targets.is_empty(),
            "indirection site needs at least one target app"
        );
        IndirectionSite {
            entry: Url::build(Scheme::Http, host, path),
            targets,
            fetches: 0,
        }
    }

    /// The entry URL that appears (usually shortened) inside promoting
    /// posts.
    pub fn entry_url(&self) -> &Url {
        &self.entry
    }

    /// The pool of promoted apps.
    pub fn targets(&self) -> &[AppId] {
        &self.targets
    }

    /// Number of fetches served so far.
    pub fn fetch_count(&self) -> u64 {
        self.fetches
    }

    /// Serves one fetch at simulated time `now`, returning the app whose
    /// installation page the visitor is redirected to.
    ///
    /// Rotation is deterministic: the target index advances with each fetch
    /// and with the simulation day, so (a) repeated same-day fetches cycle
    /// through the pool — which is how the paper's crawler discovered the
    /// pools — and (b) the mapping drifts day over day ("fast-changing
    /// indirection").
    pub fn fetch(&mut self, now: SimTime) -> AppId {
        let idx = (self.fetches.wrapping_add(u64::from(now.days()))) % self.targets.len() as u64;
        self.fetches += 1;
        self.targets[idx as usize]
    }

    /// Read-only view of where a fetch at `now` with the current counter
    /// *would* land (used by analysis code that must not perturb state).
    pub fn peek(&self, now: SimTime) -> AppId {
        let idx = (self.fetches.wrapping_add(u64::from(now.days()))) % self.targets.len() as u64;
        self.targets[idx as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(n_targets: u64) -> IndirectionSite {
        IndirectionSite::new(
            Domain::parse("ec2-54-0-0-1.amazonaws.com").unwrap(),
            "promo",
            (0..n_targets).map(AppId).collect(),
        )
    }

    #[test]
    fn entry_url_is_external() {
        let s = site(3);
        assert!(!s.entry_url().is_facebook());
        assert!(s.entry_url().host().is_under("amazonaws.com"));
    }

    #[test]
    fn repeated_fetches_cycle_entire_pool() {
        let mut s = site(5);
        let day = SimTime::from_days(10);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5 {
            seen.insert(s.fetch(day));
        }
        assert_eq!(seen.len(), 5, "a day of crawling discovers the whole pool");
        assert_eq!(s.fetch_count(), 5);
    }

    #[test]
    fn target_changes_across_days_for_fixed_counter() {
        let s = site(7);
        let a = s.peek(SimTime::from_days(0));
        let b = s.peek(SimTime::from_days(1));
        assert_ne!(a, b, "redirect target must drift over days");
    }

    #[test]
    fn peek_does_not_advance() {
        let mut s = site(4);
        let day = SimTime::from_days(2);
        let p = s.peek(day);
        assert_eq!(s.fetch(day), p);
        assert_eq!(s.fetch_count(), 1);
    }

    #[test]
    fn single_target_always_lands_there() {
        let mut s = site(1);
        for d in 0..10 {
            assert_eq!(s.fetch(SimTime::from_days(d)), AppId(0));
        }
    }

    #[test]
    #[should_panic(expected = "at least one target")]
    fn empty_pool_panics() {
        IndirectionSite::new(Domain::parse("x.com").unwrap(), "p", vec![]);
    }
}
