//! A Web-of-Trust-style domain reputation registry.
//!
//! §4.1.3: the paper queries WOT for the trust reputation of every app's
//! redirect-URI domain. *"WOT assigns a score between 0 and 100 for every
//! URI, and we assign a score of −1 to the domains for which the WOT score
//! is not available."* The registry reproduces exactly that contract:
//! scores are stored per **registrable domain**, lookups on subdomains fall
//! back to the registrable domain (how WOT's host-level data behaves for
//! the domains in this study), and unknown domains return `None` /
//! feature score −1.

use std::collections::HashMap;

use osn_types::url::{Domain, Url};

/// Feature value the paper assigns to domains WOT has never scored.
pub const UNKNOWN_SCORE: f64 = -1.0;

/// Domain → trust score registry.
#[derive(Debug, Clone, Default)]
pub struct WotRegistry {
    scores: HashMap<Domain, u8>,
}

impl WotRegistry {
    /// An empty registry (every domain unknown).
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or overwrites) the trust score of a domain. The score is
    /// stored against the registrable domain.
    ///
    /// # Panics
    /// Panics if `score > 100` (WOT's scale is 0–100).
    pub fn set_score(&mut self, domain: &Domain, score: u8) {
        assert!(score <= 100, "WOT scores are 0-100, got {score}");
        self.scores.insert(domain.registrable(), score);
    }

    /// Trust score of a domain, if WOT has data for its registrable domain.
    pub fn score(&self, domain: &Domain) -> Option<u8> {
        self.scores.get(&domain.registrable()).copied()
    }

    /// Trust score of a URL's host.
    pub fn score_url(&self, url: &Url) -> Option<u8> {
        self.score(url.host())
    }

    /// The paper's feature encoding: the score as `f64`, or `−1` when WOT
    /// has no data (Fig. 8 plots exactly this value).
    pub fn feature_score(&self, domain: &Domain) -> f64 {
        self.score(domain).map_or(UNKNOWN_SCORE, f64::from)
    }

    /// Number of scored (registrable) domains.
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Domain {
        Domain::parse(s).unwrap()
    }

    #[test]
    fn unknown_domains_score_minus_one() {
        let wot = WotRegistry::new();
        assert_eq!(wot.score(&d("nowhere-to-be-found.biz")), None);
        assert_eq!(wot.feature_score(&d("nowhere-to-be-found.biz")), -1.0);
    }

    #[test]
    fn scores_are_stored_and_returned() {
        let mut wot = WotRegistry::new();
        wot.set_score(&d("facebook.com"), 94);
        wot.set_score(&d("thenamemeans2.com"), 3);
        assert_eq!(wot.score(&d("facebook.com")), Some(94));
        assert_eq!(wot.feature_score(&d("thenamemeans2.com")), 3.0);
        assert_eq!(wot.len(), 2);
    }

    #[test]
    fn subdomains_inherit_registrable_score() {
        let mut wot = WotRegistry::new();
        wot.set_score(&d("facebook.com"), 94);
        assert_eq!(wot.score(&d("apps.facebook.com")), Some(94));
        assert_eq!(wot.score(&d("www.facebook.com")), Some(94));
        // the paper: "80% of benign apps have redirect URIs pointing to the
        // apps.facebook.com domain and therefore have higher WOT scores"
        let url = Url::parse("https://apps.facebook.com/farmville/").unwrap();
        assert_eq!(wot.score_url(&url), Some(94));
    }

    #[test]
    fn setting_via_subdomain_scores_registrable() {
        let mut wot = WotRegistry::new();
        wot.set_score(&d("cdn.example.com"), 50);
        assert_eq!(wot.score(&d("example.com")), Some(50));
        assert_eq!(wot.score(&d("other.example.com")), Some(50));
    }

    #[test]
    fn overwrite_updates_score() {
        let mut wot = WotRegistry::new();
        wot.set_score(&d("example.com"), 10);
        wot.set_score(&d("example.com"), 90);
        assert_eq!(wot.score(&d("example.com")), Some(90));
        assert_eq!(wot.len(), 1);
    }

    #[test]
    #[should_panic(expected = "0-100")]
    fn out_of_range_score_panics() {
        WotRegistry::new().set_score(&d("x.com"), 101);
    }
}
