//! URL and domain blacklists.
//!
//! MyPageKeeper "applies URL blacklists as well as custom classification
//! techniques to identify malicious posts" (§2.2). This module provides the
//! blacklist half: exact-URL entries and registrable-domain entries, the
//! same two granularities real feeds (Google Safe Browsing, PhishTank,
//! joewein) operate at.

use std::collections::HashSet;

use osn_types::url::{Domain, Url};

/// A URL/domain blacklist.
#[derive(Debug, Clone, Default)]
pub struct Blacklist {
    exact_urls: HashSet<String>,
    domains: HashSet<Domain>,
}

impl Blacklist {
    /// An empty blacklist.
    pub fn new() -> Self {
        Self::default()
    }

    /// Blacklists one exact URL (scheme, host, path and query all matter).
    pub fn add_url(&mut self, url: &Url) {
        self.exact_urls.insert(url.to_string());
    }

    /// Blacklists a whole registrable domain (all its subdomains match).
    pub fn add_domain(&mut self, domain: &Domain) {
        self.domains.insert(domain.registrable());
    }

    /// Whether a URL is blacklisted, either exactly or by domain.
    pub fn contains(&self, url: &Url) -> bool {
        self.exact_urls.contains(&url.to_string())
            || self.domains.contains(&url.host().registrable())
    }

    /// Whether a domain (or its registrable parent) is blacklisted.
    pub fn contains_domain(&self, domain: &Domain) -> bool {
        self.domains.contains(&domain.registrable())
    }

    /// Number of entries (exact URLs + domains).
    pub fn len(&self) -> usize {
        self.exact_urls.len() + self.domains.len()
    }

    /// Whether the blacklist is empty.
    pub fn is_empty(&self) -> bool {
        self.exact_urls.is_empty() && self.domains.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    #[test]
    fn exact_url_matching() {
        let mut bl = Blacklist::new();
        bl.add_url(&u("http://free-offers-sites.blogspot.com/page?x=1"));
        assert!(bl.contains(&u("http://free-offers-sites.blogspot.com/page?x=1")));
        assert!(!bl.contains(&u("http://free-offers-sites.blogspot.com/page?x=2")));
        assert!(!bl.contains(&u("http://free-offers-sites.blogspot.com/other")));
    }

    #[test]
    fn domain_matching_covers_subdomains() {
        let mut bl = Blacklist::new();
        bl.add_domain(&Domain::parse("technicalyard.com").unwrap());
        assert!(bl.contains(&u("http://technicalyard.com/install")));
        assert!(bl.contains(&u("http://www.technicalyard.com/anything?q=1")));
        assert!(!bl.contains(&u("http://nottechnicalyard.com/")));
        assert!(bl.contains_domain(&Domain::parse("cdn.technicalyard.com").unwrap()));
    }

    #[test]
    fn empty_blacklist_matches_nothing() {
        let bl = Blacklist::new();
        assert!(bl.is_empty());
        assert_eq!(bl.len(), 0);
        assert!(!bl.contains(&u("http://anything.com/")));
    }

    #[test]
    fn len_counts_both_kinds() {
        let mut bl = Blacklist::new();
        bl.add_url(&u("http://a.com/x"));
        bl.add_domain(&Domain::parse("b.com").unwrap());
        bl.add_domain(&Domain::parse("sub.b.com").unwrap()); // same registrable
        assert_eq!(bl.len(), 2);
    }
}
