//! A bit.ly-style URL shortener with a click-count API.
//!
//! The paper's reach analysis (Fig. 3) works entirely through bit.ly's
//! public API: for each shortened link posted by a malicious app it queries
//! the total click count, and for the external-link analysis it expands
//! short URLs to their full targets. This module reproduces that service:
//!
//! * [`Shortener::shorten`] issues deterministic base-62 short codes on a
//!   configurable shortener host (`bit.ly` by default; the paper also sees
//!   `j.mp`, Table 9);
//! * [`Shortener::record_clicks`] accumulates clicks as the simulation's
//!   users follow links;
//! * [`Shortener::click_count`] is the public "clicks" API;
//! * [`Shortener::expand`] resolves a short URL — and can be configured so
//!   a fraction of links is unresolvable, matching the paper (only 5,197 of
//!   5,700 bit.ly URLs could be expanded).

use std::collections::HashMap;

use osn_types::url::{Domain, Scheme, Url};

/// One shortened link and its statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShortLink {
    /// The short URL (e.g. `https://bit.ly/b6gWn5`).
    pub short: Url,
    /// The full target URL.
    pub target: Url,
    /// Total clicks recorded — from *all* sources, which is why the paper
    /// treats bit.ly counts as an upper bound on Facebook-driven clicks.
    pub clicks: u64,
    /// Whether the expansion API will resolve this link (the paper found
    /// ~9% of its bit.ly URLs unresolvable).
    pub resolvable: bool,
}

/// The shortening service.
#[derive(Debug, Clone)]
pub struct Shortener {
    host: Domain,
    links: HashMap<String, ShortLink>,
    /// Reverse index so re-shortening the same target returns the same code
    /// (bit.ly behaviour for anonymous shortens).
    by_target: HashMap<String, String>,
    next_code: u64,
}

const BASE62: &[u8; 62] = b"0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";

fn base62(mut n: u64) -> String {
    // bit.ly codes are short alphanumeric strings; 6+ chars once the space
    // fills up. We left-pad to 6 for cosmetic fidelity.
    let mut buf = Vec::new();
    loop {
        buf.push(BASE62[(n % 62) as usize]);
        n /= 62;
        if n == 0 {
            break;
        }
    }
    while buf.len() < 6 {
        buf.push(b'0');
    }
    buf.reverse();
    String::from_utf8(buf).expect("base62 output is ASCII")
}

impl Shortener {
    /// A shortener on the given host (must be a real shortener host so the
    /// produced links satisfy [`Url::is_shortened`]).
    pub fn new(host: Domain) -> Self {
        Shortener {
            host,
            links: HashMap::new(),
            by_target: HashMap::new(),
            next_code: 0,
        }
    }

    /// The default service: `bit.ly` — "92% of all shortened URLs" in the
    /// paper's dataset.
    pub fn bitly() -> Self {
        Shortener::new(Domain::parse("bit.ly").expect("static domain is valid"))
    }

    /// Host this service issues links on.
    pub fn host(&self) -> &Domain {
        &self.host
    }

    /// Number of links issued.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Shortens `target`, returning the short URL. Shortening the same
    /// target twice returns the same link.
    pub fn shorten(&mut self, target: &Url) -> Url {
        let target_str = target.to_string();
        if let Some(code) = self.by_target.get(&target_str) {
            return self.links[code].short.clone();
        }
        let code = base62(self.next_code);
        self.next_code += 1;
        let short = Url::build(Scheme::Https, self.host.clone(), &code);
        self.links.insert(
            code.clone(),
            ShortLink {
                short: short.clone(),
                target: target.clone(),
                clicks: 0,
                resolvable: true,
            },
        );
        self.by_target.insert(target_str, code);
        short
    }

    /// Marks a link unresolvable via the expansion API (click counting still
    /// works — this mirrors bit.ly links whose expansion the paper's crawler
    /// could not retrieve).
    pub fn set_unresolvable(&mut self, short: &Url) {
        if let Some(code) = Self::code_of(short) {
            if let Some(link) = self.links.get_mut(code) {
                link.resolvable = false;
            }
        }
    }

    /// Records `n` clicks on a short URL. Unknown links are ignored (clicks
    /// on dead links don't count anywhere).
    pub fn record_clicks(&mut self, short: &Url, n: u64) {
        if let Some(code) = Self::code_of(short) {
            if let Some(link) = self.links.get_mut(code) {
                link.clicks += n;
            }
        }
    }

    /// The click-count API: total clicks for a short URL, `None` if the
    /// link does not exist.
    pub fn click_count(&self, short: &Url) -> Option<u64> {
        Self::code_of(short)
            .and_then(|c| self.links.get(c))
            .map(|l| l.clicks)
    }

    /// The expansion API: the full target URL, `None` if the link does not
    /// exist **or** is unresolvable.
    pub fn expand(&self, short: &Url) -> Option<&Url> {
        let link = Self::code_of(short).and_then(|c| self.links.get(c))?;
        if link.resolvable {
            Some(&link.target)
        } else {
            None
        }
    }

    /// Full link record (for forensics code that needs both target and
    /// clicks), regardless of resolvability.
    pub fn lookup(&self, short: &Url) -> Option<&ShortLink> {
        Self::code_of(short).and_then(|c| self.links.get(c))
    }

    /// Iterates all issued links.
    pub fn links(&self) -> impl Iterator<Item = &ShortLink> {
        self.links.values()
    }

    fn code_of(short: &Url) -> Option<&str> {
        short.path().strip_prefix('/').filter(|c| !c.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(n: u32) -> Url {
        Url::parse(&format!("http://scamsite{n}.com/landing")).unwrap()
    }

    #[test]
    fn shorten_produces_short_host_links() {
        let mut s = Shortener::bitly();
        let short = s.shorten(&target(1));
        assert!(short.is_shortened());
        assert_eq!(short.host().as_str(), "bit.ly");
        assert_eq!(s.link_count(), 1);
    }

    #[test]
    fn same_target_same_code() {
        let mut s = Shortener::bitly();
        let a = s.shorten(&target(1));
        let b = s.shorten(&target(1));
        assert_eq!(a, b);
        assert_eq!(s.link_count(), 1);
        let c = s.shorten(&target(2));
        assert_ne!(a, c);
    }

    #[test]
    fn codes_are_unique_across_many_links() {
        let mut s = Shortener::bitly();
        let mut seen = std::collections::HashSet::new();
        for n in 0..500 {
            let short = s.shorten(&target(n));
            assert!(seen.insert(short.to_string()), "duplicate code for {n}");
        }
    }

    #[test]
    fn click_accounting() {
        let mut s = Shortener::bitly();
        let short = s.shorten(&target(9));
        assert_eq!(s.click_count(&short), Some(0));
        s.record_clicks(&short, 100);
        s.record_clicks(&short, 42);
        assert_eq!(s.click_count(&short), Some(142));
        // unknown link
        let bogus = Url::parse("https://bit.ly/zzzzzz").unwrap();
        assert_eq!(s.click_count(&bogus), None);
        s.record_clicks(&bogus, 5); // silently ignored
        assert_eq!(s.click_count(&bogus), None);
    }

    #[test]
    fn expansion_and_unresolvable_links() {
        let mut s = Shortener::bitly();
        let t = target(3);
        let short = s.shorten(&t);
        assert_eq!(s.expand(&short), Some(&t));
        s.set_unresolvable(&short);
        assert_eq!(s.expand(&short), None, "unresolvable link must not expand");
        // ...but clicks still count (bit.ly stats worked even when the
        // paper's expansion failed)
        s.record_clicks(&short, 7);
        assert_eq!(s.click_count(&short), Some(7));
        assert_eq!(s.lookup(&short).unwrap().clicks, 7);
    }

    #[test]
    fn base62_is_injective_and_padded() {
        let mut seen = std::collections::HashSet::new();
        for n in 0..10_000u64 {
            let code = base62(n);
            assert!(code.len() >= 6);
            assert!(seen.insert(code));
        }
    }

    #[test]
    fn custom_host_jmp() {
        // Table 9 shows a j.mp link in a piggybacked post.
        let mut s = Shortener::new(Domain::parse("j.mp").unwrap());
        let short = s.shorten(&target(4));
        assert_eq!(short.host().as_str(), "j.mp");
        assert!(short.is_shortened());
    }
}
