//! Offline stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! Keeps the same API surface the workspace's benches use —
//! `criterion_group!` / `criterion_main!`, `Criterion::bench_function`,
//! `benchmark_group` with `sample_size` / `bench_with_input` / `finish`,
//! `BenchmarkId`, and `black_box` — but measures with a simple wall-clock
//! loop instead of criterion's statistical machinery: warm up briefly,
//! time `sample_size` batches, and print the median per-iteration time.

use std::time::{Duration, Instant};

/// Opaque value barrier so the optimizer cannot elide benchmarked work.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifies a parameterized benchmark: `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id like `"components/400"`.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to bench closures; `iter` runs and times the routine.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the measured samples.
    result: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, storing the median over `samples` measured batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: find an iteration count that takes
        // roughly a millisecond, so cheap routines are measured in bulk.
        let mut iters_per_batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters_per_batch >= 1 << 20 {
                break;
            }
            iters_per_batch *= 2;
        }

        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_batch {
                black_box(routine());
            }
            times.push(start.elapsed() / iters_per_batch as u32);
        }
        times.sort_unstable();
        self.result = Some(times[times.len() / 2]);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    let mut bencher = Bencher { samples, result: None };
    f(&mut bencher);
    match bencher.result {
        Some(median) => println!("bench {id:<40} median {median:>12.3?}/iter"),
        None => println!("bench {id:<40} (no measurement)"),
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets how many timed batches each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.samples, f);
        self
    }

    /// Runs a benchmark that borrows a prepared input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.samples, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { samples: 20 }
    }
}

impl Criterion {
    /// Builder-style override of the default sample count.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.samples = n.max(1);
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, self.samples, f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = self.samples;
        BenchmarkGroup { name: name.into(), samples, _criterion: self }
    }

    /// Kept for API compatibility with criterion's config flow.
    pub fn final_summary(&mut self) {}
}

/// Collects benchmark functions into a group runner, like criterion's.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("grp");
        group.sample_size(5);
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.finish();
    }

    criterion_group!(benches, trivial);

    #[test]
    fn harness_runs() {
        benches();
    }
}
