//! Offline stand-in for the `crossbeam` crate (see `vendor/README.md`).
//!
//! Only the `channel` module is provided — multi-producer multi-consumer
//! bounded/unbounded channels with disconnect semantics, matching the
//! `crossbeam-channel` API shape the workspace uses. Built on
//! `Mutex` + `Condvar` rather than a lock-free queue; correctness over
//! raw throughput.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        /// `None` = unbounded.
        capacity: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            self.state.lock().unwrap_or_else(|poison| poison.into_inner())
        }
    }

    /// Error for [`Sender::send`]: all receivers dropped.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error for [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity.
        Full(T),
        /// All receivers dropped.
        Disconnected(T),
    }

    impl<T> TrySendError<T> {
        /// Recovers the unsent message.
        pub fn into_inner(self) -> T {
            match self {
                TrySendError::Full(v) | TrySendError::Disconnected(v) => v,
            }
        }

        /// Whether the failure was a full queue.
        pub fn is_full(&self) -> bool {
            matches!(self, TrySendError::Full(_))
        }

        /// Whether the failure was disconnection.
        pub fn is_disconnected(&self) -> bool {
            matches!(self, TrySendError::Disconnected(_))
        }
    }

    impl<T> std::fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("sending on a full channel"),
                TrySendError::Disconnected(_) => {
                    f.write_str("sending on a disconnected channel")
                }
            }
        }
    }

    /// Error for [`Receiver::recv`]: channel empty and all senders dropped.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Error for [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Nothing queued right now.
        Empty,
        /// Empty and all senders dropped.
        Disconnected,
    }

    impl std::fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    /// Error for [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Timed out with nothing queued.
        Timeout,
        /// Empty and all senders dropped.
        Disconnected,
    }

    impl std::fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// The sending half; clone freely across threads.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; clone freely across threads (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// A channel holding at most `cap` messages; `send` blocks when full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap))
    }

    /// A channel with no capacity bound; `send` never blocks.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                capacity,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender { shared: Arc::clone(&shared) },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Blocks until the message is queued; errors if all receivers
        /// have dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.lock();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                let full = state
                    .capacity
                    .is_some_and(|cap| state.queue.len() >= cap);
                if !full {
                    state.queue.push_back(value);
                    drop(state);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                state = self
                    .shared
                    .not_full
                    .wait(state)
                    .unwrap_or_else(|poison| poison.into_inner());
            }
        }

        /// Queues without blocking, or reports `Full` / `Disconnected`.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut state = self.shared.lock();
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if state.capacity.is_some_and(|cap| state.queue.len() >= cap) {
                return Err(TrySendError::Full(value));
            }
            state.queue.push_back(value);
            drop(state);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.lock().queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.lock().senders += 1;
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut state = self.shared.lock();
                state.senders -= 1;
                state.senders
            };
            if remaining == 0 {
                // wake receivers blocked on an empty queue so they can
                // observe the disconnect
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks for the next message; errors once empty and disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.lock();
            loop {
                if let Some(value) = state.queue.pop_front() {
                    drop(state);
                    self.shared.not_full.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .shared
                    .not_empty
                    .wait(state)
                    .unwrap_or_else(|poison| poison.into_inner());
            }
        }

        /// Like [`recv`](Self::recv), but gives up after `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.shared.lock();
            loop {
                if let Some(value) = state.queue.pop_front() {
                    drop(state);
                    self.shared.not_full.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timeout_result) = self
                    .shared
                    .not_empty
                    .wait_timeout(state, deadline - now)
                    .unwrap_or_else(|poison| poison.into_inner());
                state = guard;
            }
        }

        /// Pops without blocking, or reports `Empty` / `Disconnected`.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.lock();
            if let Some(value) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.lock().queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Drains whatever is queued right now (then stops; does not wait).
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { receiver: self }
        }
    }

    /// Iterator over [`Receiver::try_iter`].
    pub struct TryIter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.try_recv().ok()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.lock().receivers += 1;
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut state = self.shared.lock();
                state.receivers -= 1;
                state.receivers
            };
            if remaining == 0 {
                // wake senders blocked on a full queue
                self.shared.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn fifo_order() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            for i in 0..10 {
                assert_eq!(rx.recv(), Ok(i));
            }
        }

        #[test]
        fn bounded_try_send_full() {
            let (tx, rx) = bounded(2);
            tx.try_send(1).unwrap();
            tx.try_send(2).unwrap();
            assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
            assert_eq!(rx.try_recv(), Ok(1));
            tx.try_send(3).unwrap();
        }

        #[test]
        fn disconnect_on_sender_drop() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn disconnect_on_receiver_drop() {
            let (tx, rx) = bounded::<u32>(1);
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
            assert!(matches!(
                tx.try_send(2),
                Err(TrySendError::Disconnected(2))
            ));
        }

        #[test]
        fn mpmc_across_threads() {
            let (tx, rx) = bounded::<u64>(4);
            let producers: Vec<_> = (0..4)
                .map(|p| {
                    let tx = tx.clone();
                    thread::spawn(move || {
                        for i in 0..100 {
                            tx.send(p * 1000 + i).unwrap();
                        }
                    })
                })
                .collect();
            drop(tx);
            let consumers: Vec<_> = (0..2)
                .map(|_| {
                    let rx = rx.clone();
                    thread::spawn(move || {
                        let mut got = Vec::new();
                        while let Ok(v) = rx.recv() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            drop(rx);
            for p in producers {
                p.join().unwrap();
            }
            let mut all: Vec<u64> = consumers
                .into_iter()
                .flat_map(|c| c.join().unwrap())
                .collect();
            all.sort_unstable();
            let expected: Vec<u64> =
                (0..4).flat_map(|p| (0..100).map(move |i| p * 1000 + i)).collect();
            assert_eq!(all, expected);
        }

        #[test]
        fn recv_timeout_times_out() {
            let (_tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
        }
    }
}
