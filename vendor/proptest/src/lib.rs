//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Implements the subset the workspace uses: the `proptest!` test macro,
//! `prop_assert!` / `prop_assert_eq!`, `prop_oneof!`, `Just`, `any::<T>()`,
//! ranges and `&str` regex literals as strategies, tuple strategies,
//! `prop_map`, `proptest::collection::vec`, and
//! `proptest::string::string_regex`. Unlike real proptest there is no
//! shrinking: each `#[test]` runs a fixed number of deterministic random
//! cases and reports the first failing case's values by panicking.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Failure raised by `prop_assert!` family; aborts the current case.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed-assertion error with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// How values are produced. Object-safe; combinators require `Sized`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut SmallRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// Marker strategy for `any::<T>()`.
pub struct Any<T>(std::marker::PhantomData<T>);

/// The full range of `T` as a strategy.
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_any_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut SmallRng) -> $t {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}

impl_any_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut SmallRng) -> $t {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}

impl_any_int!(i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut SmallRng) -> bool {
        rng.gen::<bool>()
    }
}

impl Strategy for Any<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut SmallRng) -> f64 {
        // signed, spread over a few orders of magnitude; always finite
        let unit: f64 = rng.gen();
        let mag: f64 = rng.gen_range(-6.0..6.0);
        (unit - 0.5) * 2.0 * 10f64.powf(mag)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!((A) (A, B) (A, B, C) (A, B, C, D));

/// `&str` literals act as regex strategies (see [`string::string_regex`]).
impl Strategy for str {
    type Value = String;

    fn generate(&self, rng: &mut SmallRng) -> String {
        string::string_regex(self)
            .unwrap_or_else(|e| panic!("bad regex strategy {self:?}: {e}"))
            .generate(rng)
    }
}

/// One of several strategies, chosen uniformly. Built by `prop_oneof!`.
pub struct Union<T> {
    cases: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// A union over the given cases (must be non-empty).
    pub fn new(cases: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!cases.is_empty(), "prop_oneof! needs at least one case");
        Union { cases }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        let idx = rng.gen_range(0..self.cases.len());
        self.cases[idx].generate(rng)
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{SmallRng, Strategy};
    use rand::Rng;

    /// Element-count specification accepted by [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`: vectors of values from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// String strategies (`proptest::string`).
pub mod string {
    use super::{SmallRng, Strategy};
    use rand::Rng;

    /// One regex atom with its repetition bounds.
    #[derive(Debug, Clone)]
    struct Piece {
        /// Candidate characters (`None` = any printable ASCII, for `.`).
        class: Option<Vec<char>>,
        min: usize,
        max: usize,
    }

    /// Strategy generating strings matching a small regex subset:
    /// sequences of `.` / `[a-z...]` / literal chars, each optionally
    /// followed by `{m}`, `{m,n}`, `?`, `*`, or `+`.
    #[derive(Debug, Clone)]
    pub struct RegexGeneratorStrategy {
        pieces: Vec<Piece>,
    }

    /// Compiles `pattern` into a string strategy.
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, String> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pieces = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let class = match chars[i] {
                '.' => {
                    i += 1;
                    None
                }
                '[' => {
                    let mut set = Vec::new();
                    i += 1;
                    while i < chars.len() && chars[i] != ']' {
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            let (lo, hi) = (chars[i], chars[i + 2]);
                            if lo > hi {
                                return Err(format!("bad range {lo}-{hi}"));
                            }
                            set.extend(lo..=hi);
                            i += 3;
                        } else {
                            set.push(chars[i]);
                            i += 1;
                        }
                    }
                    if i >= chars.len() {
                        return Err("unterminated character class".into());
                    }
                    i += 1; // ']'
                    if set.is_empty() {
                        return Err("empty character class".into());
                    }
                    Some(set)
                }
                '\\' => {
                    i += 1;
                    if i >= chars.len() {
                        return Err("dangling escape".into());
                    }
                    let c = chars[i];
                    i += 1;
                    Some(vec![c])
                }
                c => {
                    i += 1;
                    Some(vec![c])
                }
            };
            // optional quantifier
            let (min, max) = if i < chars.len() {
                match chars[i] {
                    '{' => {
                        let close = chars[i..]
                            .iter()
                            .position(|&c| c == '}')
                            .ok_or("unterminated {} quantifier")?
                            + i;
                        let body: String = chars[i + 1..close].iter().collect();
                        i = close + 1;
                        if let Some((lo, hi)) = body.split_once(',') {
                            let lo: usize =
                                lo.trim().parse().map_err(|e| format!("{e}"))?;
                            let hi: usize =
                                hi.trim().parse().map_err(|e| format!("{e}"))?;
                            (lo, hi)
                        } else {
                            let n: usize =
                                body.trim().parse().map_err(|e| format!("{e}"))?;
                            (n, n)
                        }
                    }
                    '?' => {
                        i += 1;
                        (0, 1)
                    }
                    '*' => {
                        i += 1;
                        (0, 8)
                    }
                    '+' => {
                        i += 1;
                        (1, 8)
                    }
                    _ => (1, 1),
                }
            } else {
                (1, 1)
            };
            if min > max {
                return Err(format!("bad quantifier {{{min},{max}}}"));
            }
            pieces.push(Piece { class, min, max });
        }
        Ok(RegexGeneratorStrategy { pieces })
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;

        fn generate(&self, rng: &mut SmallRng) -> String {
            let mut out = String::new();
            for piece in &self.pieces {
                let count = rng.gen_range(piece.min..=piece.max);
                for _ in 0..count {
                    let c = match &piece.class {
                        Some(set) => set[rng.gen_range(0..set.len())],
                        // '.': any printable ASCII
                        None => char::from(rng.gen_range(0x20u8..=0x7e)),
                    };
                    out.push(c);
                }
            }
            out
        }
    }
}

/// Number of random cases each `proptest!` test runs.
pub const CASES: u64 = 64;

/// Drives one property across [`CASES`] deterministic cases.
/// Used by the `proptest!` macro expansion; panics on the first failure.
pub fn run_cases<F>(name: &str, mut case: F)
where
    F: FnMut(&mut SmallRng) -> Result<(), TestCaseError>,
{
    // deterministic per-test seed so failures reproduce
    let mut seed = 0xf2a9_u64;
    for b in name.bytes() {
        seed = seed.wrapping_mul(31).wrapping_add(u64::from(b));
    }
    for case_idx in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed ^ (case_idx.wrapping_mul(0x9e37)));
        if let Err(e) = case(&mut rng) {
            panic!("property {name} failed at case {case_idx}/{CASES}: {e}");
        }
    }
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ...)`
/// runs its body over [`CASES`] generated inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(stringify!($name), |__proptest_rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                    $body
                    ::std::result::Result::Ok(())
                });
            }
        )+
    };
}

/// Asserts within a `proptest!` body; failure aborts just this case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality within a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __l,
                    __r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(*__l == *__r, $($fmt)*);
            }
        }
    };
}

/// Uniformly picks one of several same-valued strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let mut __cases: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::Strategy<Value = _>>,
        > = ::std::vec::Vec::new();
        $(__cases.push(::std::boxed::Box::new($strat));)+
        $crate::Union::new(__cases)
    }};
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Any, Just, Strategy,
        TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_shapes() {
        let strat = crate::string::string_regex("[a-c]{0,6}").unwrap();
        let mut rng = rand::SeedableRng::seed_from_u64(7);
        for _ in 0..200 {
            let s = strat.generate(&mut rng);
            assert!(s.len() <= 6);
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
        let dot = crate::string::string_regex(".{0,40}").unwrap();
        for _ in 0..50 {
            let s = dot.generate(&mut rng);
            assert!(s.len() <= 40);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    proptest! {
        /// Doc comments and multiple tests per block must parse.
        #[test]
        fn ranges_hold(n in 1usize..40, f in 0.5f64..=1.0) {
            prop_assert!((1..40).contains(&n));
            prop_assert!((0.5..=1.0).contains(&f));
        }

        #[test]
        fn vec_of_tuples(edges in crate::collection::vec((0usize..40, 0usize..40), 0..60)) {
            prop_assert!(edges.len() < 60);
            for (a, b) in edges {
                prop_assert!(a < 40 && b < 40);
            }
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![
            any::<u8>().prop_map(u32::from),
            Just(900u32),
            (any::<u8>(), any::<u8>()).prop_map(|(a, b)| u32::from(a) + u32::from(b)),
        ]) {
            prop_assert!(v <= 900, "v was {}", v);
        }

        #[test]
        fn str_literals_are_strategies(s in "[a-e]{0,10}") {
            prop_assert!(s.len() <= 10);
        }
    }
}
