//! Offline stand-in for the `parking_lot` crate (see `vendor/README.md`).
//!
//! Wraps `std::sync` primitives behind parking_lot's API shape: `lock`,
//! `read`, and `write` return guards directly (no `Result`), recovering
//! from poisoning instead of propagating it. Slower than the real crate
//! but behaviourally equivalent for this workspace.

use std::sync;

/// A mutex whose `lock` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard type for [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

/// A reader-writer lock whose `read`/`write` never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Guard type for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;

/// Guard type for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|p| p.into_inner())
    }

    /// Tries shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Tries exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_counts() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 6);
        }
        l.write().push(4);
        assert_eq!(*l.read(), vec![1, 2, 3, 4]);
    }
}
