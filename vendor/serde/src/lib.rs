//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors minimal API-compatible replacements for its
//! external dependencies (see `vendor/README.md`). This crate provides the
//! subset of serde the workspace uses:
//!
//! * `#[derive(Serialize, Deserialize)]` (via the sibling `serde_derive`
//!   stand-in), including `#[serde(transparent)]` newtypes,
//! * trait impls for the std types the workspace serializes.
//!
//! Unlike real serde's visitor architecture, this stand-in routes
//! everything through a single self-describing [`Value`] tree: serializing
//! produces a `Value`, deserializing consumes one. The sibling
//! `serde_json` stand-in renders and parses that tree as JSON text. This
//! is behaviour-compatible for the workspace's uses (JSON round-trips of
//! plain data structs) but is *not* a general serde replacement.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the stand-in's entire data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative integers.
    Int(i64),
    /// Non-negative integers.
    UInt(u64),
    /// Floating-point numbers.
    Float(f64),
    /// Strings.
    String(String),
    /// Arrays.
    Array(Vec<Value>),
    /// Objects: insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get_field(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an f64, if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as a u64, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    /// The value as an i64, if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) if u <= i64::MAX as u64 => Some(u as i64),
            _ => None,
        }
    }

    /// The value as a str, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// A short name for the value's kind (used in error messages).
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Builds an error from anything displayable.
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can serialize themselves into a [`Value`].
pub trait Serialize {
    /// Produces the serialized form.
    fn serialize(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstructs a value; errors describe the first mismatch found.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

fn type_error(expected: &str, got: &Value) -> Error {
    Error(format!("expected {expected}, got {}", got.kind()))
}

// ---------------------------------------------------------------------------
// scalar impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(type_error("bool", other)),
        }
    }
}

macro_rules! impl_unsigned {
    ($($ty:ty),+) => {$(
        impl Serialize for $ty {
            fn serialize(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $ty {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let raw = match value {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    // map keys arrive stringified; accept the round-trip
                    Value::String(s) => s
                        .parse::<u64>()
                        .map_err(|e| Error(format!("bad integer key {s:?}: {e}")))?,
                    other => return Err(type_error("unsigned integer", other)),
                };
                <$ty>::try_from(raw).map_err(|_| Error(format!(
                    "{raw} out of range for {}", stringify!($ty)
                )))
            }
        }
    )+};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($ty:ty),+) => {$(
        impl Serialize for $ty {
            fn serialize(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }
        impl Deserialize for $ty {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let raw = match value {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u)
                        .map_err(|_| Error(format!("{u} out of i64 range")))?,
                    Value::String(s) => s
                        .parse::<i64>()
                        .map_err(|e| Error(format!("bad integer key {s:?}: {e}")))?,
                    other => return Err(type_error("integer", other)),
                };
                <$ty>::try_from(raw).map_err(|_| Error(format!(
                    "{raw} out of range for {}", stringify!($ty)
                )))
            }
        }
    )+};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value.as_f64().ok_or_else(|| type_error("number", value))
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| type_error("number", value))
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("checked")),
            other => Err(type_error("single-char string", other)),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(type_error("string", other)),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        T::deserialize(value).map(Box::new)
    }
}

// Value itself round-trips (lets `json!(expr)` accept Value expressions).
impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

// ---------------------------------------------------------------------------
// composite impls
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(type_error("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                match value {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($name::deserialize(&items[$idx])?,)+))
                    }
                    other => Err(type_error("fixed-length array", other)),
                }
            }
        }
    )+};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Serializes a map key: scalar keys render as their JSON-text form, the
/// way real `serde_json` stringifies non-string keys.
fn key_to_string(key: &Value) -> Result<String, Error> {
    match key {
        Value::String(s) => Ok(s.clone()),
        Value::Bool(b) => Ok(b.to_string()),
        Value::Int(i) => Ok(i.to_string()),
        Value::UInt(u) => Ok(u.to_string()),
        Value::Float(f) => Ok(f.to_string()),
        other => Err(Error(format!("map key must be scalar, got {}", other.kind()))),
    }
}

fn serialize_map<'a, K, V, I>(entries: I) -> Value
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    Value::Object(
        entries
            .map(|(k, v)| {
                let key = key_to_string(&k.serialize()).expect("scalar map key");
                (key, v.serialize())
            })
            .collect(),
    )
}

fn deserialize_map_entries<K: Deserialize, V: Deserialize>(
    value: &Value,
) -> Result<Vec<(K, V)>, Error> {
    match value {
        Value::Object(entries) => entries
            .iter()
            .map(|(k, v)| {
                let key = K::deserialize(&Value::String(k.clone()))?;
                Ok((key, V::deserialize(v)?))
            })
            .collect(),
        other => Err(type_error("object", other)),
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        serialize_map(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(deserialize_map_entries::<K, V>(value)?.into_iter().collect())
    }
}

impl<K: Serialize + Eq + Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize(&self) -> Value {
        serialize_map(self.iter())
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(deserialize_map_entries::<K, V>(value)?.into_iter().collect())
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(Vec::<T>::deserialize(value)?.into_iter().collect())
    }
}

impl<T: Serialize + Eq + Hash> Serialize for HashSet<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(Vec::<T>::deserialize(value)?.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        assert_eq!(u32::deserialize(&42u32.serialize()), Ok(42));
        assert_eq!(i64::deserialize(&(-9i64).serialize()), Ok(-9));
        assert_eq!(bool::deserialize(&true.serialize()), Ok(true));
        assert_eq!(
            String::deserialize(&"hi".serialize()),
            Ok("hi".to_string())
        );
        assert_eq!(f64::deserialize(&1.5f64.serialize()), Ok(1.5));
    }

    #[test]
    fn option_uses_null() {
        assert_eq!(Option::<u8>::deserialize(&Value::Null), Ok(None));
        assert_eq!(None::<u8>.serialize(), Value::Null);
        assert_eq!(Some(3u8).serialize(), Value::UInt(3));
    }

    #[test]
    fn maps_stringify_scalar_keys() {
        let mut m = BTreeMap::new();
        m.insert(7u32, "x".to_string());
        let v = m.serialize();
        assert_eq!(
            v,
            Value::Object(vec![("7".into(), Value::String("x".into()))])
        );
        assert_eq!(BTreeMap::<u32, String>::deserialize(&v), Ok(m));
    }

    #[test]
    fn tuples_are_arrays() {
        let t = (1u8, "a".to_string());
        let v = t.serialize();
        assert_eq!(
            v,
            Value::Array(vec![Value::UInt(1), Value::String("a".into())])
        );
        assert_eq!(<(u8, String)>::deserialize(&v), Ok(t));
    }
}
