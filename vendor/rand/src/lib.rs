//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Provides the subset the workspace uses: `SmallRng` seeded via
//! `SeedableRng::seed_from_u64`, the `Rng` extension methods
//! (`gen`, `gen_range`, `gen_bool`), and `seq::SliceRandom`
//! (`choose`, `choose_multiple`, `shuffle`). The generator is
//! xoshiro256++ seeded through splitmix64 — deterministic across runs
//! and platforms, which is all the synthetic workloads need.

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (only `seed_from_u64` is used in this workspace).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types with a uniform sampler over half-open / closed intervals.
/// Mirrors real rand's `SampleUniform` so that the single blanket
/// `Range<T>: SampleRange<T>` impl below drives type inference the same
/// way the real crate does.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "gen_range: empty range");
        T::sample_in(rng, start, end, true)
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128
                    + if inclusive { 1 } else { 0 };
                let v = uniform_u128(rng, span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform draw in `[0, span)` via rejection sampling on 64-bit words.
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span <= u64::MAX as u128 {
        let span64 = span as u64;
        // Lemire-style widening multiply with rejection on the low word.
        let zone = u64::MAX - (u64::MAX - span64 + 1) % span64;
        loop {
            let v = rng.next_u64();
            let wide = (v as u128) * (span64 as u128);
            if (wide as u64) <= zone {
                return wide >> 64;
            }
        }
    } else {
        loop {
            let v = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
            if v < u128::MAX - (u128::MAX % span) {
                return v % span;
            }
        }
    }
}

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                let unit = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// User-facing extension methods, blanket-implemented for all generators.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`, int or float).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0,1]");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Small, fast generator: xoshiro256++ with splitmix64 seeding.
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        SmallRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// `rand::rngs` module shape.
pub mod rngs {
    pub use super::SmallRng;
}

/// `rand::seq` module shape: slice sampling helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods on slices.
    pub trait SliceRandom {
        type Item;

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// `amount` distinct elements in random order (all, if fewer).
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let mut indices: Vec<usize> = (0..self.len()).collect();
            indices.shuffle(rng);
            indices.truncate(amount.min(self.len()));
            indices
                .into_iter()
                .map(|i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            let w: u32 = rng.gen_range(1..=3);
            assert!((1..=3).contains(&w));
            let f: f64 = rng.gen_range(0.5..0.99);
            assert!((0.5..0.99).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut xs: Vec<u32> = (0..20).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());

        assert!(xs.choose(&mut rng).is_some());
        let picked: Vec<u32> = xs.choose_multiple(&mut rng, 5).copied().collect();
        assert_eq!(picked.len(), 5);

        let empty: Vec<u32> = Vec::new();
        assert!(empty.choose(&mut rng).is_none());
    }
}
