//! Offline stand-in for the `bytes` crate (see `vendor/README.md`).
//!
//! The workspace declares the dependency but exercises very little of it;
//! `Bytes` here is a cheaply-cloneable shared byte buffer over
//! `Arc<[u8]>` and `BytesMut` a thin wrapper over `Vec<u8>`. No zero-copy
//! slicing tricks — just the API shape.

use std::sync::Arc;

/// An immutable, cheaply-cloneable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies a static slice (real `bytes` borrows it; we copy).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes { data: data.into() }
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes { data: s.into_bytes().into() }
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes { data: s.as_bytes().into() }
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.data.extend_from_slice(extend);
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Clears the buffer.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut buf = BytesMut::with_capacity(8);
        buf.extend_from_slice(b"hello");
        let frozen = buf.freeze();
        assert_eq!(&frozen[..], b"hello");
        assert_eq!(frozen.clone().to_vec(), b"hello".to_vec());
    }
}
