//! Offline stand-in for the `serde_json` crate (see `vendor/README.md`).
//!
//! Works over the vendored `serde` stand-in's [`Value`] tree: `to_string`
//! renders JSON text, `from_str` parses JSON text back into a `Value` and
//! hands it to the target type's `Deserialize` impl. Covers the workspace's
//! uses: the `json!` macro (object/array literals with expression values),
//! [`Map`], `to_string`, `to_string_pretty`, `to_value`, and `from_str`.

pub use serde::{Error, Value};

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// An insertion-ordered string-keyed map, as built by experiment code via
/// `Map::new` / `insert` and converted into a [`Value`] with `Into`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Inserts a key, replacing (in place) any existing entry for it.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl From<Map> for Value {
    fn from(map: Map) -> Value {
        Value::Object(map.entries)
    }
}

/// Serializes any `Serialize` type into a [`Value`].
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.serialize()
}

/// Renders a value as compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Renders a value as pretty-printed JSON text (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text and deserializes it into `T`.
pub fn from_str<T: serde::Deserialize>(input: &str) -> Result<T> {
    let value = parse_value(input)?;
    T::deserialize(&value)
}

// ---------------------------------------------------------------------------
// rendering
// ---------------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        let text = f.to_string();
        out.push_str(&text);
        // keep floats recognisable as floats on re-parse
        if !text.contains('.') && !text.contains('e') && !text.contains('E') {
            out.push_str(".0");
        }
    } else {
        // JSON has no inf/nan; null is what real serde_json emits for
        // non-finite via to_value
        out.push_str("null");
    }
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * level));
    }
}

// ---------------------------------------------------------------------------
// parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses JSON text into a [`Value`].
pub fn parse_value(input: &str) -> Result<Value> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(format!("invalid utf8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|e| Error(e.to_string()))?,
                                16,
                            )
                            .map_err(|e| Error(e.to_string()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u escape".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error(e.to_string()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error(format!("bad number {text:?}: {e}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|e| Error(format!("bad number {text:?}: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|e| Error(format!("bad number {text:?}: {e}")))
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error(format!("expected , or ] , got {other:?}")));
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error(format!("expected , or }} , got {other:?}")));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// json! macro
// ---------------------------------------------------------------------------

/// Builds a [`Value`] from a JSON-like literal. Supports object and array
/// literals (nestable) whose values are expressions of any `Serialize`
/// type, plus bare expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($body:tt)* }) => {{
        let mut __obj: ::std::vec::Vec<(::std::string::String, $crate::Value)> =
            ::std::vec::Vec::new();
        $crate::json_object_entries!(__obj; $($body)*);
        $crate::Value::Object(__obj)
    }};
    ([ $($body:tt)* ]) => {{
        let mut __arr: ::std::vec::Vec<$crate::Value> = ::std::vec::Vec::new();
        $crate::json_array_items!(__arr; $($body)*);
        $crate::Value::Array(__arr)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Implementation detail of [`json!`]: munches `key: value` object entries.
#[macro_export]
#[doc(hidden)]
macro_rules! json_object_entries {
    ($obj:ident;) => {};
    ($obj:ident; $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $obj.push(($key.to_string(), $crate::json!({ $($inner)* })));
        $( $crate::json_object_entries!($obj; $($rest)*); )?
    };
    ($obj:ident; $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $obj.push(($key.to_string(), $crate::json!([ $($inner)* ])));
        $( $crate::json_object_entries!($obj; $($rest)*); )?
    };
    ($obj:ident; $key:literal : $value:expr $(, $($rest:tt)*)?) => {
        $obj.push(($key.to_string(), $crate::json!($value)));
        $( $crate::json_object_entries!($obj; $($rest)*); )?
    };
}

/// Implementation detail of [`json!`]: munches array items.
#[macro_export]
#[doc(hidden)]
macro_rules! json_array_items {
    ($arr:ident;) => {};
    ($arr:ident; { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $arr.push($crate::json!({ $($inner)* }));
        $( $crate::json_array_items!($arr; $($rest)*); )?
    };
    ($arr:ident; [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $arr.push($crate::json!([ $($inner)* ]));
        $( $crate::json_array_items!($arr; $($rest)*); )?
    };
    ($arr:ident; $value:expr $(, $($rest:tt)*)?) => {
        $arr.push($crate::json!($value));
        $( $crate::json_array_items!($arr; $($rest)*); )?
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_parse_roundtrip() {
        let v = json!({
            "name": "app",
            "count": 3,
            "rate": 0.5,
            "flags": [true, false],
            "nested": {"deep": null},
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn map_into_value() {
        let mut m = Map::new();
        m.insert("a".into(), json!(1));
        m.insert("a".into(), json!(2)); // replace
        let v: Value = m.into();
        assert_eq!(v, json!({"a": 2}));
    }

    #[test]
    fn expressions_in_literals() {
        let xs = vec![1u32, 2, 3];
        let total: u32 = xs.iter().sum();
        let v = json!({"total": total, "values": xs});
        assert_eq!(
            to_string(&v).unwrap(),
            "{\"total\":6,\"values\":[1,2,3]}"
        );
    }

    #[test]
    fn floats_stay_floats() {
        let text = to_string(&json!({"x": 1.0})).unwrap();
        assert_eq!(text, "{\"x\":1.0}");
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back.get_field("x").unwrap().as_f64(), Some(1.0));
    }

    #[test]
    fn escapes() {
        let v = json!({"s": "a\"b\\c\nd"});
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }
}
