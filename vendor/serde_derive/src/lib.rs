//! Offline stand-in for `serde_derive`.
//!
//! Generates `Serialize`/`Deserialize` impls against the vendored `serde`
//! stand-in's simplified data model (everything goes through
//! `serde::Value`). Implemented directly on `proc_macro::TokenStream` —
//! the build environment has no crates.io access, so `syn`/`quote` are
//! unavailable.
//!
//! Supported input shapes (everything the workspace derives on):
//! * structs with named fields,
//! * tuple structs (single-field newtypes serialize transparently, which
//!   also covers `#[serde(transparent)]`),
//! * unit structs,
//! * enums with unit variants (optionally with explicit discriminants),
//!   tuple variants, and struct variants — externally tagged, like serde.
//!
//! Generic types are intentionally unsupported and produce a compile
//! error naming this limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Shape {
    NamedStruct { fields: Vec<String> },
    TupleStruct { arity: usize },
    UnitStruct,
    Enum { variants: Vec<Variant> },
}

struct Variant {
    name: String,
    payload: Payload,
}

enum Payload {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("compile_error tokens parse")
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (name, shape) = match parse_item(&tokens) {
        Ok(parsed) => parsed,
        Err(msg) => return compile_error(&msg),
    };
    let body = match (&shape, mode) {
        (Shape::NamedStruct { fields }, Mode::Serialize) => gen_named_ser(&name, fields),
        (Shape::NamedStruct { fields }, Mode::Deserialize) => gen_named_de(&name, fields),
        (Shape::TupleStruct { arity }, Mode::Serialize) => gen_tuple_ser(&name, *arity),
        (Shape::TupleStruct { arity }, Mode::Deserialize) => gen_tuple_de(&name, *arity),
        (Shape::UnitStruct, Mode::Serialize) => gen_unit_ser(&name),
        (Shape::UnitStruct, Mode::Deserialize) => gen_unit_de(&name),
        (Shape::Enum { variants }, Mode::Serialize) => gen_enum_ser(&name, variants),
        (Shape::Enum { variants }, Mode::Deserialize) => gen_enum_de(&name, variants),
    };
    match body.parse() {
        Ok(ts) => ts,
        Err(e) => compile_error(&format!("serde_derive stand-in generated bad code: {e}")),
    }
}

// ---------------------------------------------------------------------------
// parsing
// ---------------------------------------------------------------------------

struct Cursor<'a> {
    tokens: &'a [TokenTree],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(tokens: &'a [TokenTree]) -> Self {
        Cursor { tokens, pos: 0 }
    }

    fn peek(&self) -> Option<&'a TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<&'a TokenTree> {
        let t = self.tokens.get(self.pos);
        self.pos += 1;
        t
    }

    /// Skips `#[...]` attribute groups (including doc comments).
    fn skip_attributes(&mut self) {
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.pos += 1; // '#'
            if let Some(TokenTree::Group(_)) = self.peek() {
                self.pos += 1;
            }
        }
    }

    /// Skips `pub`, `pub(crate)`, `pub(in ...)`.
    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.pos += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.pos += 1;
                    }
                }
            }
        }
    }

    /// Skips tokens until a `,` at angle-bracket depth 0, consuming the
    /// comma. Used to skip field types and enum discriminants.
    fn skip_to_field_end(&mut self) {
        let mut angle_depth: i32 = 0;
        while let Some(tok) = self.peek() {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        self.pos += 1;
                        return;
                    }
                    _ => {}
                }
            }
            self.pos += 1;
        }
    }
}

fn ident_string(tok: Option<&TokenTree>) -> Option<String> {
    match tok {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

fn parse_item(tokens: &[TokenTree]) -> Result<(String, Shape), String> {
    let mut cur = Cursor::new(tokens);
    cur.skip_attributes();
    cur.skip_visibility();

    let keyword = ident_string(cur.next()).ok_or("expected `struct` or `enum`")?;
    let name = ident_string(cur.next()).ok_or("expected item name")?;

    if let Some(TokenTree::Punct(p)) = cur.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "the serde stand-in derive does not support generic type `{name}`"
            ));
        }
    }

    match keyword.as_str() {
        "struct" => match cur.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Ok((name, Shape::NamedStruct { fields: parse_named_fields(&inner)? }))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Ok((name, Shape::TupleStruct { arity: count_tuple_fields(&inner) }))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok((name, Shape::UnitStruct)),
            _ => Err(format!("unsupported struct body for `{name}`")),
        },
        "enum" => match cur.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Ok((name, Shape::Enum { variants: parse_variants(&inner)? }))
            }
            _ => Err(format!("expected enum body for `{name}`")),
        },
        other => Err(format!("cannot derive serde traits for `{other}` items")),
    }
}

fn parse_named_fields(tokens: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut cur = Cursor::new(tokens);
    let mut fields = Vec::new();
    loop {
        cur.skip_attributes();
        cur.skip_visibility();
        let Some(field) = ident_string(cur.next()) else { break };
        match cur.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => return Err(format!("expected `:` after field `{field}`")),
        }
        cur.skip_to_field_end();
        fields.push(field);
    }
    Ok(fields)
}

fn count_tuple_fields(tokens: &[TokenTree]) -> usize {
    let mut cur = Cursor::new(tokens);
    let mut count = 0;
    loop {
        cur.skip_attributes();
        cur.skip_visibility();
        if cur.peek().is_none() {
            break;
        }
        count += 1;
        cur.skip_to_field_end();
    }
    count
}

fn parse_variants(tokens: &[TokenTree]) -> Result<Vec<Variant>, String> {
    let mut cur = Cursor::new(tokens);
    let mut variants = Vec::new();
    loop {
        cur.skip_attributes();
        let Some(name) = ident_string(cur.next()) else { break };
        let payload = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                cur.pos += 1;
                Payload::Tuple(count_tuple_fields(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                cur.pos += 1;
                Payload::Struct(parse_named_fields(&inner)?)
            }
            _ => Payload::Unit,
        };
        // Skip a trailing discriminant (`= 3`) and the separating comma.
        cur.skip_to_field_end();
        variants.push(Variant { name, payload });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// code generation
// ---------------------------------------------------------------------------

fn ser_header(name: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Value {{\n"
    )
}

fn de_header(name: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(__value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{\n"
    )
}

const FOOTER: &str = "\n    }\n}\n";

fn gen_named_ser(name: &str, fields: &[String]) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from({f:?}), \
                 ::serde::Serialize::serialize(&self.{f}))"
            )
        })
        .collect();
    format!(
        "{}        ::serde::Value::Object(::std::vec![{}]){}",
        ser_header(name),
        entries.join(", "),
        FOOTER
    )
}

fn gen_named_de(name: &str, fields: &[String]) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::deserialize(\
                     __value.get_field({f:?}).unwrap_or(&::serde::Value::Null))\
                     .map_err(|e| ::serde::Error(\
                         ::std::format!(\"{name}.{f}: {{e}}\")))?"
            )
        })
        .collect();
    format!(
        "{}        match __value {{\n\
                     ::serde::Value::Object(_) => ::std::result::Result::Ok({name} {{ {} }}),\n\
                     other => ::std::result::Result::Err(::serde::Error(\
                         ::std::format!(\"{name}: expected object, got {{}}\", other.kind()))),\n\
                 }}{}",
        de_header(name),
        inits.join(", "),
        FOOTER
    )
}

fn gen_tuple_ser(name: &str, arity: usize) -> String {
    let body = if arity == 1 {
        // Newtype structs serialize transparently (as in serde); this also
        // covers `#[serde(transparent)]`.
        "        ::serde::Serialize::serialize(&self.0)".to_string()
    } else {
        let items: Vec<String> = (0..arity)
            .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
            .collect();
        format!("        ::serde::Value::Array(::std::vec![{}])", items.join(", "))
    };
    format!("{}{}{}", ser_header(name), body, FOOTER)
}

fn gen_tuple_de(name: &str, arity: usize) -> String {
    let body = if arity == 1 {
        format!(
            "        ::std::result::Result::Ok({name}(\
                 ::serde::Deserialize::deserialize(__value)?))"
        )
    } else {
        let items: Vec<String> = (0..arity)
            .map(|i| format!("::serde::Deserialize::deserialize(&__items[{i}])?"))
            .collect();
        format!(
            "        match __value {{\n\
                         ::serde::Value::Array(__items) if __items.len() == {arity} => \
                             ::std::result::Result::Ok({name}({})),\n\
                         other => ::std::result::Result::Err(::serde::Error(\
                             ::std::format!(\"{name}: expected {arity}-element array, got {{}}\", \
                                            other.kind()))),\n\
                     }}",
            items.join(", ")
        )
    };
    format!("{}{}{}", de_header(name), body, FOOTER)
}

fn gen_unit_ser(name: &str) -> String {
    format!("{}        ::serde::Value::Null{}", ser_header(name), FOOTER)
}

fn gen_unit_de(name: &str) -> String {
    format!(
        "{}        {{ let _ = __value; ::std::result::Result::Ok({name}) }}{}",
        de_header(name),
        FOOTER
    )
}

fn gen_enum_ser(name: &str, variants: &[Variant]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|v| {
            let vname = &v.name;
            match &v.payload {
                Payload::Unit => format!(
                    "{name}::{vname} => ::serde::Value::String(\
                         ::std::string::String::from({vname:?}))"
                ),
                Payload::Tuple(1) => format!(
                    "{name}::{vname}(__f0) => ::serde::Value::Object(::std::vec![(\
                         ::std::string::String::from({vname:?}), \
                         ::serde::Serialize::serialize(__f0))])"
                ),
                Payload::Tuple(n) => {
                    let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                    let sers: Vec<String> = binds
                        .iter()
                        .map(|b| format!("::serde::Serialize::serialize({b})"))
                        .collect();
                    format!(
                        "{name}::{vname}({}) => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from({vname:?}), \
                             ::serde::Value::Array(::std::vec![{}]))])",
                        binds.join(", "),
                        sers.join(", ")
                    )
                }
                Payload::Struct(fields) => {
                    let binds = fields.join(", ");
                    let entries: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from({f:?}), \
                                 ::serde::Serialize::serialize({f}))"
                            )
                        })
                        .collect();
                    format!(
                        "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from({vname:?}), \
                             ::serde::Value::Object(::std::vec![{}]))])",
                        entries.join(", ")
                    )
                }
            }
        })
        .collect();
    format!(
        "{}        match self {{\n            {}\n        }}{}",
        ser_header(name),
        arms.join(",\n            "),
        FOOTER
    )
}

fn gen_enum_de(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.payload, Payload::Unit))
        .map(|v| {
            let vname = &v.name;
            format!("{vname:?} => ::std::result::Result::Ok({name}::{vname})")
        })
        .collect();
    let data_arms: Vec<String> = variants
        .iter()
        .filter_map(|v| {
            let vname = &v.name;
            match &v.payload {
                Payload::Unit => None,
                Payload::Tuple(1) => Some(format!(
                    "{vname:?} => ::std::result::Result::Ok({name}::{vname}(\
                         ::serde::Deserialize::deserialize(__payload)?))"
                )),
                Payload::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::deserialize(&__items[{i}])?"))
                        .collect();
                    Some(format!(
                        "{vname:?} => match __payload {{\n\
                             ::serde::Value::Array(__items) if __items.len() == {n} => \
                                 ::std::result::Result::Ok({name}::{vname}({})),\n\
                             other => ::std::result::Result::Err(::serde::Error(\
                                 ::std::format!(\"{name}::{vname}: expected {n}-element array, \
                                                got {{}}\", other.kind()))),\n\
                         }}",
                        items.join(", ")
                    ))
                }
                Payload::Struct(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::deserialize(\
                                     __payload.get_field({f:?})\
                                         .unwrap_or(&::serde::Value::Null))?"
                            )
                        })
                        .collect();
                    Some(format!(
                        "{vname:?} => ::std::result::Result::Ok({name}::{vname} {{ {} }})",
                        inits.join(", ")
                    ))
                }
            }
        })
        .collect();

    let mut body = String::from("        match __value {\n");
    if !unit_arms.is_empty() {
        body.push_str(&format!(
            "            ::serde::Value::String(__s) => match __s.as_str() {{\n\
                             {},\n\
                             other => ::std::result::Result::Err(::serde::Error(\
                                 ::std::format!(\"{name}: unknown variant {{other:?}}\"))),\n\
                         }},\n",
            unit_arms.join(",\n                ")
        ));
    }
    if !data_arms.is_empty() {
        body.push_str(&format!(
            "            ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                             let (__tag, __payload) = &__entries[0];\n\
                             match __tag.as_str() {{\n\
                                 {},\n\
                                 other => ::std::result::Result::Err(::serde::Error(\
                                     ::std::format!(\"{name}: unknown variant {{other:?}}\"))),\n\
                             }}\n\
                         }},\n",
            data_arms.join(",\n                    ")
        ));
    }
    body.push_str(&format!(
        "            other => ::std::result::Result::Err(::serde::Error(\
             ::std::format!(\"{name}: unexpected {{}}\", other.kind()))),\n        }}"
    ));
    format!("{}{}{}", de_header(name), body, FOOTER)
}
