//! Live triage: FRAppE as the always-on service of §8.
//!
//! Stands `frappe-serve` up over a small synthetic world, streams the
//! world's observation history through it, and triages every app the
//! monitor ever saw — printing verdicts as an analyst would consume them,
//! then the service's own metrics.
//!
//! Run with: `cargo run --release --example live_triage`

use frappe::features::aggregation::{extract_aggregation, KnownMaliciousNames};
use frappe::features::on_demand::{extract_on_demand, OnDemandInput};
use frappe::{AppFeatures, FeatureSet, FrappeModel};
use frappe_serve::{serve_events, FrappeService, ServeConfig};
use osn_types::AppId;
use synth_workload::scenario::ScenarioWorld;
use synth_workload::{build_datasets, run_scenario, ScenarioConfig};

fn batch_features(world: &ScenarioWorld, app: AppId, known: &KnownMaliciousNames) -> AppFeatures {
    let crawl = world.extended_archive.get(&app);
    let input = OnDemandInput {
        summary: crawl.and_then(|c| c.summary.as_ref()),
        permissions: crawl.and_then(|c| c.permissions.as_ref()),
        profile_feed: crawl.and_then(|c| c.profile_feed.as_deref()),
    };
    let on_demand = extract_on_demand(app, &input, &world.wot);
    let posts: Vec<&fb_platform::Post> = world
        .mpk
        .monitored_posts()
        .iter()
        .filter_map(|&pid| world.platform.post(pid))
        .filter(|p| p.app == Some(app))
        .collect();
    let name = world.platform.app(app).map(|r| r.name()).unwrap_or("");
    let aggregation = extract_aggregation(name, &posts, known, &world.shortener);
    AppFeatures {
        app,
        on_demand,
        aggregation,
    }
}

fn main() {
    println!("=== FRAppE live triage ===\n");

    // 1. A world to monitor, and a model trained offline on its labelled
    //    sample — the serving layer never trains, it only scores.
    let world = run_scenario(&ScenarioConfig::small());
    let bundle = build_datasets(&world);
    let known = KnownMaliciousNames::from_names(
        bundle
            .d_sample
            .malicious
            .iter()
            .filter_map(|&a| world.platform.app(a))
            .map(|r| r.name().to_string()),
    );
    let mut samples = Vec::new();
    let mut labels = Vec::new();
    for &a in &bundle.d_sample.malicious {
        samples.push(batch_features(&world, a, &known));
        labels.push(true);
    }
    for &a in &bundle.d_sample.benign {
        samples.push(batch_features(&world, a, &known));
        labels.push(false);
    }
    let model = FrappeModel::train(&samples, &labels, FeatureSet::Full, None);
    println!(
        "offline: trained FRAppE Full on {} labelled apps ({} support vectors)",
        samples.len(),
        model.support_vector_count()
    );

    // 2. Stand the service up and stream the world's history through it.
    let service = FrappeService::new(
        model,
        known,
        world.shortener.clone(),
        ServeConfig {
            shards: 4,
            workers: 2,
            ..ServeConfig::default()
        },
    );
    let events = serve_events(&world);
    println!(
        "online:  streaming {} events into the service...",
        events.len()
    );
    for event in &events {
        service.ingest(event);
    }

    // 3. Triage every app the monitor ever saw.
    let mut flagged: Vec<(f64, AppId)> = Vec::new();
    for app in service.tracked_apps() {
        let verdict = service.classify(app).expect("tracked app");
        if verdict.malicious {
            flagged.push((verdict.decision_value, app));
        }
    }
    flagged.sort_by(|a, b| b.0.total_cmp(&a.0));

    let hits = flagged
        .iter()
        .filter(|(_, app)| world.truth.malicious.contains(app))
        .count();
    println!(
        "\nflagged {} of {} tracked apps as malicious ({} confirmed by ground truth, precision {:.1}%)",
        flagged.len(),
        service.tracked_apps().len(),
        hits,
        100.0 * hits as f64 / flagged.len().max(1) as f64
    );

    println!("\nworst offenders (by SVM decision value):");
    for (decision, app) in flagged.iter().take(10) {
        let name = world.platform.app(*app).map(|r| r.name()).unwrap_or("?");
        let truth = if world.truth.malicious.contains(app) {
            "malicious"
        } else {
            "benign (!)"
        };
        println!("  {decision:+.3}  {app:?}  {name:40}  truth: {truth}");
    }

    // 4. Feed the flagged names back: look-alikes registered later are
    //    caught by the collision feature immediately (§4.2.1).
    let mut new_names = 0usize;
    for (_, app) in &flagged {
        if let Some(record) = world.platform.app(*app) {
            if service.flag_name(record.name()) {
                new_names += 1;
            }
        }
    }
    println!("\nfed {new_names} newly-flagged names back into the collision list");

    // 5. The service's own view of the session.
    let metrics = service.metrics();
    println!(
        "\nmetrics: {}",
        serde_json::to_string_pretty(&metrics).expect("metrics serialize")
    );
}
