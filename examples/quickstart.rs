//! Quickstart: train FRAppE on a simulated world and classify apps.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! This walks the full paper pipeline end to end on a small world:
//! simulate nine months of platform activity, derive the labelled D-Sample
//! through MyPageKeeper, extract both feature families, train the full
//! FRAppE classifier, and answer the paper's question — *"given a Facebook
//! application, can we determine if it is malicious?"* — for a handful of
//! apps.

use frappe::features::aggregation::{extract_aggregation, KnownMaliciousNames};
use frappe::features::on_demand::{extract_on_demand, OnDemandInput};
use frappe::{AppFeatures, FeatureSet, FrappeModel};
use osn_types::AppId;
use synth_workload::scenario::ScenarioWorld;
use synth_workload::{build_datasets, run_scenario, ScenarioConfig};

/// Extracts a full FRAppE feature row from the world's observables.
fn features_of(world: &ScenarioWorld, app: AppId, known: &KnownMaliciousNames) -> AppFeatures {
    let crawl = world.extended_archive.get(&app);
    let input = OnDemandInput {
        summary: crawl.and_then(|c| c.summary.as_ref()),
        permissions: crawl.and_then(|c| c.permissions.as_ref()),
        profile_feed: crawl.and_then(|c| c.profile_feed.as_deref()),
    };
    let on_demand = extract_on_demand(app, &input, &world.wot);

    let posts: Vec<&fb_platform::Post> = world
        .mpk
        .monitored_posts()
        .iter()
        .filter_map(|&pid| world.platform.post(pid))
        .filter(|p| p.app == Some(app))
        .collect();
    let name = world.platform.app(app).map(|r| r.name()).unwrap_or("");
    let aggregation = extract_aggregation(name, &posts, known, &world.shortener);

    AppFeatures {
        app,
        on_demand,
        aggregation,
    }
}

fn main() {
    // 1. Simulate the world: users, benign apps, hacker campaigns, nine
    //    months of posting, MyPageKeeper monitoring, platform enforcement,
    //    and the post-hoc crawl phase.
    println!("simulating the platform...");
    let world = run_scenario(&ScenarioConfig::small());
    println!(
        "  {} users, {} apps, {} posts, {} flagged",
        world.platform.user_count(),
        world.platform.app_count(),
        world.platform.posts().len(),
        world.mpk.flagged_posts().len()
    );

    // 2. Build the paper's datasets (Table 1).
    let bundle = build_datasets(&world);
    println!(
        "  D-Sample: {} malicious + {} benign labelled apps",
        bundle.d_sample.malicious.len(),
        bundle.d_sample.benign.len()
    );

    // 3. Extract features and train the full FRAppE classifier.
    let known = KnownMaliciousNames::from_names(
        bundle
            .d_sample
            .malicious
            .iter()
            .filter_map(|&a| world.platform.app(a))
            .map(|r| r.name().to_string()),
    );
    let mut samples = Vec::new();
    let mut labels = Vec::new();
    for &app in &bundle.d_sample.malicious {
        samples.push(features_of(&world, app, &known));
        labels.push(true);
    }
    for &app in &bundle.d_sample.benign {
        samples.push(features_of(&world, app, &known));
        labels.push(false);
    }
    let model = FrappeModel::train(&samples, &labels, FeatureSet::Full, None);
    println!(
        "trained FRAppE (full) on {} apps; {} support vectors",
        samples.len(),
        model.support_vector_count()
    );

    // 4. Ask the paper's question for a few apps we know the truth about.
    println!("\n{:<46} {:>10} {:>10}", "app", "verdict", "truth");
    let out_of_sample =
        |a: &AppId| !bundle.d_sample.malicious.contains(a) && !bundle.d_sample.benign.contains(a);
    let mut probes: Vec<AppId> = bundle
        .d_total
        .iter()
        .copied()
        .filter(out_of_sample)
        .filter(|a| !world.truth.malicious.contains(a))
        .take(5)
        .collect();
    probes.extend(
        bundle
            .d_total
            .iter()
            .copied()
            .filter(out_of_sample)
            .filter(|a| world.truth.malicious.contains(a))
            .take(5),
    );
    for app in probes {
        let row = features_of(&world, app, &known);
        let verdict = model.predict(&row);
        let truth = world.truth.malicious.contains(&app);
        let name = world.platform.app(app).map(|r| r.name()).unwrap_or("?");
        println!(
            "{:<46} {:>10} {:>10}",
            format!("{app} ({name})"),
            if verdict { "MALICIOUS" } else { "benign" },
            if truth { "malicious" } else { "benign" },
        );
    }
}
