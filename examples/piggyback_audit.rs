//! Piggybacking audit: detecting abuse of popular apps' identities (§6.2).
//!
//! ```text
//! cargo run --release --example piggyback_audit
//! ```
//!
//! Hackers exploit the unauthenticated `prompt_feed` API to attribute spam
//! posts to FarmVille-class apps. This audit finds them exactly as the
//! paper does (Fig. 16): among apps with at least one flagged post, a
//! *low* malicious-post ratio is the piggybacking signature — a real
//! malicious app's posts are nearly all flagged, a popular victim's are
//! almost all legitimate.

use fb_platform::PostKind;
use pagekeeper::derive_app_labels;
use synth_workload::{run_scenario, ScenarioConfig};

fn main() {
    println!("simulating the platform...");
    let world = run_scenario(&ScenarioConfig::small());

    // Label with an EMPTY whitelist: this is the raw, pre-whitelist view
    // in which victims get wrongly marked malicious.
    let labels = derive_app_labels(&world.mpk, &world.platform, &Default::default());

    println!("\napps with >= 1 flagged post, by malicious-post ratio:");
    println!(
        "{:<30} {:>7} {:>8} {:>8}  diagnosis",
        "app", "posts", "flagged", "ratio"
    );

    let mut rows: Vec<_> = labels
        .post_counts
        .iter()
        .filter(|(_, &(flagged, _))| flagged > 0)
        .collect();
    rows.sort_by_key(|(_, &(_, total))| std::cmp::Reverse(total));

    // A low ratio is the trigger for manual inspection (Fig. 16); the
    // confirmation is a flagged post made through the prompt_feed API.
    let has_prompt_feed_flag = |app: osn_types::AppId| {
        world.mpk.flagged_posts().iter().any(|&pid| {
            world
                .platform
                .post(pid)
                .is_some_and(|p| p.app == Some(app) && p.kind == PostKind::PromptFeed)
        })
    };
    let mut victims = Vec::new();
    for (&app, &(flagged, total)) in rows.iter().take(12) {
        let ratio = flagged as f64 / total.max(1) as f64;
        let name = world.platform.app(app).map(|r| r.name()).unwrap_or("?");
        let diagnosis = if ratio < 0.2 && has_prompt_feed_flag(app) {
            victims.push(app);
            "PIGGYBACKED VICTIM"
        } else if ratio < 0.5 {
            "partially detected malicious app"
        } else {
            "malicious app"
        };
        println!("{name:<30} {total:>7} {flagged:>8} {ratio:>8.2}  {diagnosis}");
    }

    // Show the smoking gun for each victim: a flagged prompt_feed post.
    println!("\nevidence (flagged prompt_feed posts carrying the victims' identity):");
    for app in &victims {
        let Some(pid) = world.mpk.flagged_posts().iter().find(|&&pid| {
            world
                .platform
                .post(pid)
                .is_some_and(|p| p.app == Some(*app) && p.kind == PostKind::PromptFeed)
        }) else {
            continue;
        };
        let post = world.platform.post(*pid).expect("flagged post exists");
        let name = world.platform.app(*app).map(|r| r.name()).unwrap_or("?");
        println!(
            "  {name:<26} {:?} -> {}",
            post.message,
            post.link
                .as_ref()
                .map(ToString::to_string)
                .unwrap_or_default()
        );
    }

    // The paper's §7 recommendation, demonstrated.
    println!(
        "\nrecommendation: Facebook should verify that prompt_feed's api_key \
         belongs to the caller; {} popular apps were impersonated here.",
        victims.len()
    );

    // Confirm the whitelist repair used by the dataset pipeline.
    let repaired = derive_app_labels(&world.mpk, &world.platform, &world.truth.whitelist);
    let rescued = victims
        .iter()
        .filter(|a| {
            matches!(
                repaired.labels.get(a),
                Some(pagekeeper::AppLabel::Whitelisted)
            )
        })
        .count();
    println!(
        "whitelist repair: {rescued} of {} victims rescued from mislabelling",
        victims.len()
    );
}
