//! Watchdog: the FRAppE-Lite-in-a-browser-extension scenario (§5.1).
//!
//! ```text
//! cargo run --release --example watchdog [app_id ...]
//! ```
//!
//! The paper envisions FRAppE Lite "incorporated, for example, into a
//! browser extension that can evaluate any Facebook application at the
//! time when a user is considering installing it". This example plays that
//! role: it trains FRAppE Lite once, then evaluates apps **purely from
//! on-demand crawls** — no aggregation features, no monitoring history —
//! and prints a warning verdict with the per-feature evidence.

use frappe::features::on_demand::{extract_on_demand, OnDemandInput};
use frappe::{AppFeatures, FeatureSet, FrappeModel};
use osn_types::AppId;
use synth_workload::scenario::ScenarioWorld;
use synth_workload::{build_datasets, run_scenario, ScenarioConfig};

/// "Crawl" an app on demand: summary + install dialog + profile feed.
fn crawl_on_demand(world: &ScenarioWorld, app: AppId) -> AppFeatures {
    let crawl = world.extended_archive.get(&app);
    let input = OnDemandInput {
        summary: crawl.and_then(|c| c.summary.as_ref()),
        permissions: crawl.and_then(|c| c.permissions.as_ref()),
        profile_feed: crawl.and_then(|c| c.profile_feed.as_deref()),
    };
    AppFeatures {
        app,
        on_demand: extract_on_demand(app, &input, &world.wot),
        aggregation: Default::default(), // a watchdog has no monitoring view
    }
}

fn main() {
    println!("bootstrapping watchdog (simulating platform + training)...");
    let world = run_scenario(&ScenarioConfig::small());
    let bundle = build_datasets(&world);

    let mut samples = Vec::new();
    let mut labels = Vec::new();
    for &app in &bundle.d_sample.malicious {
        samples.push(crawl_on_demand(&world, app));
        labels.push(true);
    }
    for &app in &bundle.d_sample.benign {
        samples.push(crawl_on_demand(&world, app));
        labels.push(false);
    }
    let model = FrappeModel::train(&samples, &labels, FeatureSet::Lite, None);
    println!(
        "FRAppE Lite ready ({} support vectors)\n",
        model.support_vector_count()
    );

    // Evaluate the requested app ids, or a default sample of fresh apps.
    let requested: Vec<AppId> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse::<u64>().ok().map(AppId))
        .collect();
    let targets: Vec<AppId> = if requested.is_empty() {
        bundle
            .d_total
            .iter()
            .copied()
            .filter(|a| !bundle.d_sample.malicious.contains(a))
            .filter(|a| !bundle.d_sample.benign.contains(a))
            .take(5)
            .collect()
    } else {
        requested
    };

    for app in targets {
        let name = world
            .platform
            .app(app)
            .map(|r| r.name().to_string())
            .unwrap_or_else(|| "<unknown app>".into());
        let row = crawl_on_demand(&world, app);
        let score = model.decision_value(&row);
        println!("--- {app} ({name})");
        for def in frappe::catalog::on_demand() {
            match def.raw_value(&row) {
                Some(v) => println!("    {:<26} {v}", def.name),
                None => println!("    {:<26} <unavailable>", def.name),
            }
        }
        if score >= 0.0 {
            println!("    verdict: \u{26a0} DO NOT INSTALL (score {score:+.2})\n");
        } else {
            println!("    verdict: looks benign (score {score:+.2})\n");
        }
    }
}
