//! AppNet forensics: the §6 investigation, end to end.
//!
//! ```text
//! cargo run --release --example appnet_forensics
//! ```
//!
//! Reconstructs the collaboration graph from monitored posts — expanding
//! shortened URLs through the bit.ly-style API and matching known
//! indirection websites — then reports what the paper's §6.1 reports:
//! connected components, promoter/promotee roles, collusion degrees, and
//! the densest same-name neighborhood (Fig. 15's 'Death Predictor'
//! moment).

use appnet_graph::{
    classify_roles, connected_components, ego_network, extract_collaboration_graph,
    local_clustering_coefficient, ExtractionContext, Role,
};
use fb_platform::Post;
use synth_workload::{run_scenario, ScenarioConfig};

fn main() {
    println!("simulating the platform...");
    let world = run_scenario(&ScenarioConfig::small());

    // The forensic input: every monitored post with an app attribution.
    let posts: Vec<&Post> = world
        .mpk
        .monitored_posts()
        .iter()
        .filter_map(|&pid| world.platform.post(pid))
        .filter(|p| p.app.is_some())
        .collect();
    let ctx = ExtractionContext::new(&world.shortener, world.sites.iter());
    let (graph, stats) = extract_collaboration_graph(&posts, &ctx);

    println!(
        "examined {} posts: {} direct install links, {} indirection hits, {} dead short links",
        stats.posts_seen, stats.direct_links, stats.indirection_hits, stats.unresolvable
    );
    println!(
        "collaboration graph: {} apps, {} promotion edges",
        graph.node_count(),
        graph.edge_count()
    );

    // Components (§6.1).
    let components = connected_components(&graph);
    let sizes: Vec<usize> = components.iter().take(5).map(Vec::len).collect();
    println!(
        "\nconnected components: {} (top sizes {sizes:?})",
        components.len()
    );

    // Roles (Fig. 13).
    let roles = classify_roles(&graph);
    println!(
        "roles: {} promoters / {} promotees / {} dual",
        roles.count(Role::Promoter),
        roles.count(Role::Promotee),
        roles.count(Role::Dual),
    );

    // Channel breakdown (§6.1 a/b).
    println!(
        "direct channel: {} promoters -> {} promotees",
        stats.direct_promoters.len(),
        stats.direct_promotees.len()
    );
    println!(
        "indirection channel: {} sites, {} promoters -> {} promotees",
        stats.sites_used.len(),
        stats.site_promoters.len(),
        stats.site_promotees.len()
    );

    // The densest well-connected neighborhood (Fig. 15).
    if let Some((centre, coeff)) = graph
        .nodes()
        .filter(|&a| graph.collusion_degree(a) >= 5)
        .map(|a| (a, local_clustering_coefficient(&graph, a)))
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
    {
        let ego = ego_network(&graph, centre);
        let name = world.platform.app(centre).map(|r| r.name()).unwrap_or("?");
        let same_name = ego
            .neighbours
            .iter()
            .filter(|&&n| world.platform.app(n).map(|r| r.name()) == Some(name))
            .count();
        println!(
            "\ndensest neighborhood: {centre} ({name:?}) — {} neighbours, \
             coefficient {coeff:.2}, {same_name} share its name",
            ego.neighbours.len()
        );
    }

    // Who is behind it? Compare against ground truth (simulation privilege).
    let malicious_nodes = graph
        .nodes()
        .filter(|a| world.truth.malicious.contains(a))
        .count();
    println!(
        "\nground truth check: {} of {} graph nodes are truly malicious apps",
        malicious_nodes,
        graph.node_count()
    );
}
